"""FIG8 — the compensation queue (paper Fig. 8, section 2.6).

Sweeps the message failure rate and reports the compensation machinery's
behaviour: staged vs released vs discarded compensations, in-queue
cancellations (original never read) vs delivered compensations (original
consumed), and the wall-clock cost of staging + releasing.

Expected shape: staging cost is paid on *every* send (the paper's
reliability design); release cost only on failures; unread originals
never reach applications (they cancel in-queue).
"""

import pytest

from repro.core.builder import destination, destination_set
from repro.harness.reporting import Table
from repro.workloads.scenarios import Testbed


def simple_failure_run(total, fail_count):
    """Cleaner sweep: fail_count messages go to a queue nobody reads."""
    bed = Testbed(["R1", "DEAD"], latency_ms=5)
    live = destination_set(
        destination("Q.R1", manager="QM.R1", recipient="R1",
                    msg_pick_up_time=1_000),
        evaluation_timeout=2_000,
    )
    dead = destination_set(
        destination("Q.DEAD", manager="QM.DEAD", recipient="DEAD",
                    msg_pick_up_time=1_000),
        evaluation_timeout=2_000,
    )
    for i in range(total):
        bed.service.send_message(
            {"i": i},
            dead if i < fail_count else live,
            compensation={"undo": i},
        )
    bed.at(100, lambda: bed.receiver("R1").read_all("Q.R1"))
    bed.run_all()
    return bed


@pytest.mark.parametrize("failure_pct", [0, 25, 100])
def test_compensation_sweep_benchmark(benchmark, failure_pct):
    total = 40
    result = benchmark.pedantic(
        lambda: simple_failure_run(total, total * failure_pct // 100),
        rounds=5,
    )


def test_fig8_table(benchmark, report):
    table = Table(
        "FIG8: compensation behaviour vs failure rate (40 messages/run)",
        ["failure %", "staged", "released", "discarded",
         "cancelled in-queue", "delivered to app"],
    )
    for failure_pct in (0, 10, 25, 50, 100):
        total = 40
        fail_count = total * failure_pct // 100
        bed = simple_failure_run(total, fail_count)
        stats = bed.service.stats
        comp = bed.service.compensation
        # Failed messages' compensations were released to Q.DEAD where the
        # unread originals cancel against them on the next read attempt.
        dead_receiver = bed.receiver("DEAD")
        assert dead_receiver.read_message("Q.DEAD") is None
        table.add_row(
            [
                failure_pct,
                stats.compensations_staged,
                stats.compensations_released,
                comp.discarded_count,
                dead_receiver.stats.cancellations,
                dead_receiver.stats.compensations_delivered,
            ]
        )
        assert stats.compensations_staged == total
        assert stats.compensations_released == fail_count
        assert comp.discarded_count == total - fail_count
        assert dead_receiver.stats.cancellations == fail_count
        assert dead_receiver.stats.compensations_delivered == 0
    report.emit(table)
    benchmark.pedantic(lambda: simple_failure_run(40, 10), rounds=5)


def test_fig8_delivered_compensation_path(benchmark, report):
    """The read-then-fail path: originals consumed, compensation must be
    DELIVERED (not cancelled)."""
    table = Table(
        "FIG8: compensation delivery when the original was consumed late",
        ["messages", "read late", "delivered comps", "cancelled"],
    )

    def run(total):
        bed = Testbed(["R1"], latency_ms=5)
        condition = destination_set(
            destination("Q.R1", manager="QM.R1", recipient="R1",
                        msg_pick_up_time=500),
            evaluation_timeout=5_000,
        )
        for i in range(total):
            bed.service.send_message({"i": i}, condition,
                                     compensation={"undo": i})
        # Read everything AFTER the pick-up deadline: messages fail, but
        # the originals were consumed, so compensations are delivered.
        bed.at(1_000, lambda: bed.receiver("R1").read_all("Q.R1"))
        bed.run_all()
        comps = [
            m for m in bed.receiver("R1").read_all("Q.R1") if m.is_compensation
        ]
        return bed, comps

    for total in (5, 20):
        bed, comps = run(total)
        table.add_row(
            [total, total, len(comps), bed.receiver("R1").stats.cancellations]
        )
        assert len(comps) == total
        assert bed.receiver("R1").stats.cancellations == 0
    report.emit(table)
    benchmark.pedantic(lambda: run(10), rounds=5)
