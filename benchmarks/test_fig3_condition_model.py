"""FIG3 — the condition object model (paper Figure 3).

Measures the cost of building, validating, and (de)serializing condition
trees as they grow in width (destinations per set) and depth (nesting),
establishing that condition management is negligible next to messaging.
"""

import json

import pytest

from repro.core.builder import destination, destination_set
from repro.core.serialize import condition_from_dict, condition_to_dict
from repro.harness.reporting import Table


def wide_tree(width: int):
    return destination_set(
        *[
            destination(f"Q.{i}", recipient=f"R{i}")
            for i in range(width)
        ],
        msg_pick_up_time=10_000,
        min_nr_pick_up=max(1, width // 2),
    )


def deep_tree(depth: int):
    node = destination_set(
        destination("Q.LEAF0", recipient="R0"), msg_pick_up_time=10_000
    )
    for level in range(1, depth):
        node = destination_set(
            destination(f"Q.LEAF{level}", recipient=f"R{level}"),
            node,
            msg_pick_up_time=10_000 + level,
        )
    return node


@pytest.mark.parametrize("width", [4, 16, 64])
def test_build_and_validate_wide(benchmark, width):
    def build():
        tree = wide_tree(width)
        tree.validate()
        return tree

    tree = benchmark(build)
    assert len(list(tree.destinations())) == width


@pytest.mark.parametrize("depth", [2, 8, 32])
def test_build_and_validate_deep(benchmark, depth):
    def build():
        tree = deep_tree(depth)
        tree.validate()
        return tree

    tree = benchmark(build)
    assert len(list(tree.destinations())) == depth


@pytest.mark.parametrize("width", [4, 16, 64])
def test_serialize_roundtrip(benchmark, width):
    tree = wide_tree(width)

    def roundtrip():
        return condition_from_dict(
            json.loads(json.dumps(condition_to_dict(tree)))
        )

    restored = benchmark(roundtrip)
    assert len(list(restored.destinations())) == width


def test_fig3_table(benchmark, report):
    """Summary table: model-operation costs across shapes."""
    import timeit

    table = Table(
        "FIG3: condition object model operation cost (microseconds/op)",
        ["shape", "build+validate", "to_dict", "from_dict"],
    )
    for label, factory in (
        ("4 wide", lambda: wide_tree(4)),
        ("64 wide", lambda: wide_tree(64)),
        ("8 deep", lambda: deep_tree(8)),
        ("32 deep", lambda: deep_tree(32)),
    ):
        tree = factory()
        wire = condition_to_dict(tree)
        n = 200
        build_us = timeit.timeit(
            lambda: factory().validate(), number=n
        ) / n * 1e6
        to_us = timeit.timeit(lambda: condition_to_dict(tree), number=n) / n * 1e6
        from_us = timeit.timeit(
            lambda: condition_from_dict(wire), number=n
        ) / n * 1e6
        table.add_row([label, build_us, to_us, from_us])
    report.emit(table)
    # Anchor the pytest-benchmark stats on the paper's own Figure 4 tree.
    example1 = lambda: destination_set(
        destination("Q.R3", recipient="R3", msg_processing_time=700),
        destination_set(
            destination("Q.R1", recipient="R1"),
            destination("Q.R2", recipient="R2"),
            destination("Q.R4", recipient="R4"),
            msg_processing_time=1_100,
            min_nr_processing=2,
        ),
        msg_pick_up_time=200,
    )
    benchmark(lambda: example1().validate())
