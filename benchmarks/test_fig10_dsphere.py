"""FIG10 — the D-Sphere service (paper Fig. 10, section 3).

Characterizes Dependency-Spheres: group-commit cost vs sphere size
(member messages + object resources), the abort path, and group-outcome
correctness (one bad member fails everything; object veto fails
everything).

Expected shape: sphere cost is linear in members; the atomicity
guarantees hold at every size.
"""

import pytest

from repro.core.builder import destination, destination_set
from repro.dsphere.context import DSphereOutcome
from repro.harness.reporting import Table
from repro.objects.kvstore import TransactionalKVStore
from repro.workloads.scenarios import Testbed


def run_sphere(members, object_writes, fail_one=False, abort=False):
    bed = Testbed(["R1"], latency_ms=5)
    store = TransactionalKVStore("db")
    sphere = bed.dsphere.begin_DS()
    tx = sphere.object_tx
    if object_writes:
        tx.enlist(store)
        for i in range(object_writes):
            store.put(f"k{i}", i, tx_id=tx.tx_id)
    condition = destination_set(
        destination("Q.R1", manager="QM.R1", recipient="R1",
                    msg_pick_up_time=10_000),
        evaluation_timeout=12_000,
    )
    doomed = destination_set(
        destination("Q.NOBODY", manager="QM.R1", msg_pick_up_time=100),
        evaluation_timeout=200,
    )
    for i in range(members):
        is_last = i == members - 1
        bed.dsphere.send_message(
            {"i": i}, doomed if (fail_one and is_last) else condition
        )
    if abort:
        bed.dsphere.abort_DS("bench abort")
    else:
        bed.dsphere.commit_DS()
        bed.at(100, lambda: bed.receiver("R1").read_all("Q.R1"))
    bed.run_all()
    assert sphere.is_complete
    return bed, sphere, store


@pytest.mark.parametrize("members", [1, 8, 32])
def test_sphere_commit_benchmark(benchmark, members):
    bed, sphere, store = benchmark.pedantic(
        lambda: run_sphere(members, object_writes=4), rounds=5
    )
    assert sphere.group_outcome is DSphereOutcome.SUCCESS


def test_fig10_size_sweep(benchmark, report):
    import time

    table = Table(
        "FIG10: D-Sphere group commit vs size (sphere of N messages + 4 DB writes)",
        ["members", "outcome", "wall ms", "comps released", "db committed"],
    )
    for members in (1, 4, 16, 64):
        start = time.perf_counter()
        bed, sphere, store = run_sphere(members, object_writes=4)
        wall_ms = (time.perf_counter() - start) * 1e3
        table.add_row(
            [
                members,
                sphere.group_outcome.value,
                wall_ms,
                bed.service.stats.compensations_released,
                store.get("k0") is not None,
            ]
        )
        assert sphere.group_outcome is DSphereOutcome.SUCCESS
        assert store.get("k0") == 0
    report.emit(table)
    benchmark.pedantic(lambda: run_sphere(16, 4), rounds=5)


def test_fig10_atomicity_table(benchmark, report):
    table = Table(
        "FIG10: group-outcome atomicity (8-member spheres)",
        ["scenario", "group outcome", "comps released", "db state"],
    )
    scenarios = [
        ("all members succeed", dict(), DSphereOutcome.SUCCESS, 0, "committed"),
        ("one member fails", dict(fail_one=True), DSphereOutcome.FAILURE, 8, "rolled back"),
        ("abort_DS", dict(abort=True), DSphereOutcome.FAILURE, 8, "rolled back"),
    ]
    for label, kwargs, expected_outcome, expected_comps, expected_db in scenarios:
        bed, sphere, store = run_sphere(8, object_writes=4, **kwargs)
        db_state = "committed" if store.get("k0") is not None else "rolled back"
        table.add_row(
            [
                label,
                sphere.group_outcome.value,
                bed.service.stats.compensations_released,
                db_state,
            ]
        )
        assert sphere.group_outcome is expected_outcome, label
        assert bed.service.stats.compensations_released == expected_comps, label
        assert db_state == expected_db, label
    report.emit(table)
    benchmark.pedantic(lambda: run_sphere(8, 4, fail_one=True), rounds=5)


def test_fig10_abort_benchmark(benchmark):
    bed, sphere, store = benchmark.pedantic(
        lambda: run_sphere(8, object_writes=4, abort=True), rounds=5
    )
    assert sphere.group_outcome is DSphereOutcome.FAILURE
