"""FIG7 — the implicit acknowledgment path (paper Fig. 7).

Measures the monitoring machinery: virtual end-to-end latency from read
(or commit) to the evaluated outcome across channel latencies, and the
wall-clock cost of the receiver-side read (non-transactional vs
transactional, which adds RLOG + deferred-ack bookkeeping).

Expected shape: the ack adds exactly one channel hop — outcome latency
~= read time + one-way latency; transactional reads cost slightly more
wall-clock than non-transactional but generate the same single ack.
"""

import pytest

from repro.core.builder import destination, destination_set
from repro.core.receiver import ConditionalMessagingReceiver
from repro.core.service import ConditionalMessagingService
from repro.harness.reporting import Table
from repro.mq.manager import QueueManager
from repro.mq.network import MessageNetwork
from repro.sim.clock import SimulatedClock
from repro.sim.scheduler import EventScheduler


def build_pair(latency_ms=0):
    clock = SimulatedClock()
    scheduler = EventScheduler(clock)
    network = MessageNetwork(scheduler=scheduler, seed=0)
    sender_qm = network.add_manager(QueueManager("QM.S", clock))
    receiver_qm = network.add_manager(QueueManager("QM.R", clock))
    network.connect("QM.S", "QM.R", latency_ms=latency_ms)
    service = ConditionalMessagingService(sender_qm, scheduler=scheduler)
    receiver = ConditionalMessagingReceiver(receiver_qm, recipient_id="alice")
    condition = destination_set(
        destination("Q.IN", manager="QM.R", recipient="alice",
                    msg_pick_up_time=3_600_000)
    )
    return clock, scheduler, service, receiver, condition


def test_nontransactional_read_cost(benchmark):
    clock, scheduler, service, receiver, condition = build_pair()
    state = {"pending": 0}

    def setup():
        service.send_message({"n": 1}, condition)
        scheduler.run_for(0)

    def read():
        assert receiver.read_message("Q.IN") is not None
        scheduler.run_for(0)

    benchmark.pedantic(read, setup=setup, rounds=50)


def test_transactional_read_cost(benchmark):
    clock, scheduler, service, receiver, condition = build_pair()

    def setup():
        service.send_message({"n": 1}, condition)
        scheduler.run_for(0)

    def read_tx():
        receiver.begin_tx()
        assert receiver.read_message("Q.IN") is not None
        receiver.commit_tx()
        scheduler.run_for(0)

    benchmark.pedantic(read_tx, setup=setup, rounds=50)


def test_fig7_latency_table(benchmark, report):
    """Virtual time from consumption event to decided outcome."""
    table = Table(
        "FIG7: ack-path virtual latency (read/commit -> outcome decided)",
        ["channel latency (ms)", "mode", "read at (ms)", "decided at (ms)",
         "ack hop cost (ms)"],
    )
    for latency in (0, 10, 100, 1_000):
        for mode in ("read", "tx-commit"):
            clock, scheduler, service, receiver, condition = build_pair(latency)
            cmid = service.send_message({"n": 1}, condition)
            scheduler.run_for(latency)  # original arrives
            if mode == "read":
                receiver.read_message("Q.IN")
            else:
                receiver.begin_tx()
                receiver.read_message("Q.IN")
                receiver.commit_tx()
            consumed_at = clock.now_ms()
            scheduler.run_for(latency)  # ack travels back
            outcome = service.outcome(cmid)
            assert outcome is not None and outcome.succeeded
            table.add_row(
                [
                    latency,
                    mode,
                    consumed_at,
                    outcome.decided_at_ms,
                    outcome.decided_at_ms - consumed_at,
                ]
            )
            # Shape check: the monitoring adds exactly one channel hop.
            assert outcome.decided_at_ms - consumed_at == latency
    report.emit(table)
    clock, scheduler, service, receiver, condition = build_pair(10)

    def roundtrip():
        cmid = service.send_message({"n": 1}, condition)
        scheduler.run_for(10)
        receiver.read_message("Q.IN")
        scheduler.run_for(10)
        return service.outcome(cmid)

    result = benchmark(roundtrip)
    assert result.succeeded


def test_fig7_vs_raw_report_options(benchmark, report):
    """The nearest standard-middleware mechanism (MQ COA/COD reports)
    against conditional acknowledgments: same message cost per hop, but
    reports stop at 'read' — no processing confirmation, no conditions,
    no outcome.  Quantifies the paper's §4 claim that the conditional
    infrastructure is what the application would need anyway."""
    from repro.mq.manager import QueueManager
    from repro.mq.message import Message
    from repro.mq.network import MessageNetwork
    from repro.mq.reports import parse_report, request_reports
    from repro.sim.clock import SimulatedClock
    from repro.sim.scheduler import EventScheduler

    table = Table(
        "FIG7b: conditional acks vs raw MQ report options (10ms channel)",
        ["mechanism", "messages on wire", "confirms read", "confirms processing",
         "evaluates conditions", "decides outcome"],
    )

    # Raw reports: original + COA + COD = 3 wire messages.
    clock = SimulatedClock()
    scheduler = EventScheduler(clock)
    network = MessageNetwork(scheduler=scheduler, seed=0)
    sender = network.add_manager(QueueManager("QM.S", clock))
    receiver_qm = network.add_manager(QueueManager("QM.R", clock))
    network.connect("QM.S", "QM.R", latency_ms=10)
    sender.define_queue("REPORTS.Q")
    receiver_qm.define_queue("IN.Q")
    tracked = request_reports(
        Message(body="x"), coa=True, cod=True,
        reply_to_manager="QM.S", reply_to_queue="REPORTS.Q",
    )
    sender.put_remote("QM.R", "IN.Q", tracked)
    scheduler.run_all()
    receiver_qm.get("IN.Q")
    scheduler.run_all()
    raw_wire = 1 + sum(1 for _ in sender.browse("REPORTS.Q"))
    table.add_row(["MQ COA+COD reports", raw_wire, True, False, False, False])

    # Conditional messaging: original + 1 ack = 2 wire messages, plus the
    # full outcome machinery.
    clock2, scheduler2, service, receiver, condition = build_pair(10)
    cmid = service.send_message({"n": 1}, condition)
    scheduler2.run_for(10)
    receiver.begin_tx()
    receiver.read_message("Q.IN")
    receiver.commit_tx()
    scheduler2.run_for(10)
    outcome = service.outcome(cmid)
    cond_wire = 1 + outcome.acks_received
    table.add_row(["conditional acks", cond_wire, True, True, True, True])
    report.emit(table)
    assert raw_wire == 3 and cond_wire == 2
    assert outcome.succeeded

    def raw_report_roundtrip():
        message = request_reports(
            Message(body="x"), coa=True, cod=True,
            reply_to_manager="QM.S", reply_to_queue="REPORTS.Q",
        )
        sender.put_remote("QM.R", "IN.Q", message)
        scheduler.run_all()
        receiver_qm.get("IN.Q")
        scheduler.run_all()
        while sender.get_wait("REPORTS.Q") is not None:
            pass

    benchmark.pedantic(raw_report_roundtrip, rounds=20)
