"""RELIA — reliability: lossy channels and crash recovery (§2.6, ref [16]).

Two experiments:

* **loss sweep** — message/ack delivery and outcome correctness as
  channel loss climbs; reliable store-and-forward must keep outcomes
  correct, trading only latency (retries), until deadlines are missed;
* **recovery** — queue-manager restart cost vs journal size, and
  correctness of the recovered state (staged compensations and logs
  intact; in-flight transactions presumed aborted).
"""

import pytest

from repro.core.builder import destination, destination_set
from repro.core.logqueues import COMPENSATION_QUEUE, SENDER_LOG_QUEUE
from repro.harness.reporting import Table
from repro.mq.manager import QueueManager
from repro.mq.message import Message
from repro.mq.persistence import MemoryJournal
from repro.sim.clock import SimulatedClock
from repro.workloads.scenarios import Testbed


def run_lossy(loss_rate, messages=30, seed=13):
    bed = Testbed(["R1"], latency_ms=10, loss_rate=loss_rate, seed=seed)
    condition = destination_set(
        destination("Q.R1", manager="QM.R1", recipient="R1",
                    msg_pick_up_time=30_000),
    )
    cmids = [
        bed.service.send_message({"i": i}, condition) for i in range(messages)
    ]

    def drain(remaining=600):
        bed.receiver("R1").read_all("Q.R1")
        if bed.service.pending_count() and remaining:
            bed.at(100, lambda: drain(remaining - 1))

    bed.at(100, drain)
    bed.run_all()
    outcomes = [bed.service.outcome(c) for c in cmids]
    return bed, outcomes


@pytest.mark.parametrize("loss", [0.0, 0.3])
def test_lossy_delivery_benchmark(benchmark, loss):
    bed, outcomes = benchmark.pedantic(lambda: run_lossy(loss), rounds=3)
    assert all(o is not None for o in outcomes)


def test_relia_loss_sweep(benchmark, report):
    table = Table(
        "RELIA: outcome correctness under channel loss (30s window)",
        ["loss rate", "successes/30", "failed xfer attempts", "delivered"],
    )
    for loss in (0.0, 0.1, 0.3, 0.6):
        bed, outcomes = run_lossy(loss)
        channel = bed.network.channel("QM.SENDER", "QM.R1")
        successes = sum(1 for o in outcomes if o.succeeded)
        table.add_row(
            [loss, successes, channel.stats.failed_attempts,
             channel.stats.delivered]
        )
        # Reliable messaging: with retries well inside the window, loss
        # costs latency, never outcomes.
        assert successes == 30
    report.emit(table)
    benchmark.pedantic(lambda: run_lossy(0.3), rounds=3)


def build_journaled_state(sends):
    clock = SimulatedClock()
    journal = MemoryJournal()
    manager = QueueManager("QM.S", clock, journal=journal)
    manager.define_queue(SENDER_LOG_QUEUE)
    manager.define_queue(COMPENSATION_QUEUE)
    manager.define_queue("Q.OUT")
    for i in range(sends):
        manager.put(SENDER_LOG_QUEUE, Message(body={"cmid": f"CM-{i}", "i": i}))
        manager.put(COMPENSATION_QUEUE, Message(body={"undo": i},
                                                correlation_id=f"CM-{i}"))
        manager.put("Q.OUT", Message(body={"i": i}))
    # Consume the outbox (journal records the gets too).
    while manager.get_wait("Q.OUT") is not None:
        pass
    return clock, journal, manager


@pytest.mark.parametrize("sends", [10, 100, 1_000])
def test_recovery_benchmark(benchmark, sends):
    clock, journal, manager = build_journaled_state(sends)
    recovered = benchmark(lambda: QueueManager.recover("QM.S", clock, journal))
    assert recovered.depth(SENDER_LOG_QUEUE) == sends
    assert recovered.depth(COMPENSATION_QUEUE) == sends
    assert recovered.depth("Q.OUT") == 0


def test_relia_recovery_table(benchmark, report):
    import time

    table = Table(
        "RELIA: queue-manager restart recovery vs journal size",
        ["sends journaled", "journal records", "recover wall ms",
         "slog recovered", "comps recovered"],
    )
    for sends in (10, 100, 1_000):
        clock, journal, manager = build_journaled_state(sends)
        start = time.perf_counter()
        recovered = QueueManager.recover("QM.S", clock, journal)
        wall_ms = (time.perf_counter() - start) * 1e3
        table.add_row(
            [
                sends,
                journal.size(),
                wall_ms,
                recovered.depth(SENDER_LOG_QUEUE),
                recovered.depth(COMPENSATION_QUEUE),
            ]
        )
        assert recovered.depth(COMPENSATION_QUEUE) == sends
    report.emit(table)
    clock, journal, manager = build_journaled_state(100)
    benchmark(lambda: QueueManager.recover("QM.S", clock, journal))
