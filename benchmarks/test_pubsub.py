"""PUBSUB — broker matching at fleet scale: trie vs the linear scan.

The device-fleet workload hinges on `TopicBroker.subscriptions_for`
staying cheap as subscriptions grow: the pre-trie broker evaluated every
pattern against every published topic (S pattern walks per publish),
which is quadratic-ish in fleet size once every device carries exact and
wildcard subscriptions.  The :class:`~repro.mq.pubsub.SubscriptionTrie`
walks the topic's segments instead, visiting only the literal path plus
live wildcard branches.

This bench builds fleet-shaped subscription populations (exact device
sensor topics, per-device ``*`` tails, per-sensor ``*.*`` cross-cuts,
per-site ``#`` monitors) at 100 / 1k / 10k subscriptions and measures:

* **matches/sec** — ``subscriptions_for`` with memoization off (every
  call walks the trie) vs ``subscriptions_for_linear`` (the differential
  reference, i.e. the old hot path), over a seeded topic mix;
* **publish latency** — p50/p95 of full ``publish`` calls through the
  broker (match cache on, selector-free), which adds copy fan-out and
  queue puts on top of matching.

Results land in ``BENCH_pubsub.json`` at the repo root; the CI
benchmark-smoke gate tracks ``speedup_10k_subs`` (trie vs linear at 10k
subscriptions).  Acceptance bar: >= 10x at 10k.  ``BENCH_SHORT=1`` cuts
the query/publish counts but keeps all three scales so the gated metric
exists on every run.
"""

import json
import os
import random
import time

from repro.harness.metrics import LatencyStats
from repro.harness.reporting import Table
from repro.mq.manager import QueueManager
from repro.mq.message import Message
from repro.mq.pubsub import TopicBroker
from repro.sim.clock import SimulatedClock

SHORT = os.environ.get("BENCH_SHORT", "") not in ("", "0")
SCALES = (100, 1_000, 10_000)
#: Timed match queries per (scale, matcher).
MATCH_QUERIES = 60 if SHORT else 400
#: Timed full publishes per scale.
PUBLISHES = 100 if SHORT else 600
SEED = 20260808

RESULT_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_pubsub.json")
)

SENSORS = ("temperature", "humidity", "power", "vibration")


def build_fleet_broker(subscriptions: int, match_cache_size: int) -> tuple:
    """A broker with a fleet-shaped subscription population.

    Roughly 70% exact device-sensor subscriptions, 20% per-device ``*``
    tails, 8% per-sensor cross-cuts, 2% per-site ``#`` monitors — the
    shape the fleet workload produces.  Returns (broker, topics) where
    ``topics`` is the pool of publishable device topics (half subscribed
    devices, half strangers, so matching pays both hit and miss paths).
    """
    rng = random.Random(SEED + subscriptions)
    manager = QueueManager(f"QM.BENCH.{subscriptions}", SimulatedClock())
    broker = TopicBroker(manager, match_cache_size=match_cache_size)
    sites = [f"site{i:02d}" for i in range(max(2, subscriptions // 100))]

    def device_name(i: int) -> str:
        return f"dev{i:05d}"

    count = 0
    serial = 0
    while count < subscriptions:
        serial += 1
        kind = rng.random()
        site = rng.choice(sites)
        device = device_name(rng.randrange(subscriptions))
        if kind < 0.70:
            pattern = f"fleet.{site}.{device}.{rng.choice(SENSORS)}"
        elif kind < 0.90:
            pattern = f"fleet.{site}.{device}.*"
        elif kind < 0.98:
            pattern = f"fleet.*.*.{rng.choice(SENSORS)}"
        else:
            pattern = f"fleet.{site}.#"
        broker.subscribe(pattern, f"s{serial:06d}")
        count += 1

    topics = []
    for i in range(MATCH_QUERIES):
        site = rng.choice(sites)
        # Half the topics belong to devices the population subscribed to,
        # half to strangers (auto-discovered devices nobody watches yet).
        device = device_name(
            rng.randrange(subscriptions)
            if i % 2 == 0
            else subscriptions + rng.randrange(subscriptions)
        )
        topics.append(f"fleet.{site}.{device}.{rng.choice(SENSORS)}")
    return broker, topics


def timed_matching(matcher, topics) -> float:
    """Seconds per match query (matcher is a subscriptions_for variant)."""
    started = time.perf_counter()
    for topic in topics:
        matcher(topic)
    return (time.perf_counter() - started) / len(topics)


def test_trie_matching_vs_linear_scan(report):
    results = []
    for scale in SCALES:
        # Memoization off: every subscriptions_for call walks the trie,
        # so the comparison is matcher vs matcher, not dict-hit vs scan.
        broker, topics = build_fleet_broker(scale, match_cache_size=0)
        trie_s = timed_matching(broker.subscriptions_for, topics)
        linear_s = timed_matching(broker.subscriptions_for_linear, topics)

        # Full-publish latency on a fresh broker with the cache on (the
        # production configuration), publishing over a rotating topic set
        # so the cache serves repeats like a chatty sensor would.
        pub_broker, pub_topics = build_fleet_broker(
            scale, match_cache_size=4096
        )
        fanout = 0
        samples = []
        for i in range(PUBLISHES):
            topic = pub_topics[i % len(pub_topics)]
            message = Message(body={"n": i}, properties={"n": i})
            started = time.perf_counter()
            fanout += pub_broker.publish(topic, message)
            samples.append((time.perf_counter() - started) * 1e6)
        publish_stats = LatencyStats.from_samples(samples)

        results.append(
            {
                "subscriptions": scale,
                "match_queries": len(topics),
                "trie_us_per_match": trie_s * 1e6,
                "linear_us_per_match": linear_s * 1e6,
                "trie_matches_per_sec": 1.0 / trie_s if trie_s else float("inf"),
                "linear_matches_per_sec": (
                    1.0 / linear_s if linear_s else float("inf")
                ),
                "speedup": linear_s / trie_s if trie_s else float("inf"),
                "publishes": PUBLISHES,
                "publish_p50_us": publish_stats.p50,
                "publish_p95_us": publish_stats.p95,
                "avg_fanout": fanout / PUBLISHES,
            }
        )

    table = Table(
        f"PUBSUB: trie vs linear-scan matching ({MATCH_QUERIES} queries,"
        f" {PUBLISHES} publishes per scale)",
        [
            "subs",
            "trie us/match",
            "linear us/match",
            "speedup",
            "matches/sec (trie)",
            "publish p50 us",
            "publish p95 us",
        ],
    )
    for row in results:
        table.add_row(
            [
                row["subscriptions"],
                round(row["trie_us_per_match"], 2),
                round(row["linear_us_per_match"], 2),
                f"{row['speedup']:.1f}x",
                int(row["trie_matches_per_sec"]),
                round(row["publish_p50_us"], 1),
                round(row["publish_p95_us"], 1),
            ]
        )
    report.emit(table)

    speedup_10k_subs = next(
        row["speedup"] for row in results if row["subscriptions"] == 10_000
    )
    payload = {
        "short": SHORT,
        "match_queries": MATCH_QUERIES,
        "publishes": PUBLISHES,
        "scales": list(SCALES),
        "results": results,
        "speedup_10k_subs": speedup_10k_subs,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    # Acceptance bar: the trie beats the 10k-subscription linear scan by
    # at least an order of magnitude.
    assert speedup_10k_subs >= 10.0, results
