"""Shared benchmark plumbing.

Every benchmark both (a) times a representative operation through the
``benchmark`` fixture and (b) emits the experiment's table — the rows
EXPERIMENTS.md records — via the ``report`` fixture, which prints it and
appends it to ``benchmarks/results/<experiment>.txt`` so the output
survives pytest's capture.
"""

import os

import pytest

from repro.harness.reporting import Table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class Reporter:
    """Collects and persists experiment tables for one bench module."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.path = os.path.join(RESULTS_DIR, f"{name}.txt")
        os.makedirs(RESULTS_DIR, exist_ok=True)
        # Fresh file per run of this module.
        if os.path.exists(self.path):
            os.remove(self.path)

    def emit(self, table: Table) -> None:
        self.emit_text(table.render())

    def emit_text(self, rendered: str) -> None:
        """Persist pre-rendered output (trace timelines, metric dumps)."""
        print("\n" + rendered + "\n")
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(rendered)
            f.write("\n\n")


@pytest.fixture(scope="module")
def report(request) -> Reporter:
    """Module-scoped table reporter named after the bench module."""
    module = request.module.__name__.split(".")[-1]
    return Reporter(module)
