"""FIG2+5 — Example 2, the air-traffic shared queue (paper Figs. 2 & 5).

Any-one-of-N pick-up within 20 seconds, 21-second evaluation timeout.
Characterizes decision latency vs. controller reaction time (early
success detection) and the timeout-bounded failure path.
"""

import pytest

from repro.harness.reporting import Table
from repro.harness.runner import run_example2
from repro.workloads.scenarios import SECOND_MS


def test_flight_scenario_benchmark(benchmark):
    result = benchmark(run_example2)
    assert result.succeeded


def test_fig2_reaction_sweep(benchmark, report):
    """Decision time tracks the pick-up: early reads decide early; the
    failure case decides exactly at the evaluation timeout (21s)."""
    table = Table(
        "FIG2+5: Example 2 — controller reaction sweep (20s window, 21s timeout)",
        ["reaction (s)", "outcome", "decided at (s)", "picked by"],
    )
    for reaction_s in (1, 5, 10, 15, 19, 25, None):
        result = run_example2(
            first_reaction_ms=None if reaction_s is None else reaction_s * SECOND_MS
        )
        picked = result.extras["picked_by"]
        table.add_row(
            [
                "never" if reaction_s is None else reaction_s,
                result.outcome.outcome.value,
                result.outcome.decided_at_ms / SECOND_MS,
                picked[0] if picked else "--",
            ]
        )
        if reaction_s is not None and reaction_s <= 19:
            assert result.succeeded
        else:
            assert not result.succeeded
            assert result.outcome.decided_at_ms == 21 * SECOND_MS
    report.emit(table)
    benchmark(lambda: run_example2(first_reaction_ms=5 * SECOND_MS))


def test_fig2_controller_count(benchmark, report):
    """The shared queue delivers each flight to exactly one controller
    regardless of how many poll it."""
    table = Table(
        "FIG2+5: controller-count sweep (single-consume shared queue)",
        ["controllers", "outcome", "distinct claimants"],
    )
    for count in (1, 2, 4, 8):
        result = run_example2(controllers=count, first_reaction_ms=2 * SECOND_MS)
        table.add_row(
            [count, result.outcome.outcome.value, len(result.extras["picked_by"])]
        )
        assert result.succeeded
        assert len(result.extras["picked_by"]) == 1
    report.emit(table)
    benchmark(lambda: run_example2(controllers=8, first_reaction_ms=2 * SECOND_MS))
