"""Fail CI when a committed benchmark regresses against its baseline.

Usage (what the CI benchmark-smoke job runs)::

    cp BENCH_throughput.json /tmp/throughput.json     # committed baselines
    cp BENCH_persistence.json /tmp/persistence.json
    cp BENCH_query.json /tmp/query.json
    BENCH_SHORT=1 pytest benchmarks/test_throughput.py benchmarks/test_query.py
    python benchmarks/check_bench_regression.py \
        --gate /tmp/throughput.json:BENCH_throughput.json \
        --gate /tmp/persistence.json:BENCH_persistence.json \
        --gate /tmp/query.json:BENCH_query.json

Each ``--gate baseline:current[:tolerance]`` pair is compared on the
metrics the file carries (auto-detected from its shape):

* ``BENCH_throughput.json`` — ``msgs_per_sec``, plus
  ``multiprocess.speedup_vs_1`` (wire-transport process scaling at 4
  receiver processes) when the file carries a ``multiprocess`` section;
* ``BENCH_persistence.json`` — ``flushes_per_sec`` per journal backend
  (each backend gated separately, so one backend regressing cannot hide
  behind another improving);
* ``BENCH_query.json`` — ``speedup_10k``, the worst selector-pushdown
  speedup over the linear scan at depth 10k;
* ``BENCH_pubsub.json`` — ``speedup_10k_subs``, the subscription-trie
  matching speedup over the linear pattern scan at 10k subscriptions.

All metrics are higher-is-better; a gate fails when the current value is
more than ``tolerance`` (default 25%) below the baseline.  Wall-clock
numbers on shared CI runners are noisy even with best-of-N reporting, so
the tolerance is deliberately loose: the gate exists to catch real
hot-path regressions (a lost optimization, an accidental per-message
flush, a selector scan that stopped using the index), not 5% scheduling
jitter.  Ratio metrics like ``speedup_10k`` divide out machine speed and
are steadier than raw rates.

Improvements never fail; the job log suggests refreshing the committed
baseline when the current run is substantially faster.

The legacy single-file interface (``--baseline``/``--current``
[``--tolerance``]) is still accepted and behaves exactly as before.
"""

import argparse
import json
import sys

DEFAULT_TOLERANCE = 0.25


def _load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"{path}: cannot read benchmark JSON ({exc})")


def _positive(path, name, value):
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"{path}: no usable {name} field ({exc})")
    if value <= 0:
        raise SystemExit(f"{path}: non-positive {name} {value!r}")
    return value


def extract_metrics(path, data):
    """name -> value (higher is better), auto-detected from the shape."""
    if "msgs_per_sec" in data:
        metrics = {
            "msgs_per_sec": _positive(path, "msgs_per_sec", data["msgs_per_sec"])
        }
        if "multiprocess" in data:
            # Process-scaling ratio (4-or-more receiver processes vs. 1
            # over the wire transport).  A ratio, so machine speed
            # divides out — but it does depend on the runner's core
            # count, hence the looser tolerance the CI job passes.
            metrics["multiprocess speedup_vs_1"] = _positive(
                path,
                "multiprocess speedup_vs_1",
                data["multiprocess"].get("speedup_vs_1"),
            )
        return metrics
    if "backends" in data:
        metrics = {}
        for entry in data["backends"]:
            backend = entry.get("backend", "?")
            metrics[f"{backend} flushes_per_sec"] = _positive(
                path, f"{backend} flushes_per_sec", entry.get("flushes_per_sec")
            )
        if not metrics:
            raise SystemExit(f"{path}: empty backends list")
        return metrics
    if "speedup_10k" in data:
        return {"speedup_10k": _positive(path, "speedup_10k", data["speedup_10k"])}
    if "speedup_10k_subs" in data:
        return {
            "speedup_10k_subs": _positive(
                path, "speedup_10k_subs", data["speedup_10k_subs"]
            )
        }
    raise SystemExit(f"{path}: unrecognized benchmark shape (keys {sorted(data)})")


def check_gate(baseline_path, current_path, tolerance):
    """Print the comparison; return the number of regressed metrics."""
    baseline = extract_metrics(baseline_path, _load(baseline_path))
    current = extract_metrics(current_path, _load(current_path))
    failures = 0
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(
                f"{current_path}: metric {name!r} missing from current run",
                file=sys.stderr,
            )
            failures += 1
            continue
        now = current[name]
        floor = base * (1.0 - tolerance)
        change = (now - base) / base * 100.0
        print(
            f"{current_path}: {name} baseline {base:.2f}, current {now:.2f} "
            f"({change:+.1f}%), floor {floor:.2f} (tolerance {tolerance:.0%})"
        )
        if now < floor:
            print(
                f"FAIL: {name} regressed past the tolerance; if this is an"
                f" intentional trade-off, refresh the committed"
                f" {current_path} baseline in the same change.",
                file=sys.stderr,
            )
            failures += 1
        elif now > base * (1.0 + tolerance):
            print(
                f"note: {name} beats the baseline by more than the"
                f" tolerance — consider committing the fresh {current_path}"
                f" so the gate tracks the new level."
            )
    return failures


def parse_gate(spec):
    """'baseline:current[:tolerance]' -> (baseline, current, tolerance)."""
    parts = spec.split(":")
    if len(parts) == 2:
        return parts[0], parts[1], None
    if len(parts) == 3:
        try:
            tolerance = float(parts[2])
        except ValueError:
            raise SystemExit(f"--gate {spec!r}: bad tolerance {parts[2]!r}")
        return parts[0], parts[1], tolerance
    raise SystemExit(f"--gate {spec!r}: expected baseline:current[:tolerance]")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate CI on benchmark regressions."
    )
    parser.add_argument(
        "--gate", action="append", default=[], metavar="BASELINE:CURRENT[:TOL]",
        help="gate one benchmark file pair (repeatable)",
    )
    parser.add_argument(
        "--baseline", help="legacy: single baseline JSON (the reference)"
    )
    parser.add_argument(
        "--current", help="legacy: single current JSON produced by this run"
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below baseline (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")

    gates = [parse_gate(spec) for spec in args.gate]
    if args.baseline or args.current:
        if not (args.baseline and args.current):
            parser.error("--baseline and --current must be given together")
        gates.append((args.baseline, args.current, None))
    if not gates:
        parser.error("nothing to gate: pass --gate or --baseline/--current")

    failures = 0
    for baseline_path, current_path, tolerance in gates:
        if tolerance is not None and not 0 <= tolerance < 1:
            raise SystemExit(
                f"--gate {baseline_path}:{current_path}: tolerance"
                f" {tolerance!r} must be in [0, 1)"
            )
        failures += check_gate(
            baseline_path,
            current_path,
            args.tolerance if tolerance is None else tolerance,
        )
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
