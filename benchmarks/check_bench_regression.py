"""Fail CI when the throughput benchmark regresses against the baseline.

Usage (what the CI benchmark-smoke job runs)::

    cp BENCH_throughput.json /tmp/baseline.json       # committed baseline
    BENCH_SHORT=1 pytest benchmarks/test_throughput.py  # rewrites the file
    python benchmarks/check_bench_regression.py \
        --baseline /tmp/baseline.json --current BENCH_throughput.json

Compares ``msgs_per_sec`` and exits non-zero when the current run is
more than ``--tolerance`` (default 25%) below the baseline.  Wall-clock
throughput on shared CI runners is noisy even with the benchmark's
best-of-N reporting, so the tolerance is deliberately loose: the gate
exists to catch real hot-path regressions (a lost optimization, an
accidental per-message flush), not 5% scheduling jitter.

Improvements never fail; the job log suggests refreshing the committed
baseline when the current run is substantially faster.
"""

import argparse
import json
import sys


def load_msgs_per_sec(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    try:
        value = float(data["msgs_per_sec"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"{path}: no usable msgs_per_sec field ({exc})")
    if value <= 0:
        raise SystemExit(f"{path}: non-positive msgs_per_sec {value!r}")
    return value


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate CI on throughput-benchmark regressions."
    )
    parser.add_argument(
        "--baseline", required=True,
        help="BENCH_throughput.json as committed (the reference)",
    )
    parser.add_argument(
        "--current", required=True,
        help="BENCH_throughput.json produced by this run",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional drop below baseline (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")

    baseline = load_msgs_per_sec(args.baseline)
    current = load_msgs_per_sec(args.current)
    floor = baseline * (1.0 - args.tolerance)
    change = (current - baseline) / baseline * 100.0

    print(
        f"baseline {baseline:.1f} msgs/s, current {current:.1f} msgs/s "
        f"({change:+.1f}%), floor {floor:.1f} msgs/s "
        f"(tolerance {args.tolerance:.0%})"
    )
    if current < floor:
        print(
            "FAIL: throughput regressed past the tolerance; if this is an"
            " intentional trade-off, refresh the committed"
            " BENCH_throughput.json baseline in the same change.",
            file=sys.stderr,
        )
        return 1
    if current > baseline * (1.0 + args.tolerance):
        print(
            "note: current run beats the baseline by more than the"
            " tolerance — consider committing the fresh"
            " BENCH_throughput.json so the gate tracks the new level."
        )
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
