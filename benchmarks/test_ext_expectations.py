"""EXT — receiver-side expectations: matching throughput and latency.

Characterizes the receiver-role extension: arrival-matching cost as the
number of concurrently pending expectations grows, and the decision
latency distribution (arrival-triggered vs deadline-triggered).
"""

import pytest

from repro.core.expectations import ExpectationService
from repro.harness.reporting import Table
from repro.mq.manager import QueueManager
from repro.mq.message import Message
from repro.sim.clock import SimulatedClock
from repro.sim.scheduler import EventScheduler


def build(pending, queues=4):
    clock = SimulatedClock()
    scheduler = EventScheduler(clock)
    manager = QueueManager("QM.R", clock)
    service = ExpectationService(manager, scheduler=scheduler)
    expectations = [
        service.expect(f"Q.{i % queues}", within_ms=10_000_000,
                       selector=f"tag = {i}", min_count=1)
        for i in range(pending)
    ]
    return clock, scheduler, manager, service, expectations


@pytest.mark.parametrize("pending", [10, 100, 1_000])
def test_arrival_matching_cost(benchmark, pending):
    clock, scheduler, manager, service, expectations = build(pending)
    counter = {"i": 0}

    def arrival():
        counter["i"] += 1
        manager.put(
            "Q.0", Message(body=None, properties={"tag": -counter["i"]})
        )  # matches nothing: pure matching-scan cost

    benchmark.pedantic(arrival, rounds=50, iterations=2)


def test_ext_expectations_table(benchmark, report):
    import time

    table = Table(
        "EXT: expectation matching — arrivals/sec vs pending expectations",
        ["pending", "arrivals", "wall ms", "arrivals/s", "met"],
    )
    for pending in (10, 100, 1_000):
        clock, scheduler, manager, service, expectations = build(pending)
        start = time.perf_counter()
        for i in range(pending):
            manager.put(
                f"Q.{i % 4}", Message(body=None, properties={"tag": i})
            )
        wall_ms = (time.perf_counter() - start) * 1e3
        met = sum(1 for e in expectations if e.met)
        table.add_row(
            [pending, pending, wall_ms, pending / (wall_ms / 1e3), met]
        )
        assert met == pending
    report.emit(table)
    clock, scheduler, manager, service, expectations = build(100)
    benchmark.pedantic(
        lambda: manager.put("Q.0", Message(body=None, properties={"tag": -1})),
        rounds=100,
    )


def test_ext_expectation_decision_latency(benchmark, report):
    table = Table(
        "EXT: expectation decision latency (virtual ms)",
        ["trigger", "registered at", "decided at", "latency"],
    )
    # Arrival-triggered: decided the instant the message lands.
    clock = SimulatedClock()
    scheduler = EventScheduler(clock)
    manager = QueueManager("QM.R", clock)
    service = ExpectationService(manager, scheduler=scheduler)
    expectation = service.expect("Q", within_ms=10_000)
    scheduler.run_until(400)
    manager.put("Q", Message(body=None))
    table.add_row(["arrival", 0, expectation.decided_at_ms,
                   expectation.decided_at_ms])
    assert expectation.decided_at_ms == 400
    # Deadline-triggered: decided exactly at the deadline.
    late = service.expect("Q2", within_ms=1_000)
    scheduler.run_all()
    table.add_row(["deadline", 400, late.decided_at_ms,
                   late.decided_at_ms - 400])
    assert late.decided_at_ms == 1_400
    report.emit(table)

    def roundtrip():
        clock = SimulatedClock()
        scheduler = EventScheduler(clock)
        manager = QueueManager("QM.R", clock)
        service = ExpectationService(manager, scheduler=scheduler)
        expectation = service.expect("Q", within_ms=1_000)
        manager.put("Q", Message(body=None))
        return expectation

    result = benchmark.pedantic(roundtrip, rounds=30)
    assert result.met
