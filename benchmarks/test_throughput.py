"""THROUGHPUT — group-commit journaling under conditional-send fan-out.

The group-commit optimisation routes every journaled write of one
conditional send — the staged compensations, the SLOG entry, and the
per-destination transmission parking — through a single commit group, so
one send costs one journal flush instead of one per record.  This bench
quantifies that:

* journal flushes per conditional send, group commit on vs. off, at
  fan-out ``FAN_OUT`` (the acceptance bar is a >= 3x reduction);
* end-to-end sustained throughput (msgs/sec of decided conditional
  messages, wall clock) through the full lifecycle — send, delivery,
  receipt acknowledgment, outcome decision — on a journaled testbed;
* decision latency percentiles (virtual ms, send -> outcome).

Results land in ``BENCH_throughput.json`` at the repo root (consumed by
the CI benchmark-smoke step) and in the usual results table.  Set
``BENCH_SHORT=1`` for a fast smoke run.
"""

import json
import os
import time

from repro.core.builder import destination, destination_set
from repro.harness.reporting import Table
from repro.obs.registry import MetricsRegistry
from repro.workloads.scenarios import Testbed

FAN_OUT = 8
SHORT = os.environ.get("BENCH_SHORT", "") not in ("", "0")
N_MESSAGES = 25 if SHORT else 200
RESULT_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_throughput.json")
)

RECEIVERS = [f"R{i}" for i in range(FAN_OUT)]


def build_testbed(metrics=None):
    return Testbed(
        RECEIVERS,
        latency_ms=5,
        journaled=True,
        metrics=metrics,
    )


def build_condition(testbed):
    """All FAN_OUT receivers must pick the message up within a minute."""
    return destination_set(
        *[
            destination(
                testbed.queue_of(name), manager=f"QM.{name}", recipient=name
            )
            for name in RECEIVERS
        ],
        msg_pick_up_time=60_000,
    )


def flushes_per_send(group_commit):
    """Journal flushes one conditional send costs on the sender."""
    testbed = build_testbed()
    testbed.service.group_commit = group_commit
    condition = build_condition(testbed)
    journal = testbed.journals[Testbed.SENDER]
    n = 20
    before = journal.flush_count
    for i in range(n):
        testbed.service.send_message({"n": i}, condition)
    return (journal.flush_count - before) / n


def run_lifecycle(n_messages):
    """Send/deliver/ack/decide ``n_messages``; returns (metrics, elapsed_s)."""
    metrics = MetricsRegistry()
    testbed = build_testbed(metrics=metrics)
    condition = build_condition(testbed)
    started = time.perf_counter()
    for i in range(n_messages):
        testbed.service.send_message({"n": i}, condition)
    # Deliver the fan-out (bounded virtual-time step: run_all would race
    # past the pick-up deadline and cancel everything), then have every
    # receiver drain its inbox — read_message sends the receipt
    # acknowledgment, whose arrival at the sender (push-mode evaluation)
    # decides the outcome.
    testbed.run_until(testbed.clock.now_ms() + 1_000)
    for name in RECEIVERS:
        testbed.receiver(name).read_all(testbed.queue_of(name))
    testbed.run_until(testbed.clock.now_ms() + 1_000)
    elapsed = time.perf_counter() - started
    return metrics, elapsed


def test_throughput(report):
    batched = flushes_per_send(group_commit=True)
    unbatched = flushes_per_send(group_commit=False)
    reduction = unbatched / batched if batched else float("inf")

    metrics, elapsed = run_lifecycle(N_MESSAGES)
    decided = metrics.counter("outcomes.success")
    assert decided == N_MESSAGES
    msgs_per_sec = decided / elapsed if elapsed else float("inf")
    latency = metrics.histogram_stats("decision_latency_ms")
    flushes = metrics.counter("journal.flushes")
    records = metrics.counter("journal.records")
    batch_sizes = metrics.histogram("journal.batch_records")

    table = Table(
        "THROUGHPUT: group-commit journaling at fan-out "
        f"{FAN_OUT} ({N_MESSAGES} msgs)",
        ["metric", "value"],
    )
    table.add_row(["flushes/send (group commit)", batched])
    table.add_row(["flushes/send (per-record)", unbatched])
    table.add_row(["flush reduction", reduction])
    table.add_row(["lifecycle msgs/sec (wall)", msgs_per_sec])
    table.add_row(["decision latency p50 (virtual ms)", latency.p50])
    table.add_row(["decision latency p99 (virtual ms)", latency.p99])
    table.add_row(["journal records/flush (lifecycle)", records / flushes])
    report.emit(table)

    payload = {
        "fan_out": FAN_OUT,
        "messages": N_MESSAGES,
        "short": SHORT,
        "flushes_per_send_batched": batched,
        "flushes_per_send_unbatched": unbatched,
        "flush_reduction": reduction,
        "msgs_per_sec": msgs_per_sec,
        "decision_latency_ms": {
            "p50": latency.p50,
            "p95": latency.p95,
            "p99": latency.p99,
        },
        "journal": {
            "flushes": flushes,
            "records": records,
            "bytes": metrics.counter("journal.bytes"),
            "mean_batch_records": (
                sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
            ),
        },
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    # The acceptance bar: group commit cuts flushes per conditional send
    # by at least 3x at fan-out 8 (measured: one commit group vs. one
    # flush per compensation batch + SLOG entry + parked transmission).
    assert reduction >= 3.0
    assert batched <= unbatched


def test_send_benchmark(benchmark):
    """pytest-benchmark timing of a group-committed conditional send."""
    testbed = build_testbed()
    condition = build_condition(testbed)

    def send():
        testbed.service.send_message({"n": 1}, condition)

    benchmark.pedantic(send, rounds=20 if SHORT else 50, iterations=2,
                       warmup_rounds=2)
