"""THROUGHPUT — hot-path journaling under conditional-send fan-out.

Two batching layers cut the journal-flush cost of the hot path:

* **group commit** routes every journaled write of one conditional send
  — staged compensations, the SLOG entry, the per-destination
  transmission parking — through a single commit group;
* **adaptive flush** (:meth:`Journal.enable_adaptive_flush`) holds the
  commit group open for an EWMA-derived window so *independent* writes
  arriving close together — concurrent sends, a receiver's drain-time
  gets, the ack intake — coalesce into one physical write.

This bench quantifies both:

* journal flushes per conditional send, group commit on vs. off, at
  fan-out ``FAN_OUT`` (the acceptance bar is a >= 3x reduction);
* end-to-end sustained throughput (msgs/sec of decided conditional
  messages, wall clock) through the full lifecycle — send, delivery,
  receipt acknowledgment, outcome decision — on a journaled testbed
  with adaptive flush enabled;
* decision latency percentiles (virtual ms, send -> outcome).  Sends
  are staggered and receivers drain off arrival-triggered events, so
  every decision is stamped at event granularity — the latency
  distribution reflects channel latency + jitter + flush hold, not the
  stride of a ``run_until`` polling loop.

Results land in ``BENCH_throughput.json`` at the repo root (consumed by
the CI benchmark-smoke step) and in the usual results table.  Set
``BENCH_SHORT=1`` for a fast smoke run.

``test_persistence_backends`` compares the journal backends
(memory / file / sqlite / binfile — the binary-codec file store — and
sqlstore, the SQL-backed live queue store) at the same fan-out: journal
flushes per second under the conditional-send workload and wall-clock
recovery time from the resulting log, written to
``BENCH_persistence.json``.  Backends must agree on the recovered queue
depths — including across codecs, and including the store whose
"recovery" is just opening the database.
"""

import json
import os
import time

from repro.core.builder import destination, destination_set
from repro.harness.reporting import Table
from repro.harness.runner import run_multiprocess_benchmark
from repro.mq.manager import QueueManager
from repro.mq.persistence import journal_factory_for
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import SimulatedClock
from repro.workloads.scenarios import Testbed

FAN_OUT = 8
SHORT = os.environ.get("BENCH_SHORT", "") not in ("", "0")
N_MESSAGES = 25 if SHORT else 200
N_PERSISTENCE = 10 if SHORT else 50
#: Sends are issued in bursts of this many, 1 virtual ms apart within a
#: burst — close enough for the adaptive hold window to coalesce them.
SEND_BURST = 16
#: Virtual ms between burst starts.
BURST_GAP_MS = 40
#: Wall-clock throughput is noisy on shared machines; the lifecycle runs
#: this many times and the fastest run is reported (standard de-noising
#: for latency-sensitive microbenchmarks — the best run is the one with
#: the least scheduler/cache interference, i.e. closest to the true cost).
LIFECYCLE_RUNS = 1 if SHORT else 5
RESULT_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_throughput.json")
)
PERSISTENCE_RESULT_PATH = os.path.abspath(
    os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_persistence.json"
    )
)
PERSISTENCE_BACKENDS = ("memory", "file", "sqlite", "binfile", "sqlstore")

#: Multi-process scaling: receiver-host process counts to sweep.  The
#: workload is processing-bound (``MP_PROCESSING_MS`` of simulated work
#: per message), so adding receiver processes overlaps that work — the
#: scaling the deployment exists to buy.
MP_COUNTS = (1, 2) if SHORT else (1, 2, 4, 8)
MP_MESSAGES = 60 if SHORT else 200
MP_PROCESSING_MS = 10.0
MP_TRANSPORT = "unix"

RECEIVERS = [f"R{i}" for i in range(FAN_OUT)]


def _merge_result(path, payload):
    """Write ``payload`` into ``path``, preserving sections other tests
    in this module own (the file is shared between the single-process
    and multi-process benchmarks, which may run separately)."""
    existing = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except ValueError:
            existing = {}
    existing.update(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2)
        handle.write("\n")


def build_testbed(metrics=None, adaptive_flush=False, jitter_ms=0):
    return Testbed(
        RECEIVERS,
        latency_ms=5,
        jitter_ms=jitter_ms,
        journaled=True,
        metrics=metrics,
        adaptive_flush=adaptive_flush,
    )


def attach_push_receivers(testbed):
    """Drain each inbox from an arrival-triggered event, 1 ms after the
    first delivery of a burst (coalesced: one pending drain per queue).

    Event-granularity drains are what make the decision-latency
    percentiles honest — each decision lands at send + channel latency
    (+ jitter) + drain + ack return, not at the next fixed-width
    ``run_until`` boundary.
    """
    for name in RECEIVERS:
        queue_name = testbed.queue_of(name)
        manager = testbed.manager_of(name)
        manager.ensure_queue(queue_name)
        pending = {"scheduled": False}

        def drain(name=name, queue_name=queue_name, pending=pending):
            pending["scheduled"] = False
            testbed.receiver(name).read_all(queue_name)

        def on_arrival(_message, pending=pending, drain=drain):
            if not pending["scheduled"]:
                pending["scheduled"] = True
                testbed.scheduler.call_later(1, drain)

        manager.queue(queue_name).subscribe(on_arrival)


def build_condition(testbed):
    """All FAN_OUT receivers must pick the message up within a minute."""
    return destination_set(
        *[
            destination(
                testbed.queue_of(name), manager=f"QM.{name}", recipient=name
            )
            for name in RECEIVERS
        ],
        msg_pick_up_time=60_000,
    )


def flushes_per_send(group_commit):
    """Journal flushes one conditional send costs on the sender."""
    testbed = build_testbed()
    testbed.service.group_commit = group_commit
    condition = build_condition(testbed)
    journal = testbed.journals[Testbed.SENDER]
    n = 20
    before = journal.flush_count
    for i in range(n):
        testbed.service.send_message({"n": i}, condition)
    return (journal.flush_count - before) / n


def run_lifecycle(n_messages):
    """Send/deliver/ack/decide ``n_messages``; returns (metrics, elapsed_s).

    Sends go out in bursts (``SEND_BURST`` apart by 1 virtual ms) so the
    adaptive flush window has concurrency to coalesce, and receivers
    drain via arrival-triggered events so each outcome is decided — and
    its latency stamped — at the event that caused it.
    """
    metrics = MetricsRegistry()
    testbed = Testbed(
        RECEIVERS,
        latency_ms=5,
        jitter_ms=3,
        journaled=True,
        journal_factory=journal_factory_for("memory", codec="binary"),
        metrics=metrics,
        adaptive_flush=True,
        pump_coalesce_ms=1,
    )
    condition = build_condition(testbed)
    attach_push_receivers(testbed)
    started = time.perf_counter()
    for i in range(n_messages):
        at_ms = (i // SEND_BURST) * BURST_GAP_MS + (i % SEND_BURST)
        testbed.at(
            at_ms,
            lambda i=i: testbed.service.send_message({"n": i}, condition),
        )
    # The pick-up deadline is 60 virtual seconds out and every drain is
    # event-driven, so running to quiescence decides everything without
    # racing past the deadline.
    testbed.run_all()
    elapsed = time.perf_counter() - started
    return metrics, elapsed


def test_throughput(report):
    batched = flushes_per_send(group_commit=True)
    unbatched = flushes_per_send(group_commit=False)
    reduction = unbatched / batched if batched else float("inf")

    # Best-of-N: every run must decide every message (correctness is
    # per-run), but the reported wall-clock numbers come from the fastest
    # run so machine noise does not mask a real regression — or fake one.
    metrics = elapsed = None
    for _ in range(LIFECYCLE_RUNS):
        run_metrics, run_elapsed = run_lifecycle(N_MESSAGES)
        assert run_metrics.counter("outcomes.success") == N_MESSAGES
        if elapsed is None or run_elapsed < elapsed:
            metrics, elapsed = run_metrics, run_elapsed
    decided = metrics.counter("outcomes.success")
    msgs_per_sec = decided / elapsed if elapsed else float("inf")
    latency = metrics.histogram_stats("decision_latency_ms")
    flushes = metrics.counter("journal.flushes")
    records = metrics.counter("journal.records")
    batch_sizes = metrics.histogram("journal.batch_records")

    mean_batch_records = (
        sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
    )

    table = Table(
        "THROUGHPUT: hot-path journaling at fan-out "
        f"{FAN_OUT} ({N_MESSAGES} msgs, adaptive flush)",
        ["metric", "value"],
    )
    table.add_row(["flushes/send (group commit)", batched])
    table.add_row(["flushes/send (per-record)", unbatched])
    table.add_row(["flush reduction", reduction])
    table.add_row(["lifecycle msgs/sec (wall)", msgs_per_sec])
    table.add_row(["decision latency p50 (virtual ms)", latency.p50])
    table.add_row(["decision latency p99 (virtual ms)", latency.p99])
    table.add_row(["journal records/flush (lifecycle)", records / flushes])
    table.add_row(["mean batch records (lifecycle)", mean_batch_records])
    report.emit(table)

    payload = {
        "fan_out": FAN_OUT,
        "messages": N_MESSAGES,
        "short": SHORT,
        "adaptive_flush": True,
        "flushes_per_send_batched": batched,
        "flushes_per_send_unbatched": unbatched,
        "flush_reduction": reduction,
        "msgs_per_sec": msgs_per_sec,
        "decision_latency_ms": {
            "p50": latency.p50,
            "p95": latency.p95,
            "p99": latency.p99,
        },
        "journal": {
            "flushes": flushes,
            "records": records,
            "bytes": metrics.counter("journal.bytes"),
            "mean_batch_records": mean_batch_records,
        },
    }
    _merge_result(RESULT_PATH, payload)

    # The acceptance bar: group commit cuts flushes per conditional send
    # by at least 3x at fan-out 8 (measured: one commit group vs. one
    # flush per compensation batch + SLOG entry + parked transmission).
    assert reduction >= 3.0
    assert batched <= unbatched
    # Adaptive flush coalesces independent writes: the mean physical
    # flush carries several records.
    assert mean_batch_records >= 4.0
    # Regression guard for the percentile bug: decisions are stamped at
    # event granularity, so latency reflects the ~5 ms channel (plus
    # jitter, drain, and ack return), not a 1,000 ms polling stride.
    assert latency.p50 < 1_000
    assert latency.p50 != latency.p99 or latency.p50 < 100


def test_multiprocess_throughput(report):
    """MULTIPROCESS: conditional-send throughput vs. receiver processes.

    Spawns real OS processes (``python -m repro.net.host``) wired over
    the asyncio unix-socket transport and sweeps the receiver count.
    Each message costs ``MP_PROCESSING_MS`` of application work on its
    receiver, so the sweep measures what the deployment buys: that work
    overlapping across processes while the wire protocol preserves
    exactly-once transfer.  Results land in the ``multiprocess`` section
    of ``BENCH_throughput.json`` (the single-process sections are
    preserved), gated in CI by ``check_bench_regression.py`` on
    ``speedup_vs_1``.
    """
    counts = []
    for processes in MP_COUNTS:
        result = run_multiprocess_benchmark(
            receivers=processes,
            messages=MP_MESSAGES,
            processing_ms=MP_PROCESSING_MS,
            transport=MP_TRANSPORT,
            timeout_s=120.0,
        )
        # Correctness before speed: every conditional message must
        # decide successfully at every process count.
        assert result["decided_success"] == MP_MESSAGES, result
        assert result["pending"] == 0, result
        wire = result["wire"]
        counts.append(
            {
                "processes": processes,
                "sends_per_sec": result["sends_per_sec"],
                "elapsed_s": result["elapsed_s"],
                "decision_latency_ms": result["decision_latency_ms"],
                "wire": {
                    "retransmits": sum(
                        c.get("retransmits", 0) for c in wire.values()
                    ),
                    "reconnects": sum(
                        c.get("reconnects", 0) for c in wire.values()
                    ),
                },
            }
        )

    base_rate = counts[0]["sends_per_sec"]
    for entry in counts:
        entry["speedup_vs_1"] = (
            entry["sends_per_sec"] / base_rate if base_rate else 0.0
        )
    by_count = {entry["processes"]: entry for entry in counts}
    # The headline ratio is taken at 4 processes in the full sweep; the
    # SHORT (CI) sweep stops at 2 — few-core runners make a wider
    # short-run sweep startup-dominated rather than informative — so it
    # falls back to the top of the sweep there.
    speedup = by_count.get(4, counts[-1])["speedup_vs_1"]

    table = Table(
        f"MULTIPROCESS: {MP_MESSAGES} msgs over {MP_TRANSPORT} sockets, "
        f"{MP_PROCESSING_MS:g} ms work/msg",
        ["processes", "sends/sec", "p50 (ms)", "p99 (ms)", "speedup"],
    )
    for entry in counts:
        table.add_row(
            [
                entry["processes"],
                round(entry["sends_per_sec"], 1),
                round(entry["decision_latency_ms"]["p50"], 1),
                round(entry["decision_latency_ms"]["p99"], 1),
                round(entry["speedup_vs_1"], 2),
            ]
        )
    report.emit(table)

    _merge_result(
        RESULT_PATH,
        {
            "multiprocess": {
                "transport": MP_TRANSPORT,
                "messages": MP_MESSAGES,
                "processing_ms": MP_PROCESSING_MS,
                "short": SHORT,
                "counts": counts,
                "speedup_vs_1": speedup,
            }
        },
    )

    # Scaling bar, kept soft in-test (shared CI runners share cores with
    # the spawned hosts); the committed full-mode baseline shows >= 1.5x
    # at 4 processes and the CI gate tracks it via speedup_vs_1.
    assert speedup >= 1.2
    # No connection should ever drop on a quiet local socket.
    assert all(entry["wire"]["reconnects"] == 0 for entry in counts)


def test_persistence_backends(report, tmp_path):
    """PERSISTENCE: journal backends compared at fan-out ``FAN_OUT``.

    For each backend, runs ``N_PERSISTENCE`` group-committed conditional
    sends on a journaled testbed (flushes/sec, sends/sec, wall clock),
    then reopens the sender's journal and times
    :meth:`QueueManager.recover` over it.  Backends must agree on the
    recovered queue depths — the store changes, the state must not.
    """
    results = []
    recovered_depths = {}
    for backend in PERSISTENCE_BACKENDS:
        directory = os.path.join(str(tmp_path), backend)
        os.makedirs(directory, exist_ok=True)
        factory = journal_factory_for(backend, directory, sync="batch")
        testbed = Testbed(
            RECEIVERS,
            latency_ms=5,
            journaled=True,
            journal_factory=factory,
        )
        condition = build_condition(testbed)
        journal = testbed.journals[Testbed.SENDER]
        flushes_before = journal.flush_count
        started = time.perf_counter()
        for i in range(N_PERSISTENCE):
            testbed.service.send_message({"n": i}, condition)
        send_elapsed = time.perf_counter() - started
        flushes = journal.flush_count - flushes_before

        # Recovery: reopen the store exactly as a restart would (memory
        # journals survive only in-process, so recover from the live
        # object) and time the full replay into a fresh manager.
        if backend == "memory":
            reopened = journal
        else:
            journal.close()
            reopened = factory(Testbed.SENDER)
        started = time.perf_counter()
        recovered = QueueManager.recover(
            Testbed.SENDER, SimulatedClock(), reopened
        )
        recovery_elapsed = time.perf_counter() - started
        recovered_depths[backend] = {
            name: recovered.depth(name) for name in recovered.queue_names()
        }
        for store in testbed.journals.values():
            store.close()
        reopened.close()
        results.append(
            {
                "backend": backend,
                "sends": N_PERSISTENCE,
                "flushes": flushes,
                "flushes_per_sec": flushes / send_elapsed if send_elapsed
                else float("inf"),
                "sends_per_sec": N_PERSISTENCE / send_elapsed if send_elapsed
                else float("inf"),
                "send_wall_s": send_elapsed,
                "recovery_wall_s": recovery_elapsed,
                "recovered_queues": len(recovered_depths[backend]),
            }
        )

    table = Table(
        f"PERSISTENCE: journal backends at fan-out {FAN_OUT} "
        f"({N_PERSISTENCE} sends)",
        ["backend", "flushes/sec", "sends/sec", "recovery (s)"],
    )
    for row in results:
        table.add_row(
            [
                row["backend"],
                round(row["flushes_per_sec"], 1),
                round(row["sends_per_sec"], 1),
                round(row["recovery_wall_s"], 4),
            ]
        )
    report.emit(table)

    payload = {
        "fan_out": FAN_OUT,
        "sends": N_PERSISTENCE,
        "short": SHORT,
        "sync": "batch",
        "backends": results,
    }
    with open(PERSISTENCE_RESULT_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    # Same workload, same recovered state, whatever the store.
    baseline = recovered_depths[PERSISTENCE_BACKENDS[0]]
    for backend in PERSISTENCE_BACKENDS[1:]:
        assert recovered_depths[backend] == baseline, backend
    # Group commit holds on every backend: one flush per send.
    for row in results:
        assert row["flushes"] <= row["sends"] * 2, row


def test_send_benchmark(benchmark):
    """pytest-benchmark timing of a group-committed conditional send."""
    testbed = build_testbed()
    condition = build_condition(testbed)

    def send():
        testbed.service.send_message({"n": 1}, condition)

    benchmark.pedantic(send, rounds=20 if SHORT else 50, iterations=2,
                       warmup_rounds=2)
