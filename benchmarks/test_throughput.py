"""THROUGHPUT — group-commit journaling under conditional-send fan-out.

The group-commit optimisation routes every journaled write of one
conditional send — the staged compensations, the SLOG entry, and the
per-destination transmission parking — through a single commit group, so
one send costs one journal flush instead of one per record.  This bench
quantifies that:

* journal flushes per conditional send, group commit on vs. off, at
  fan-out ``FAN_OUT`` (the acceptance bar is a >= 3x reduction);
* end-to-end sustained throughput (msgs/sec of decided conditional
  messages, wall clock) through the full lifecycle — send, delivery,
  receipt acknowledgment, outcome decision — on a journaled testbed;
* decision latency percentiles (virtual ms, send -> outcome).

Results land in ``BENCH_throughput.json`` at the repo root (consumed by
the CI benchmark-smoke step) and in the usual results table.  Set
``BENCH_SHORT=1`` for a fast smoke run.

``test_persistence_backends`` compares the three journal backends
(memory / file / sqlite) at the same fan-out: journal flushes per
second under the conditional-send workload and wall-clock recovery time
from the resulting log, written to ``BENCH_persistence.json``.
"""

import json
import os
import time

from repro.core.builder import destination, destination_set
from repro.harness.reporting import Table
from repro.mq.manager import QueueManager
from repro.mq.persistence import journal_factory_for
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import SimulatedClock
from repro.workloads.scenarios import Testbed

FAN_OUT = 8
SHORT = os.environ.get("BENCH_SHORT", "") not in ("", "0")
N_MESSAGES = 25 if SHORT else 200
N_PERSISTENCE = 10 if SHORT else 50
RESULT_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_throughput.json")
)
PERSISTENCE_RESULT_PATH = os.path.abspath(
    os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_persistence.json"
    )
)
PERSISTENCE_BACKENDS = ("memory", "file", "sqlite")

RECEIVERS = [f"R{i}" for i in range(FAN_OUT)]


def build_testbed(metrics=None):
    return Testbed(
        RECEIVERS,
        latency_ms=5,
        journaled=True,
        metrics=metrics,
    )


def build_condition(testbed):
    """All FAN_OUT receivers must pick the message up within a minute."""
    return destination_set(
        *[
            destination(
                testbed.queue_of(name), manager=f"QM.{name}", recipient=name
            )
            for name in RECEIVERS
        ],
        msg_pick_up_time=60_000,
    )


def flushes_per_send(group_commit):
    """Journal flushes one conditional send costs on the sender."""
    testbed = build_testbed()
    testbed.service.group_commit = group_commit
    condition = build_condition(testbed)
    journal = testbed.journals[Testbed.SENDER]
    n = 20
    before = journal.flush_count
    for i in range(n):
        testbed.service.send_message({"n": i}, condition)
    return (journal.flush_count - before) / n


def run_lifecycle(n_messages):
    """Send/deliver/ack/decide ``n_messages``; returns (metrics, elapsed_s)."""
    metrics = MetricsRegistry()
    testbed = build_testbed(metrics=metrics)
    condition = build_condition(testbed)
    started = time.perf_counter()
    for i in range(n_messages):
        testbed.service.send_message({"n": i}, condition)
    # Deliver the fan-out (bounded virtual-time step: run_all would race
    # past the pick-up deadline and cancel everything), then have every
    # receiver drain its inbox — read_message sends the receipt
    # acknowledgment, whose arrival at the sender (push-mode evaluation)
    # decides the outcome.
    testbed.run_until(testbed.clock.now_ms() + 1_000)
    for name in RECEIVERS:
        testbed.receiver(name).read_all(testbed.queue_of(name))
    testbed.run_until(testbed.clock.now_ms() + 1_000)
    elapsed = time.perf_counter() - started
    return metrics, elapsed


def test_throughput(report):
    batched = flushes_per_send(group_commit=True)
    unbatched = flushes_per_send(group_commit=False)
    reduction = unbatched / batched if batched else float("inf")

    metrics, elapsed = run_lifecycle(N_MESSAGES)
    decided = metrics.counter("outcomes.success")
    assert decided == N_MESSAGES
    msgs_per_sec = decided / elapsed if elapsed else float("inf")
    latency = metrics.histogram_stats("decision_latency_ms")
    flushes = metrics.counter("journal.flushes")
    records = metrics.counter("journal.records")
    batch_sizes = metrics.histogram("journal.batch_records")

    table = Table(
        "THROUGHPUT: group-commit journaling at fan-out "
        f"{FAN_OUT} ({N_MESSAGES} msgs)",
        ["metric", "value"],
    )
    table.add_row(["flushes/send (group commit)", batched])
    table.add_row(["flushes/send (per-record)", unbatched])
    table.add_row(["flush reduction", reduction])
    table.add_row(["lifecycle msgs/sec (wall)", msgs_per_sec])
    table.add_row(["decision latency p50 (virtual ms)", latency.p50])
    table.add_row(["decision latency p99 (virtual ms)", latency.p99])
    table.add_row(["journal records/flush (lifecycle)", records / flushes])
    report.emit(table)

    payload = {
        "fan_out": FAN_OUT,
        "messages": N_MESSAGES,
        "short": SHORT,
        "flushes_per_send_batched": batched,
        "flushes_per_send_unbatched": unbatched,
        "flush_reduction": reduction,
        "msgs_per_sec": msgs_per_sec,
        "decision_latency_ms": {
            "p50": latency.p50,
            "p95": latency.p95,
            "p99": latency.p99,
        },
        "journal": {
            "flushes": flushes,
            "records": records,
            "bytes": metrics.counter("journal.bytes"),
            "mean_batch_records": (
                sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
            ),
        },
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    # The acceptance bar: group commit cuts flushes per conditional send
    # by at least 3x at fan-out 8 (measured: one commit group vs. one
    # flush per compensation batch + SLOG entry + parked transmission).
    assert reduction >= 3.0
    assert batched <= unbatched


def test_persistence_backends(report, tmp_path):
    """PERSISTENCE: journal backends compared at fan-out ``FAN_OUT``.

    For each backend, runs ``N_PERSISTENCE`` group-committed conditional
    sends on a journaled testbed (flushes/sec, sends/sec, wall clock),
    then reopens the sender's journal and times
    :meth:`QueueManager.recover` over it.  Backends must agree on the
    recovered queue depths — the store changes, the state must not.
    """
    results = []
    recovered_depths = {}
    for backend in PERSISTENCE_BACKENDS:
        directory = os.path.join(str(tmp_path), backend)
        os.makedirs(directory, exist_ok=True)
        factory = journal_factory_for(backend, directory, sync="batch")
        testbed = Testbed(
            RECEIVERS,
            latency_ms=5,
            journaled=True,
            journal_factory=factory,
        )
        condition = build_condition(testbed)
        journal = testbed.journals[Testbed.SENDER]
        flushes_before = journal.flush_count
        started = time.perf_counter()
        for i in range(N_PERSISTENCE):
            testbed.service.send_message({"n": i}, condition)
        send_elapsed = time.perf_counter() - started
        flushes = journal.flush_count - flushes_before

        # Recovery: reopen the store exactly as a restart would (memory
        # journals survive only in-process, so recover from the live
        # object) and time the full replay into a fresh manager.
        if backend == "memory":
            reopened = journal
        else:
            journal.close()
            reopened = factory(Testbed.SENDER)
        started = time.perf_counter()
        recovered = QueueManager.recover(
            Testbed.SENDER, SimulatedClock(), reopened
        )
        recovery_elapsed = time.perf_counter() - started
        recovered_depths[backend] = {
            name: recovered.depth(name) for name in recovered.queue_names()
        }
        for store in testbed.journals.values():
            store.close()
        reopened.close()
        results.append(
            {
                "backend": backend,
                "sends": N_PERSISTENCE,
                "flushes": flushes,
                "flushes_per_sec": flushes / send_elapsed if send_elapsed
                else float("inf"),
                "sends_per_sec": N_PERSISTENCE / send_elapsed if send_elapsed
                else float("inf"),
                "send_wall_s": send_elapsed,
                "recovery_wall_s": recovery_elapsed,
                "recovered_queues": len(recovered_depths[backend]),
            }
        )

    table = Table(
        f"PERSISTENCE: journal backends at fan-out {FAN_OUT} "
        f"({N_PERSISTENCE} sends)",
        ["backend", "flushes/sec", "sends/sec", "recovery (s)"],
    )
    for row in results:
        table.add_row(
            [
                row["backend"],
                round(row["flushes_per_sec"], 1),
                round(row["sends_per_sec"], 1),
                round(row["recovery_wall_s"], 4),
            ]
        )
    report.emit(table)

    payload = {
        "fan_out": FAN_OUT,
        "sends": N_PERSISTENCE,
        "short": SHORT,
        "sync": "batch",
        "backends": results,
    }
    with open(PERSISTENCE_RESULT_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    # Same workload, same recovered state, whatever the store.
    baseline = recovered_depths[PERSISTENCE_BACKENDS[0]]
    for backend in PERSISTENCE_BACKENDS[1:]:
        assert recovered_depths[backend] == baseline, backend
    # Group commit holds on every backend: one flush per send.
    for row in results:
        assert row["flushes"] <= row["sends"] * 2, row


def test_send_benchmark(benchmark):
    """pytest-benchmark timing of a group-committed conditional send."""
    testbed = build_testbed()
    condition = build_condition(testbed)

    def send():
        testbed.service.send_message({"n": 1}, condition)

    benchmark.pedantic(send, rounds=20 if SHORT else 50, iterations=2,
                       warmup_rounds=2)
