"""BOUNDED CHECK — exhaustive small-scope model checking for CI.

Enumerates *every* event interleaving and crash point (one crash per
trajectory) of the pinned canonical rule set plus two generated rule
sets, checking the full paper-invariant suite at every terminal state
(:mod:`repro.chaos.bounded`).  Unlike the sampled chaos corpus this is
a proof over the small scope: zero violations here means no reachable
schedule of these configurations breaks an invariant.

Results land in ``CHAOS_bounded.json`` at the repo root (uploaded by
the CI bounded-check job).  The committed copy doubles as the baseline
for the state-count-collapse gate: a config exploring fewer than half
its baseline states fails CI, catching a checker that silently stopped
exploring (over-eager pruning, broken hashing) — which would otherwise
look exactly like success.  Any violation writes a script reproducer
``CHAOS_bounded_repro_<config>.json``; replay it with
``python -m repro.chaos --replay CHAOS_bounded_repro_<config>.json``.
"""

import json
import os

from repro.harness.reporting import Table
from repro.harness.runner import run_bounded_check

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)
RESULT_PATH = os.path.join(REPO_ROOT, "CHAOS_bounded.json")
BASELINE_PATH = RESULT_PATH  # the committed copy of a previous run


def test_bounded_check(report):
    baseline = BASELINE_PATH if os.path.exists(BASELINE_PATH) else None
    summary = run_bounded_check(repro_dir=REPO_ROOT, baseline_path=baseline)

    table = Table(
        "bounded model check",
        ["config", "states", "schedules", "transitions", "pruned",
         "complete", "violations"],
    )
    for name, entry in summary["configs"].items():
        table.add_row(
            [
                name,
                entry["states"],
                entry["schedules"],
                entry["transitions"],
                entry["pruned"],
                entry["complete"],
                len(entry["violations"]),
            ]
        )
    report.emit(table)

    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Every config must close its state space — an incomplete run means
    # a cap was hit and "zero violations" would be vacuous.
    assert all(e["complete"] for e in summary["configs"].values())
    assert summary["failures"] == 0, summary["violations"]
    assert summary["gate_failures"] == [], summary["gate_failures"]


def test_state_collapse_gate_trips(tmp_path):
    # Fabricate a baseline claiming the canonical config used to explore
    # far more states: the gate must flag the (simulated) collapse.
    inflated = {"configs": {"canonical": {"states": 10_000}}}
    baseline = tmp_path / "bounded_baseline.json"
    baseline.write_text(json.dumps(inflated))
    summary = run_bounded_check(
        gen_seeds=[], baseline_path=str(baseline)
    )
    assert summary["failures"] == 0
    assert any("canonical" in m for m in summary["gate_failures"])
