"""FIG6 — conditional send vs. direct standard messaging (paper Fig. 6).

The paper positions the conditional API as "a simple indirection to
standard messaging middleware".  This bench quantifies the indirection:
per-send cost of a raw MOM put vs. a conditional send at growing fan-out,
and the bookkeeping a conditional send performs (generated standard
messages, staged compensations, log entries).

Expected shape: conditional send is linear in fan-out with a modest
constant factor over N raw puts (it adds ~2 extra local puts: SLOG entry
and compensation staging, plus evaluation registration).
"""

import pytest

from repro.core.builder import destination, destination_set
from repro.core.service import ConditionalMessagingService
from repro.harness.reporting import Table
from repro.mq.manager import QueueManager
from repro.mq.message import Message
from repro.mq.network import MessageNetwork
from repro.sim.clock import SimulatedClock


def build_env(fan_out):
    clock = SimulatedClock()
    network = MessageNetwork(scheduler=None)
    sender = network.add_manager(QueueManager("QM.S", clock))
    for i in range(fan_out):
        receiver = network.add_manager(QueueManager(f"QM.{i}", clock))
        receiver.define_queue(f"Q.{i}")
        network.connect("QM.S", f"QM.{i}")
    condition = destination_set(
        *[
            destination(f"Q.{i}", manager=f"QM.{i}", recipient=f"R{i}")
            for i in range(fan_out)
        ],
        msg_pick_up_time=60_000,
    )
    service = ConditionalMessagingService(sender)
    return sender, service, condition


@pytest.mark.parametrize("fan_out", [1, 4, 16])
def test_conditional_send(benchmark, fan_out):
    sender, service, condition = build_env(fan_out)

    def send():
        service.send_message({"n": 1}, condition)
        # Keep system queues bounded so rounds stay independent (a real
        # sender's evaluation drains them as outcomes decide).
        sender.queue(service.slog_queue).purge()
        sender.queue(service.compensation.comp_queue).purge()

    benchmark.pedantic(send, rounds=50, iterations=2, warmup_rounds=2)
    assert service.stats.standard_messages_generated >= fan_out


@pytest.mark.parametrize("fan_out", [1, 4, 16])
def test_raw_fanout_put(benchmark, fan_out):
    sender, service, condition = build_env(fan_out)
    targets = [(f"QM.{i}", f"Q.{i}") for i in range(fan_out)]

    def raw_send():
        for manager_name, queue_name in targets:
            sender.put_remote(manager_name, queue_name, Message(body={"n": 1}))

    benchmark.pedantic(raw_send, rounds=50, iterations=2, warmup_rounds=2)


def test_fig6_table(benchmark, report):
    import timeit

    table = Table(
        "FIG6: per-send cost, raw MOM puts vs conditional send (microseconds)",
        ["fan-out", "raw puts", "conditional", "ratio",
         "std msgs/send", "comps staged/send"],
    )
    for fan_out in (1, 2, 4, 8, 16):
        sender, service, condition = build_env(fan_out)
        targets = [(f"QM.{i}", f"Q.{i}") for i in range(fan_out)]

        def raw_send():
            for manager_name, queue_name in targets:
                sender.put_remote(manager_name, queue_name, Message(body={"n": 1}))

        def cond_send():
            service.send_message({"n": 1}, condition)
            sender.queue(service.slog_queue).purge()
            sender.queue(service.compensation.comp_queue).purge()

        n = 100
        raw_us = timeit.timeit(raw_send, number=n) / n * 1e6
        cond_us = timeit.timeit(cond_send, number=n) / n * 1e6
        table.add_row(
            [
                fan_out,
                raw_us,
                cond_us,
                cond_us / raw_us if raw_us else float("nan"),
                service.stats.standard_messages_generated
                / service.stats.conditional_sends,
                service.stats.compensations_staged
                / service.stats.conditional_sends,
            ]
        )
    report.emit(table)
    sender, service, condition = build_env(4)

    def send():
        service.send_message({"n": 1}, condition)
        sender.queue(service.slog_queue).purge()
        sender.queue(service.compensation.comp_queue).purge()

    benchmark.pedantic(send, rounds=50, iterations=2, warmup_rounds=2)
