"""QUERY — selector gets: SQL pushdown vs. the linear scan.

"Queues are databases": with the queue living inside a WAL-mode SQLite
database (:class:`~repro.mq.sqlstore.SqlQueueStore`), ``get(selector=...)``
becomes an index scan with the selector lowered to a SQL WHERE clause
(:meth:`~repro.mq.selectors.Selector.to_sql`), while the classic
:class:`~repro.mq.queue.MessageQueue` walks its entry list evaluating the
compiled Python predicate per message.

This bench measures destructive selector gets against both stores at
queue depths 1k / 10k / 100k (1k / 10k under ``BENCH_SHORT=1``), for two
selector shapes:

* a JSON1-property selector (``n = <k>``) — pushdown must win on the
  properties column despite the ``json_extract`` per row;
* an indexed-header selector (``JMSCorrelationID = '<k>'``) — pushdown
  rides the ``(queue, correlation_id)`` index.

Targets are spread uniformly through the queue so the linear scan pays
its average (half-depth) cost; each timed get is followed by an untimed
re-put so the depth stays constant across samples.

Results land in ``BENCH_query.json`` at the repo root (consumed by the
CI benchmark-smoke gate via ``speedup_10k``) and in the usual results
table.  The acceptance bar: the SQL store beats the linear scan at depth
10k.
"""

import json
import os
import time

from repro.harness.reporting import Table
from repro.mq.message import Message
from repro.mq.queue import MessageQueue
from repro.mq.selectors import Selector
from repro.mq.sqlstore import SqlMessageQueue, SqlQueueStore
from repro.sim.clock import SimulatedClock

SHORT = os.environ.get("BENCH_SHORT", "") not in ("", "0")
DEPTHS = (1_000, 10_000) if SHORT else (1_000, 10_000, 100_000)
#: Timed selector gets per (depth, selector shape, store).
GETS = 10 if SHORT else 40

RESULT_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_query.json")
)


def build_message(i: int) -> Message:
    return Message(
        body=i,
        correlation_id=f"C-{i}",
        properties={"n": i, "route": f"JFK-{i % 97}"},
    )


def fill_linear(depth: int) -> MessageQueue:
    queue = MessageQueue("BENCH.Q", SimulatedClock(), max_depth=depth + 10)
    queue.put_many([build_message(i) for i in range(depth)])
    return queue


def fill_sql(depth: int) -> SqlMessageQueue:
    store = SqlQueueStore(":memory:", sync="none")
    queue = SqlMessageQueue(store, "BENCH.Q", SimulatedClock(), max_depth=depth + 10)
    queue.put_many([build_message(i) for i in range(depth)])
    return queue


def targets(depth: int):
    """GETS target indices spread uniformly through the depth."""
    stride = max(1, depth // GETS)
    return [(i * stride + stride // 2) % depth for i in range(GETS)]


def timed_gets(queue, depth: int, make_selector) -> float:
    """Seconds per destructive selector get, re-putting between samples."""
    elapsed = 0.0
    for target in targets(depth):
        selector = Selector(make_selector(target))
        started = time.perf_counter()
        got = queue.get(selector)
        elapsed += time.perf_counter() - started
        assert got.body == target
        queue.put(got)  # restore depth outside the timed window
    return elapsed / GETS


SELECTOR_SHAPES = (
    ("property", lambda k: f"n = {k}"),
    ("header", lambda k: f"JMSCorrelationID = 'C-{k}'"),
)


def test_selector_get_pushdown_vs_linear_scan(report):
    results = []
    for depth in DEPTHS:
        linear = fill_linear(depth)
        sql = fill_sql(depth)
        for shape, make_selector in SELECTOR_SHAPES:
            linear_s = timed_gets(linear, depth, make_selector)
            sql_s = timed_gets(sql, depth, make_selector)
            results.append(
                {
                    "depth": depth,
                    "selector": shape,
                    "gets": GETS,
                    "linear_us_per_get": linear_s * 1e6,
                    "sql_us_per_get": sql_s * 1e6,
                    "speedup": linear_s / sql_s if sql_s else float("inf"),
                }
            )
        sql.store.close()

    table = Table(
        f"QUERY: selector get latency, linear scan vs SQL pushdown "
        f"({GETS} gets/point)",
        ["depth", "selector", "linear us/get", "sql us/get", "speedup"],
    )
    for row in results:
        table.add_row(
            [
                row["depth"],
                row["selector"],
                round(row["linear_us_per_get"], 1),
                round(row["sql_us_per_get"], 1),
                f"{row['speedup']:.1f}x",
            ]
        )
    report.emit(table)

    # The CI gate tracks the 10k-depth property-selector speedup: the
    # headline number for "the queue became an index scan".
    speedup_10k = min(
        row["speedup"] for row in results if row["depth"] == 10_000
    )
    payload = {
        "short": SHORT,
        "gets": GETS,
        "depths": list(DEPTHS),
        "results": results,
        "speedup_10k": speedup_10k,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    # Acceptance bar: SQL beats the linear scan at depth 10k on every
    # selector shape (speedup_10k is the minimum across shapes).
    assert speedup_10k > 1.0, results
