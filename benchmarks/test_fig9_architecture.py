"""FIG9 — the full conditional-messaging architecture (paper Fig. 9).

End-to-end characterization of the whole system under a mixed workload,
and the head-to-head against the application-managed baseline on the one
condition shape both can express (all-of-N pick-up within a window).

Expected shape: the middleware matches the hand-rolled baseline's
end-to-end behaviour within a small constant factor while running its
full monitoring/logging/compensation machinery — the paper's argument
that the infrastructure "is [what] the application would have to create"
anyway.
"""

import pytest

from repro.baseline.app_managed import AppManagedReceiver, AppManagedSender, AppOutcome
from repro.core.builder import destination, destination_set
from repro.harness.reporting import Table
from repro.mq.manager import QueueManager
from repro.mq.network import MessageNetwork
from repro.sim.clock import SimulatedClock
from repro.sim.scheduler import EventScheduler
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.scenarios import Testbed


def run_conditional_workload(messages, fan_out=3, receivers=6, seed=0):
    bed = Testbed([f"N{i}" for i in range(receivers)], latency_ms=5)
    spec = WorkloadSpec(
        messages=messages,
        fan_out=fan_out,
        pick_up_window_ms=30_000,
        on_time_probability=0.9,
        inter_send_gap_ms=50,
        seed=seed,
    )
    result = WorkloadGenerator(bed, spec).run()
    bed.run_all()
    outcomes = [bed.service.outcome(c) for c in result.cmids]
    assert all(o is not None for o in outcomes)
    return bed, result, outcomes


def run_baseline_workload(messages, fan_out=3, receivers=6, seed=0):
    """The same all-of-N pick-up workload over the raw-MOM baseline."""
    import random

    clock = SimulatedClock()
    scheduler = EventScheduler(clock)
    network = MessageNetwork(scheduler=scheduler, seed=seed)
    sender_qm = network.add_manager(QueueManager("QM.SENDER", clock))
    endpoint = {}
    for i in range(receivers):
        qm = network.add_manager(QueueManager(f"QM.N{i}", clock))
        network.connect("QM.SENDER", f"QM.N{i}", latency_ms=5)
        endpoint[f"N{i}"] = AppManagedReceiver(qm, f"N{i}")
    sender = AppManagedSender(sender_qm)
    rng = random.Random(seed)
    ids = []
    names = list(endpoint)
    for index in range(messages):
        start = (index * fan_out) % receivers
        chosen = [names[(start + i) % receivers] for i in range(fan_out)]

        def fire(chosen=chosen):
            msg_id = sender.send_tracked(
                {"i": len(ids)},
                [(f"QM.{n}", f"Q.{n}") for n in chosen],
                deadline_ms=30_000,
            )
            ids.append(msg_id)
            for name in chosen:
                on_time = rng.random() < 0.9
                react = rng.randint(1, 15_000) if on_time else 60_000
                scheduler.call_later(
                    react, lambda n=name: endpoint[n].read_and_ack(f"Q.{n}")
                )

        scheduler.call_later(index * 50, fire)
    # The baseline sender must poll; poll every second of virtual time.
    def poll_loop(remaining=120):
        sender.poll()
        if remaining:
            scheduler.call_later(1_000, lambda: poll_loop(remaining - 1))

    scheduler.call_later(1_000, poll_loop)
    scheduler.run_all()
    sender.poll()
    return sender, ids


@pytest.mark.parametrize("messages", [50, 200])
def test_conditional_mixed_workload(benchmark, messages):
    bed, result, outcomes = benchmark.pedantic(
        lambda: run_conditional_workload(messages), rounds=3
    )
    assert len(outcomes) == messages


def test_fig9_throughput_table(benchmark, report):
    import time

    table = Table(
        "FIG9: end-to-end mixed workload (fan-out 3, 90% on-time receivers)",
        ["messages", "wall ms", "msgs/s (wall)", "success", "failure",
         "std msgs", "acks processed"],
    )
    for messages in (50, 200, 500):
        start = time.perf_counter()
        bed, result, outcomes = run_conditional_workload(messages)
        wall_ms = (time.perf_counter() - start) * 1e3
        successes = sum(1 for o in outcomes if o.succeeded)
        table.add_row(
            [
                messages,
                wall_ms,
                messages / (wall_ms / 1e3),
                successes,
                messages - successes,
                bed.service.stats.standard_messages_generated,
                bed.service.evaluation.stats.acks_processed,
            ]
        )
    report.emit(table)
    benchmark.pedantic(lambda: run_conditional_workload(50), rounds=3)


def test_fig9_middleware_vs_baseline(benchmark, report):
    """Same expressible workload, both stacks: outcomes must agree in
    shape, and the middleware's wall-clock cost stays within a small
    factor despite doing strictly more (logging, staging, tx acks)."""
    import time

    table = Table(
        "FIG9: conditional middleware vs application-managed baseline",
        ["stack", "messages", "wall ms", "successes",
         "crash-safe compensation", "processing conditions", "nested/min-max"],
    )
    messages = 100
    start = time.perf_counter()
    bed, result, outcomes = run_conditional_workload(messages, seed=4)
    cond_ms = (time.perf_counter() - start) * 1e3
    cond_successes = sum(1 for o in outcomes if o.succeeded)
    table.add_row(
        ["conditional", messages, cond_ms, cond_successes, True, True, True]
    )
    start = time.perf_counter()
    sender, ids = run_baseline_workload(messages, seed=4)
    base_ms = (time.perf_counter() - start) * 1e3
    base_successes = sum(
        1 for i in ids if sender.outcome(i) is AppOutcome.SUCCESS
    )
    table.add_row(
        ["baseline", messages, base_ms, base_successes, False, False, False]
    )
    report.emit(table)
    # Shape assertions: both stacks see a high-but-not-total success rate
    # from the same 90% on-time behaviour.
    assert 0.5 < cond_successes / messages <= 1.0
    assert 0.5 < base_successes / messages <= 1.0
    benchmark.pedantic(lambda: run_baseline_workload(50), rounds=3)


#: What the application writes when the middleware manages conditions:
#: define the condition, send, read, observe the outcome.  This is the
#: complete application-side artifact for the workload above.
MIDDLEWARE_APP_CODE = '''
condition = destination_set(
    *[destination(q, manager=m, recipient=r) for m, q, r in targets],
    msg_pick_up_time=30_000,
)
cmid = service.send_message(order, condition, compensation=cancel_doc)
# receiver side:
message = receiver.read_message(inbox)          # ack is implicit
# sender side, later:
outcome = service.outcome(cmid)                  # or poll DS.OUTCOME.Q
'''


def _code_lines(text: str) -> int:
    lines = 0
    in_doc = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith('"""') or line.startswith("'''"):
            if not (len(line) > 3 and line.endswith(('"""', "'''"))):
                in_doc = not in_doc
            continue
        if in_doc or line.startswith("#"):
            continue
        lines += 1
    return lines


def test_fig9_code_burden(benchmark, report):
    """The paper's central claim, counted: 'conditional messaging shifts
    the responsibilities for implementing the management of conditions on
    messages from the application to the middleware.'"""
    import os

    import repro.baseline.app_managed as baseline_module

    baseline_path = baseline_module.__file__
    with open(baseline_path, encoding="utf-8") as f:
        baseline_lines = _code_lines(f.read())
    app_lines = _code_lines(MIDDLEWARE_APP_CODE)
    table = Table(
        "FIG9: application-side code burden for condition management",
        ["approach", "app artifact lines", "expressiveness"],
    )
    table.add_row(
        ["application-managed (baseline module)", baseline_lines,
         "flat k-of-N pick-up only"]
    )
    table.add_row(
        ["conditional messaging (app snippet)", app_lines,
         "nested sets, processing, anonymous, compensation"]
    )
    report.emit(table)
    assert baseline_lines > 10 * app_lines  # an order of magnitude, measured
    benchmark.pedantic(lambda: _code_lines(MIDDLEWARE_APP_CODE), rounds=20)
