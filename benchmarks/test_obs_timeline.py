"""OBS — message-lifecycle observability on the paper's Example 1.

Runs the group-meeting scenario with the flight recorder and metrics
registry enabled and emits (a) the full per-stage timeline of the
conditional message — send, xmit, arrival, get, ack, evaluate, outcome —
and (b) the deployment-wide counter/gauge/histogram breakdown.  Also
times a traced run against an untraced one: the no-op tracer guard is
supposed to make disabled tracing free, so the enabled-tracer overhead
bounds the cost of the instrumentation points themselves.
"""

from repro.harness.reporting import render_metrics, render_trace_timeline
from repro.harness.runner import run_example1
from repro.obs import (
    STAGE_ACK,
    STAGE_ARRIVAL,
    STAGE_OUTCOME,
    STAGE_SEND,
    FlightRecorder,
    MetricsRegistry,
)


def test_obs_example1_timeline(report):
    """The acceptance artifact: one conditional message's full timeline."""
    recorder = FlightRecorder()
    registry = MetricsRegistry()
    result = run_example1(tracer=recorder, metrics=registry)
    assert result.succeeded

    events = recorder.events_for(result.cmid)
    report.emit_text(
        render_trace_timeline(events, title=f"OBS: example 1 trace {result.cmid}")
    )
    report.emit_text(render_metrics(registry, title="OBS: example 1 metrics"))

    # The timeline must cover the whole lifecycle, in causal order.
    stages = [event.stage for event in events]
    for stage in (STAGE_SEND, STAGE_ARRIVAL, STAGE_ACK, STAGE_OUTCOME):
        assert stage in stages, f"timeline lacks {stage!r}"
    assert (
        stages.index(STAGE_SEND)
        < stages.index(STAGE_ARRIVAL)
        < stages.index(STAGE_ACK)
        < stages.index(STAGE_OUTCOME)
    )
    assert registry.histogram_stats("ack_latency_ms") is not None
    assert registry.histogram_stats("decision_latency_ms") is not None


def test_obs_tracing_overhead(benchmark, report):
    """Wall-clock cost of a fully traced + metered run vs a bare one."""
    import time

    def bare_run():
        return run_example1()

    def traced_run():
        return run_example1(tracer=FlightRecorder(), metrics=MetricsRegistry())

    # Hand-timed comparison row (benchmark fixture only times one callable).
    rounds = 5
    start = time.perf_counter()
    for _ in range(rounds):
        assert bare_run().succeeded
    bare_s = (time.perf_counter() - start) / rounds
    start = time.perf_counter()
    for _ in range(rounds):
        assert traced_run().succeeded
    traced_s = (time.perf_counter() - start) / rounds

    from repro.harness.reporting import Table

    table = Table(
        "OBS: tracing overhead on example 1 (wall-clock per run)",
        ["mode", "mean (ms)", "relative"],
    )
    table.add_row(["bare (NULL_TRACER)", bare_s * 1e3, 1.0])
    table.add_row(
        ["flight recorder + metrics", traced_s * 1e3, traced_s / bare_s]
    )
    report.emit(table)

    result = benchmark(traced_run)
    assert result.succeeded
