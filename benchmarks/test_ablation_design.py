"""ABLATION — quantifying the paper's key design choices.

Three ablations:

1. **Compensation staging** (paper §2.6 / ref [16]): staging compensations
   on persistent DS.COMP.Q *at send time* vs synthesizing them at failure
   time (the baseline's approach).  Staging costs extra work on every
   send; synthesis is free until a failure — but a sender crash between
   send and failure-handling loses the ability to compensate entirely.
   We measure both the per-send cost and the compensation-coverage gap
   under crashes.

2. **Push vs poll evaluation** (§2.5): our evaluation manager is driven
   by ack arrival (queue subscription).  The ablation replaces push with
   periodic polling and measures decision latency vs poll interval.

3. **Journaling**: persistent-queue durability vs a volatile manager —
   the wall-clock price of the reliability the architecture is built on.

Expected shapes: staging adds a small constant per send and removes the
crash window completely; poll latency ~ interval/2 added to the decision;
journaling costs a constant factor per persistent operation.
"""

import pytest

from repro.core.builder import destination, destination_set
from repro.core.receiver import ConditionalMessagingReceiver
from repro.core.service import ConditionalMessagingService
from repro.harness.reporting import Table
from repro.mq.manager import QueueManager
from repro.mq.message import Message
from repro.mq.network import MessageNetwork
from repro.mq.persistence import MemoryJournal
from repro.sim.clock import SimulatedClock
from repro.sim.scheduler import EventScheduler


def build_pair(journaled_sender=False, latency_ms=10, seed=0):
    clock = SimulatedClock()
    scheduler = EventScheduler(clock)
    network = MessageNetwork(scheduler=scheduler, seed=seed)
    journal = MemoryJournal() if journaled_sender else None
    sender_qm = network.add_manager(QueueManager("QM.S", clock, journal=journal))
    receiver_qm = network.add_manager(QueueManager("QM.R", clock))
    network.connect("QM.S", "QM.R", latency_ms=latency_ms)
    service = ConditionalMessagingService(sender_qm, scheduler=scheduler)
    receiver = ConditionalMessagingReceiver(receiver_qm, recipient_id="alice")
    return clock, scheduler, network, sender_qm, receiver_qm, service, receiver, journal


def alice_condition(deadline=1_000, timeout=2_000):
    return destination_set(
        destination("Q.IN", manager="QM.R", recipient="alice",
                    msg_pick_up_time=deadline),
        evaluation_timeout=timeout,
    )


# ---------------------------------------------------------------------------
# Ablation 1: compensation staging
# ---------------------------------------------------------------------------


def test_ablation_staging_cost(benchmark, report):
    """Per-send cost with and without compensation staging."""
    import timeit

    table = Table(
        "ABLATION 1a: per-send cost of compensation staging (microseconds)",
        ["variant", "us/send", "overhead %"],
    )
    results = {}
    for label, stage in (("staged at send", True), ("no staging", False)):
        env = build_pair()
        service, sender_qm = env[5], env[3]

        def send(service=service, sender_qm=sender_qm, stage=stage):
            service.send_message({"x": 1}, alice_condition(), stage_compensation=stage)
            sender_qm.queue(service.slog_queue).purge()
            sender_qm.queue(service.compensation.comp_queue).purge()

        n = 200
        results[label] = timeit.timeit(send, number=n) / n * 1e6
    base = results["no staging"]
    for label, us in results.items():
        table.add_row([label, us, (us - base) / base * 100.0])
    report.emit(table)
    env = build_pair()
    service, sender_qm = env[5], env[3]
    benchmark.pedantic(
        lambda: service.send_message({"x": 1}, alice_condition()),
        rounds=50, iterations=2,
    )


def test_ablation_staging_crash_coverage(benchmark, report):
    """Compensation coverage when the sender crashes mid-flight.

    Staged: the recovered sender's DS.COMP.Q still holds the data; every
    failure compensates.  Synthesized-at-failure (modeled by staging
    nothing and 'losing' the in-memory compensation data at the crash):
    zero coverage.
    """
    table = Table(
        "ABLATION 1b: compensation coverage across a sender crash",
        ["variant", "messages", "crashes", "compensations possible"],
    )
    messages = 20

    def run(staged: bool) -> int:
        env = build_pair(journaled_sender=True)
        clock, scheduler, network, sender_qm, receiver_qm, service, receiver, journal = env
        for i in range(messages):
            service.send_message(
                {"i": i}, alice_condition(),
                compensation={"undo": i} if staged else None,
                stage_compensation=staged,
            )
        scheduler.run_for(10)  # originals delivered; CRASH now
        recovered = QueueManager.recover("QM.S", clock, journal)
        return recovered.depth("DS.COMP.Q") if recovered.has_queue("DS.COMP.Q") else 0

    for label, staged in (("staged at send", True), ("synthesized at failure", False)):
        coverage = run(staged)
        table.add_row([label, messages, 1, coverage])
        assert coverage == (messages if staged else 0)
    report.emit(table)
    benchmark.pedantic(lambda: run(True), rounds=5)


# ---------------------------------------------------------------------------
# Ablation 2: push vs poll evaluation
# ---------------------------------------------------------------------------


def push_decision_latency():
    """Virtual ms from read to decision with push (ack-subscription)."""
    env = build_pair()
    clock, scheduler, network, sender_qm, receiver_qm, service, receiver, _ = env
    cmid = service.send_message({"x": 1}, alice_condition(
        deadline=60_000, timeout=120_000))
    scheduler.run_for(10)
    receiver.read_message("Q.IN")
    read_at = clock.now_ms()
    scheduler.run_for(10)  # the ack's one hop back
    outcome = service.outcome(cmid)
    assert outcome is not None
    return outcome.decided_at_ms - read_at


def test_ablation_push_vs_poll(benchmark, report):
    """Decision latency: ack-push vs periodic polling."""
    table = Table(
        "ABLATION 2: decision latency, push vs poll (10ms channel)",
        ["strategy", "decision latency (virtual ms)"],
    )
    # Push: measured directly.
    push_latency = push_decision_latency()
    table.add_row(["push (subscribe)", push_latency])
    assert push_latency == 10  # exactly one ack hop

    # Poll: the same service with push disabled (push_evaluation=False);
    # the application's poll ticks are the only evaluation driver, so
    # acks parked on DS.ACK.Q wait for the next grid point.
    for interval in (10, 100, 1_000):
        clock = SimulatedClock()
        network = MessageNetwork(scheduler=None)
        sender_qm = network.add_manager(QueueManager("QM.S", clock))
        receiver_qm = network.add_manager(QueueManager("QM.R", clock))
        network.connect("QM.S", "QM.R")
        service = ConditionalMessagingService(
            sender_qm, scheduler=None, push_evaluation=False
        )
        receiver = ConditionalMessagingReceiver(receiver_qm, recipient_id="alice")
        cmid = service.send_message({"x": 1}, alice_condition(
            deadline=60_000, timeout=120_000))
        receiver.read_message("Q.IN")
        read_at = clock.now_ms()
        assert service.outcome(cmid) is None  # push is really off
        decided_at = None
        tick = 0
        while decided_at is None:
            tick += interval
            clock.set(tick)
            service.poll()
            if service.outcome(cmid) is not None:
                decided_at = service.outcome(cmid).decided_at_ms
        table.add_row([f"poll every {interval}ms", decided_at - read_at])
        assert decided_at - read_at == interval  # lag to the next grid point
    report.emit(table)
    benchmark.pedantic(push_decision_latency, rounds=10)


# ---------------------------------------------------------------------------
# Ablation 3: journaling cost
# ---------------------------------------------------------------------------


def test_ablation_journaling_cost(benchmark, report):
    """Wall-clock price of durability on the put/get path."""
    import timeit

    table = Table(
        "ABLATION 3: journaling cost (microseconds per put+get)",
        ["variant", "us/op", "overhead %"],
    )
    results = {}
    for label, journaled in (("volatile", False), ("journaled", True)):
        clock = SimulatedClock()
        manager = QueueManager(
            "QM.J", clock, journal=MemoryJournal() if journaled else None
        )
        manager.define_queue("Q")

        def op(manager=manager):
            manager.put("Q", Message(body={"n": 1}))
            manager.get("Q")

        n = 500
        results[label] = timeit.timeit(op, number=n) / n * 1e6
    base = results["volatile"]
    for label, us in results.items():
        table.add_row([label, us, (us - base) / base * 100.0])
    report.emit(table)
    clock = SimulatedClock()
    manager = QueueManager("QM.J", clock, journal=MemoryJournal())
    manager.define_queue("Q")

    def op():
        manager.put("Q", Message(body={"n": 1}))
        manager.get("Q")

    benchmark.pedantic(op, rounds=100, iterations=5)
