"""SCALE — evaluation-manager scaling (paper section 2.5).

The evaluation manager correlates every incoming acknowledgment on one
shared DS.ACK.Q to the right conditional message.  This bench sweeps

* the number of concurrently pending conditional messages, and
* the acknowledgment volume,

measuring ack-processing cost.  Expected shape: per-ack work is O(size of
that message's own condition + its acks), independent of how many *other*
messages are pending (dict correlation, no scans).
"""

import pytest

from repro.core.acks import Acknowledgment, AckKind, ack_to_message
from repro.core.builder import destination, destination_set
from repro.core.evaluation import EvaluationManager
from repro.harness.reporting import Table
from repro.mq.manager import QueueManager
from repro.sim.clock import SimulatedClock


def build(pending, fan_out=4):
    clock = SimulatedClock()
    manager = QueueManager("QM.S", clock)
    decided = []
    evaluation = EvaluationManager(
        manager, "DS.ACK.Q", on_decided=decided.append, scheduler=None
    )
    for m in range(pending):
        condition = destination_set(
            *[
                destination(f"Q.{i}", manager="QM.S", recipient=f"R{i}")
                for i in range(fan_out)
            ],
            msg_pick_up_time=1_000_000,
        )
        evaluation.register(f"CM-{m:06d}", condition, 0, 2_000_000)
    return manager, evaluation, decided


def one_ack(cmid, i=0):
    return ack_to_message(
        Acknowledgment(
            cmid=cmid,
            kind=AckKind.READ,
            queue=f"Q.{i}",
            manager="QM.S",
            recipient=f"R{i}",
            read_time_ms=10,
            commit_time_ms=None,
            original_message_id=f"m{i}",
        )
    )


@pytest.mark.parametrize("pending", [10, 100, 1_000])
def test_ack_processing_vs_pending_population(benchmark, pending):
    """Cost of processing one ack while N other messages are pending."""
    manager, evaluation, decided = build(pending)
    target = f"CM-{pending - 1:06d}"
    counter = {"i": 0}

    def process_one_ack():
        # Rotate destinations so the record never completes.
        counter["i"] = (counter["i"] + 1) % 3
        manager.put("DS.ACK.Q", one_ack(target, counter["i"]))
        evaluation.record(target).acks.clear()

    benchmark.pedantic(process_one_ack, rounds=100, iterations=1)


def test_scale_table(benchmark, report):
    import time

    table = Table(
        "SCALE: evaluation manager — ack throughput vs pending population",
        ["pending msgs", "acks pumped", "wall ms", "acks/s", "decided"],
    )
    for pending in (10, 100, 1_000):
        manager, evaluation, decided = build(pending, fan_out=4)
        # Complete every message: 4 acks each.
        start = time.perf_counter()
        for m in range(pending):
            for i in range(4):
                manager.put("DS.ACK.Q", one_ack(f"CM-{m:06d}", i))
        wall_ms = (time.perf_counter() - start) * 1e3
        acks = pending * 4
        table.add_row(
            [pending, acks, wall_ms, acks / (wall_ms / 1e3), len(decided)]
        )
        assert len(decided) == pending
        assert all(d.succeeded for d in decided)
    report.emit(table)
    manager, evaluation, decided = build(100)
    benchmark.pedantic(
        lambda: manager.put("DS.ACK.Q", one_ack("CM-000050")),
        rounds=100,
    )


def test_scale_condition_size(benchmark, report):
    """Per-ack evaluation cost vs the message's own condition size."""
    import time

    table = Table(
        "SCALE: evaluation cost vs condition fan-out (single pending message)",
        ["fan-out", "acks to decide", "wall ms", "us/ack"],
    )
    for fan_out in (2, 8, 32, 128):
        manager, evaluation, decided = build(1, fan_out=fan_out)
        start = time.perf_counter()
        for i in range(fan_out):
            manager.put("DS.ACK.Q", one_ack("CM-000000", i))
        wall_ms = (time.perf_counter() - start) * 1e3
        table.add_row(
            [fan_out, fan_out, wall_ms, wall_ms * 1e3 / fan_out]
        )
        assert len(decided) == 1
    report.emit(table)
    manager, evaluation, decided = build(1, fan_out=32)
    counter = {"i": 0}

    def pump_one():
        counter["i"] = (counter["i"] + 1) % 31
        manager.put("DS.ACK.Q", one_ack("CM-000000", counter["i"]))
        evaluation.record("CM-000000").acks.clear()

    benchmark.pedantic(pump_one, rounds=100)
