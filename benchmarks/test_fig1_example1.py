"""FIG1+4 — Example 1, the group-meeting notification (paper Figs. 1 & 4).

Reproduces the scenario end to end and characterizes it: outcome and
decision latency across receiver-behaviour variants, exercising the full
Figure 4 condition tree (root pick-up window, required processing on one
destination, 2-of-3 subset processing).
"""

import pytest

from repro.harness.reporting import Table
from repro.harness.runner import run_example1
from repro.workloads.receivers import ReceiverMode
from repro.workloads.scenarios import DAY_MS, HOUR_MS


def test_success_story_benchmark(benchmark):
    """Time the complete virtual-day scenario (send -> 4 receivers ->
    evaluation -> outcome) as executed wall-clock."""
    result = benchmark(run_example1)
    assert result.succeeded


VARIANTS = [
    # (label, kwargs, expected success)
    ("paper success story", {}, True),
    ("R4 reads late (day 3)", {"r4_react_ms": 3 * DAY_MS}, False),
    ("R4 never reacts", {"r4_mode": ReceiverMode.IGNORE}, False),
    ("R3 only reads", {"r3_mode": ReceiverMode.READ}, False),
    ("only 1 subset processor", {"r2_mode": ReceiverMode.READ,
                                 "r4_mode": ReceiverMode.READ}, False),
    ("alternate 2 processors", {"r1_mode": ReceiverMode.READ,
                                "r4_mode": ReceiverMode.PROCESS_COMMIT}, True),
    ("everyone instant", {"r1_react_ms": HOUR_MS, "r2_react_ms": HOUR_MS,
                          "r3_react_ms": HOUR_MS, "r4_react_ms": HOUR_MS}, True),
]


def test_fig1_variant_table(benchmark, report):
    table = Table(
        "FIG1+4: Example 1 variants (group meeting, 4 recipients)",
        ["variant", "outcome", "decided (virt. days)", "acks", "comp released"],
    )
    for label, kwargs, expect_success in VARIANTS:
        result = run_example1(**kwargs)
        assert result.succeeded is expect_success, label
        table.add_row(
            [
                label,
                result.outcome.outcome.value,
                result.outcome.decided_at_ms / DAY_MS,
                result.outcome.acks_received,
                result.testbed.service.stats.compensations_released,
            ]
        )
    report.emit(table)
    benchmark(lambda: run_example1(r4_mode=ReceiverMode.IGNORE))


def test_fig1_latency_sensitivity(benchmark, report):
    """Channel latency does not change outcomes at day-scale deadlines."""
    table = Table(
        "FIG1+4: channel-latency sensitivity",
        ["latency (ms)", "outcome", "standard msgs", "acks"],
    )
    for latency in (0, 50, 1_000, 60_000):
        result = run_example1(latency_ms=latency)
        table.add_row(
            [
                latency,
                result.outcome.outcome.value,
                result.testbed.service.stats.standard_messages_generated,
                result.outcome.acks_received,
            ]
        )
        assert result.succeeded
    report.emit(table)
    benchmark(lambda: run_example1(latency_ms=1_000))
