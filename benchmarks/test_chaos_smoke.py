"""CHAOS SMOKE — fixed-seed fault-injection corpus for CI.

Runs a deterministic corpus of chaos episodes — crash/recover at journal
flush boundaries, partitions, torn journal tails, duplicated and delayed
transfers — and asserts the paper-invariant suite finds zero violations.
Memory-journal episodes exercise the crash model cheaply; file-journal
episodes add torn-tail recovery on real files; sqlite-journal episodes
cover the transactional backend's crash/recover path; binfile-journal episodes run the binary record
codec through the same crash, recovery, and torn-tail space (tears cut
a binary frame mid-payload, and post-recovery writes keep the codec);
tcp-transport episodes drive real wire-protocol engine pairs through
seeded connection drops (landing mid-frame), reconnect resync,
retransmission and deferred confirmations.

Results land in ``CHAOS_smoke.json`` at the repo root (uploaded by the
CI chaos-smoke job next to ``BENCH_throughput.json``).  Any failing
episode is shrunk to a minimal reproducer written as
``CHAOS_repro_seed<N>.json`` at the repo root, which the CI job uploads
as an artifact; replay it locally with
``python -m repro.chaos --replay CHAOS_repro_seed<N>.json``.

Set ``BENCH_SHORT=1`` for a reduced corpus.
"""

import json
import logging
import os

from repro.harness.reporting import Table
from repro.harness.runner import run_chaos_corpus

SHORT = os.environ.get("BENCH_SHORT", "") not in ("", "0")
MEMORY_EPISODES = 15 if SHORT else 40
FILE_EPISODES = 5 if SHORT else 15
FILE_BASE_SEED = 100
SQLITE_EPISODES = 5 if SHORT else 15
SQLITE_BASE_SEED = 200
BINFILE_EPISODES = 5 if SHORT else 15
BINFILE_BASE_SEED = 300
WIRE_EPISODES = 10 if SHORT else 25
WIRE_BASE_SEED = 400

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)
RESULT_PATH = os.path.join(REPO_ROOT, "CHAOS_smoke.json")


def test_chaos_smoke_corpus(report, tmp_path):
    # Torn-tail healing logs a warning per healed file; that is the
    # mechanism under test, not noise worth failing CI log checks over.
    logging.getLogger("repro.mq.persistence").setLevel(logging.ERROR)
    corpora = [
        run_chaos_corpus(
            episodes=MEMORY_EPISODES,
            base_seed=0,
            journal="memory",
            repro_dir=REPO_ROOT,
        ),
        run_chaos_corpus(
            episodes=FILE_EPISODES,
            base_seed=FILE_BASE_SEED,
            journal="file",
            journal_dir=str(tmp_path),
            repro_dir=REPO_ROOT,
        ),
        run_chaos_corpus(
            episodes=SQLITE_EPISODES,
            base_seed=SQLITE_BASE_SEED,
            journal="sqlite",
            journal_dir=str(tmp_path),
            repro_dir=REPO_ROOT,
        ),
        run_chaos_corpus(
            episodes=BINFILE_EPISODES,
            base_seed=BINFILE_BASE_SEED,
            journal="binfile",
            journal_dir=str(tmp_path),
            repro_dir=REPO_ROOT,
        ),
        run_chaos_corpus(
            episodes=WIRE_EPISODES,
            base_seed=WIRE_BASE_SEED,
            transport="tcp",
            repro_dir=REPO_ROOT,
        ),
    ]

    table = Table(
        "chaos smoke corpus",
        ["family", "episodes", "sends", "crashes", "faults", "failures"],
    )
    for corpus in corpora:
        table.add_row(
            [
                corpus.get("journal") or f"wire/{corpus['transport']}",
                corpus["episodes"],
                corpus["sends"],
                corpus.get("crashes", 0),
                corpus["faults_fired"],
                corpus["failures"],
            ]
        )
    report.emit(table)

    wire = corpora[-1]
    summary = {
        "episodes": sum(c["episodes"] for c in corpora),
        "sends": sum(c["sends"] for c in corpora),
        "crashes": sum(c.get("crashes", 0) for c in corpora),
        "faults_fired": sum(c["faults_fired"] for c in corpora),
        "failures": sum(c["failures"] for c in corpora),
        "violations": [v for c in corpora for v in c["violations"]],
        "repro_paths": [p for c in corpora for p in c["repro_paths"]],
        "corpora": corpora,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")

    assert summary["episodes"] >= (40 if SHORT else 110)
    # The corpus must actually exercise the fault space, not dodge it.
    assert summary["crashes"] >= (5 if SHORT else 20)
    assert summary["faults_fired"] >= (10 if SHORT else 50)
    # The wire family must really drop established connections and
    # deliver every message despite that.
    assert wire["reconnects"] >= (5 if SHORT else 15)
    assert wire["delivered"] == wire["sends"]
    assert summary["failures"] == 0, summary["violations"]
