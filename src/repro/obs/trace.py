"""The message-lifecycle flight recorder.

A :class:`TraceEvent` records one hop of a message through the system.
Events carry the sim-clock timestamp and a process-wide monotonic
sequence number, so the global order of events is total even when many
hops share one millisecond.  The conditional message id (falling back to
the correlation id for plain MQ traffic) is the trace correlation key:
:meth:`FlightRecorder.events_for` reconstructs the full path of one
conditional message across every queue manager it touched.

The stages, in the order a successful conditional message produces them::

    send      one event per generated standard message (the fan-out)
    xmit      parked on a transmission queue for a channel hop
    arrival   put on the destination queue (COA territory)
    get       destructively read, or locked under syncpoint
    commit    a syncpoint read's lock destroyed at commit (COD territory)
    ack       the implicit acknowledgment left the receiver
    evaluate  one satisfaction pass at the sender
    outcome   the evaluation decided
    ...plus compensation (release), rollback, dead-letter, expired.

The base :class:`Tracer` is a no-op with ``enabled = False``; every
instrumentation site guards on that flag, so a disabled tracer costs one
attribute load per potential event.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.mq.message import Message

# Lifecycle stage names (the ``stage`` field of every event).
STAGE_SEND = "send"
STAGE_XMIT = "xmit"
STAGE_ARRIVAL = "arrival"
STAGE_GET = "get"
STAGE_COMMIT = "commit"
STAGE_ROLLBACK = "rollback"
STAGE_ACK = "ack"
STAGE_EVALUATE = "evaluate"
STAGE_OUTCOME = "outcome"
STAGE_COMPENSATION = "compensation"
STAGE_DEAD_LETTER = "dead-letter"
STAGE_EXPIRED = "expired"

#: Mirrors ``repro.core.control.PROP_CMID``; duplicated here because the
#: mq layer imports this module and must not import ``repro.core``.
_PROP_CMID = "DS_CMID"


def cmid_of(message: Message) -> Optional[str]:
    """The trace correlation key of a message.

    The conditional message id when the message carries conditional
    control properties, else the plain correlation id (which conditional
    messages also set to the cmid), else ``None``.
    """
    value = message.get_property(_PROP_CMID)
    if value is not None:
        return str(value)
    return message.correlation_id


@dataclass(frozen=True)
class TraceEvent:
    """One recorded hop of a message's lifecycle."""

    seq: int
    at_ms: int
    stage: str
    cmid: Optional[str]
    manager: Optional[str]
    queue: Optional[str]
    message_id: Optional[str]
    detail: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """The no-op tracer every component holds by default.

    ``enabled`` is a class attribute so the hot-path guard
    ``if tracer.enabled:`` never constructs an event for a disabled
    tracer.  Subclasses that record must set it to True.
    """

    enabled: bool = False

    def emit(
        self,
        stage: str,
        at_ms: int,
        cmid: Optional[str] = None,
        manager: Optional[str] = None,
        queue: Optional[str] = None,
        message_id: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Record one lifecycle event (no-op in the base tracer)."""


#: Shared no-op instance (stateless, so one suffices for the process).
NULL_TRACER = Tracer()


class FlightRecorder(Tracer):
    """A tracer that keeps every event in memory, in emission order.

    Args:
        capacity: When set, only the most recent ``capacity`` events are
            retained (a bounded flight recorder for long soak runs).

    :attr:`metadata` is a free-form dict for run-level context that is
    not itself an event — e.g. the chaos explorer records the episode
    seed and fault plan there, so a recorded trace is self-describing
    enough to replay.
    """

    enabled = True

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._events: List[TraceEvent] = []
        self._seq = itertools.count(1)
        #: run-level context (episode seed, plan, workload parameters)
        self.metadata: Dict[str, Any] = {}

    def emit(
        self,
        stage: str,
        at_ms: int,
        cmid: Optional[str] = None,
        manager: Optional[str] = None,
        queue: Optional[str] = None,
        message_id: Optional[str] = None,
        **detail: Any,
    ) -> None:
        self._events.append(
            TraceEvent(
                seq=next(self._seq),
                at_ms=at_ms,
                stage=stage,
                cmid=cmid,
                manager=manager,
                queue=queue,
                message_id=message_id,
                detail=detail,
            )
        )
        if self._capacity is not None and len(self._events) > self._capacity:
            del self._events[0]

    # -- inspection ---------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """All retained events, oldest first."""
        return list(self._events)

    def events_for(self, cmid: str) -> List[TraceEvent]:
        """The trace of one conditional message, oldest first."""
        return [e for e in self._events if e.cmid == cmid]

    def stages(self, cmid: str) -> List[str]:
        """Just the stage names of one message's trace, in order."""
        return [e.stage for e in self._events if e.cmid == cmid]

    def cmids(self) -> List[str]:
        """Distinct correlation keys seen, in first-appearance order."""
        seen: List[str] = []
        for event in self._events:
            if event.cmid is not None and event.cmid not in seen:
                seen.append(event.cmid)
        return seen

    def timeline_hash(self) -> str:
        """SHA-256 over the canonical JSON form of every retained event.

        Two runs of one deterministic episode (same seed, deterministic
        ids — see :mod:`repro.sim.determinism`) must produce the same
        hash in any process; chaos replay asserts exactly that, and the
        bounded checker's state dedup rests on the same property.  The
        encoding is canonical: sorted keys, no whitespace, ``None``
        preserved, detail dicts included.
        """
        digest = hashlib.sha256()
        for event in self._events:
            digest.update(
                json.dumps(
                    [
                        event.seq,
                        event.at_ms,
                        event.stage,
                        event.cmid,
                        event.manager,
                        event.queue,
                        event.message_id,
                        event.detail,
                    ],
                    sort_keys=True,
                    separators=(",", ":"),
                    default=str,
                ).encode("utf-8")
            )
        return digest.hexdigest()

    def clear(self) -> None:
        """Discard all retained events (the sequence keeps counting)."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"FlightRecorder(events={len(self._events)})"
