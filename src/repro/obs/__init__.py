"""Observability: message-lifecycle tracing and a metrics registry.

The paper's entire contribution is closing the gap between "delivered to
a queue" and "received/processed by the recipient"; this package makes
that gap *visible*.  Two instruments:

* :mod:`repro.obs.trace` — a structured event tracer (a "flight
  recorder") that stamps every hop of a conditional message — send
  fan-out, transmission-queue parking, arrival, get/commit, the implicit
  acknowledgment, each evaluation pass, the decided outcome, compensation
  release — with sim-clock timestamps and a monotonic sequence number,
  keyed by the conditional message id;
* :mod:`repro.obs.registry` — counters, gauges (per-queue depth), and
  histograms (ack latency, decision latency) with percentile summaries.

Both default off: every component holds the no-op :data:`NULL_TRACER`
(``enabled`` is false, so hot paths pay one attribute check) and a
``metrics`` of ``None``.  Enable by passing a :class:`FlightRecorder`
and/or :class:`MetricsRegistry` to the queue managers and network — or to
:class:`~repro.workloads.scenarios.Testbed`, which wires them everywhere.
"""

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    STAGE_ACK,
    STAGE_ARRIVAL,
    STAGE_COMMIT,
    STAGE_COMPENSATION,
    STAGE_DEAD_LETTER,
    STAGE_EVALUATE,
    STAGE_EXPIRED,
    STAGE_GET,
    STAGE_OUTCOME,
    STAGE_ROLLBACK,
    STAGE_SEND,
    STAGE_XMIT,
    FlightRecorder,
    TraceEvent,
    Tracer,
    cmid_of,
)

__all__ = [
    "Tracer",
    "FlightRecorder",
    "TraceEvent",
    "NULL_TRACER",
    "MetricsRegistry",
    "cmid_of",
    "STAGE_SEND",
    "STAGE_XMIT",
    "STAGE_ARRIVAL",
    "STAGE_GET",
    "STAGE_COMMIT",
    "STAGE_ROLLBACK",
    "STAGE_ACK",
    "STAGE_EVALUATE",
    "STAGE_OUTCOME",
    "STAGE_COMPENSATION",
    "STAGE_DEAD_LETTER",
    "STAGE_EXPIRED",
]
