"""Counters, gauges, and histograms for benchmark instrumentation.

One :class:`MetricsRegistry` is shared by every instrumented component of
a deployment (the :class:`~repro.workloads.scenarios.Testbed` wires a
single instance through all queue managers).  Naming convention is
dotted paths, e.g.::

    depth.QM.R1.Q.R1          per-queue depth gauge (set on every mutation)
    puts.QM.SENDER            counter of successful puts on a manager
    dead_letters.QM.R1        counter of dead-lettered messages
    ack_latency_ms            histogram: send -> ack processed at sender
    decision_latency_ms       histogram: send -> outcome decided

Histogram summaries reuse the harness percentile machinery
(:func:`repro.harness.metrics.percentile` via
:class:`~repro.harness.metrics.LatencyStats`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.metrics import LatencyStats


class MetricsRegistry:
    """Named counters, gauges, and histogram samples."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    # -- counters -----------------------------------------------------------

    def incr(self, name: str, by: int = 1) -> int:
        """Add ``by`` to a counter; returns the new value."""
        value = self._counters.get(name, 0) + by
        self._counters[name] = value
        return value

    def counter(self, name: str) -> int:
        """Current counter value (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """All counters, by name."""
        return dict(self._counters)

    # -- gauges -------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to an absolute value."""
        self._gauges[name] = float(value)

    def gauge(self, name: str) -> Optional[float]:
        """Current gauge value, or ``None`` if never set."""
        return self._gauges.get(name)

    def gauges(self) -> Dict[str, float]:
        """All gauges, by name."""
        return dict(self._gauges)

    # -- histograms ---------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Append one sample to a histogram."""
        self._histograms.setdefault(name, []).append(float(value))

    def histogram(self, name: str) -> List[float]:
        """Raw samples of a histogram (empty list if absent)."""
        return list(self._histograms.get(name, []))

    def histogram_stats(self, name: str) -> "Optional[LatencyStats]":
        """Percentile summary of a histogram, or ``None`` if empty."""
        samples = self._histograms.get(name)
        if not samples:
            return None
        # Imported lazily: the mq layer loads this module at import time,
        # and repro.harness transitively imports the mq layer.
        from repro.harness.metrics import LatencyStats

        return LatencyStats.from_samples(samples)

    def histograms(self) -> List[str]:
        """Names of all histograms."""
        return list(self._histograms)

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Reset every counter, gauge, and histogram."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)},"
            f" gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
