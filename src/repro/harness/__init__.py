"""Experiment harness: metrics, runners, and table reporting.

The paper reports no numeric tables; EXPERIMENTS.md defines the scenario
and characterization experiments this reproduction runs for each figure.
This package provides the shared machinery: latency/throughput metric
collection with percentiles, experiment runners that assemble testbeds
and sweeps, and fixed-width table rendering for the benchmark output.
"""

from repro.harness.inspect import format_snapshot, snapshot_manager, snapshot_service
from repro.harness.metrics import LatencyStats, MetricSeries
from repro.harness.reporting import Table, render_metrics, render_trace_timeline
from repro.harness.runner import (
    ExperimentResult,
    run_chaos_corpus,
    run_example1,
    run_example2,
)

__all__ = [
    "LatencyStats",
    "MetricSeries",
    "Table",
    "render_trace_timeline",
    "render_metrics",
    "ExperimentResult",
    "run_example1",
    "run_example2",
    "run_chaos_corpus",
    "snapshot_manager",
    "snapshot_service",
    "format_snapshot",
]
