"""Metric collection: latency series with percentile summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class LatencyStats:
    """Summary statistics over a sample of latencies (milliseconds)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_samples(cls, samples: List[float]) -> "LatencyStats":
        """Compute summary stats; raises on an empty sample."""
        if not samples:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=percentile(ordered, 50),
            p95=percentile(ordered, 95),
            p99=percentile(ordered, 99),
        )


def percentile(ordered: List[float], pct: float) -> float:
    """Linearly interpolated percentile of a pre-sorted sample.

    Uses the "linear" method (NumPy's default): the rank is
    ``pct/100 * (n - 1)`` and a fractional rank interpolates between the
    two closest order statistics.  So ``percentile([10, 20, 30, 40], 25)``
    is ``17.5`` — *not* the nearest-rank answer ``20``.  ``pct=0`` and
    ``pct=100`` return the minimum and maximum exactly.
    """
    if not ordered:
        raise ValueError("cannot take a percentile of an empty sample")
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


class MetricSeries:
    """Named collections of samples, accumulated during an experiment."""

    def __init__(self) -> None:
        self._series: Dict[str, List[float]] = {}

    def record(self, name: str, value: float) -> None:
        """Append one sample to a named series."""
        self._series.setdefault(name, []).append(float(value))

    def samples(self, name: str) -> List[float]:
        """Raw samples for a series (empty list if absent)."""
        return list(self._series.get(name, []))

    def stats(self, name: str) -> Optional[LatencyStats]:
        """Summary stats for a series, or ``None`` if it has no samples."""
        samples = self._series.get(name)
        if not samples:
            return None
        return LatencyStats.from_samples(samples)

    def names(self) -> List[str]:
        """All series names."""
        return list(self._series)

    def merge(self, other: "MetricSeries") -> None:
        """Fold another collection's samples into this one."""
        for name in other.names():
            self._series.setdefault(name, []).extend(other.samples(name))
