"""System introspection: one-call snapshots of a running deployment.

Debugging a distributed messaging system means asking "where is
everything right now?"  :func:`snapshot_manager` captures one queue
manager's state (queue depths, dead letters, channel backlogs);
:func:`snapshot_service` adds the conditional messaging view (pending
evaluations, staged compensations, outcome counts).  Snapshots are plain
dicts, so tests can assert on them and operators can dump them as JSON.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.service import ConditionalMessagingService
from repro.mq.manager import DEAD_LETTER_QUEUE, QueueManager
from repro.mq.network import XMIT_PREFIX


def snapshot_manager(manager: QueueManager) -> Dict[str, Any]:
    """Capture a queue manager's observable state."""
    queues: Dict[str, Any] = {}
    transit = 0
    for name in manager.queue_names():
        queue = manager.queue(name)
        queues[name] = {
            "depth": queue.depth(),
            "total_depth": queue.total_depth(),
            "puts": queue.stats.puts,
            "gets": queue.stats.gets,
            "expired": queue.stats.expired,
            "backouts": queue.stats.backouts,
            "high_water": queue.stats.high_water_depth,
        }
        if name.startswith(XMIT_PREFIX):
            transit += queue.depth()
    return {
        "manager": manager.name,
        "queues": queues,
        "dead_letters": manager.depth(DEAD_LETTER_QUEUE),
        "in_transit": transit,
        "journaled": manager.journal is not None,
    }


def snapshot_service(service: ConditionalMessagingService) -> Dict[str, Any]:
    """Capture the sender-side conditional messaging state."""
    evaluation = service.evaluation
    return {
        "manager": snapshot_manager(service.manager),
        "pending_evaluations": evaluation.pending_count(),
        "acks_processed": evaluation.stats.acks_processed,
        "evaluations_run": evaluation.stats.evaluations_run,
        "decided_success": evaluation.stats.decided_success,
        "decided_failure": evaluation.stats.decided_failure,
        "decided_by_timeout": evaluation.stats.decided_by_timeout,
        "conditional_sends": service.stats.conditional_sends,
        "standard_messages_generated": service.stats.standard_messages_generated,
        "compensations_staged_total": service.stats.compensations_staged,
        "compensations_pending": service.compensation.pending(),
        "compensations_released": service.stats.compensations_released,
        "success_notifications_sent": service.stats.success_notifications_sent,
        "recovery_log_depth": service.manager.depth(service.slog_queue),
    }


def format_snapshot(snapshot: Dict[str, Any], indent: int = 0) -> str:
    """Render a snapshot as an indented text block (for logs/REPL)."""
    pad = "  " * indent
    lines = []
    for key, value in snapshot.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(format_snapshot(value, indent + 1))
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)
