"""Fixed-width table rendering for benchmark output.

Benchmarks print the rows EXPERIMENTS.md records; keeping the renderer in
the library (rather than each bench) makes the output uniform and lets
tests assert on the structure.
"""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """A simple fixed-width text table.

    Example::

        table = Table("FIG6: send overhead", ["fan-out", "raw put", "conditional"])
        table.add_row([1, "12.1us", "31.9us"])
        print(table.render())
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self._rows: List[List[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        """Append a row; values are stringified (floats to 3 decimals)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append([_format_cell(value) for value in values])

    @property
    def rows(self) -> List[List[str]]:
        """Rendered cell values (for assertions)."""
        return [list(row) for row in self._rows]

    def render(self) -> str:
        """Render the table as a fixed-width string block."""
        widths = [len(column) for column in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * max(len(self.title), 1)]
        header = "  ".join(
            column.ljust(widths[i]) for i, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self._rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table with surrounding blank lines."""
        print()
        print(self.render())
        print()


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
