"""Fixed-width table rendering for benchmark output.

Benchmarks print the rows EXPERIMENTS.md records; keeping the renderer in
the library (rather than each bench) makes the output uniform and lets
tests assert on the structure.  Also renders the observability layer's
artifacts: per-message trace timelines (:func:`render_trace_timeline`)
and metric registry breakdowns (:func:`render_metrics`).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceEvent


class Table:
    """A simple fixed-width text table.

    Example::

        table = Table("FIG6: send overhead", ["fan-out", "raw put", "conditional"])
        table.add_row([1, "12.1us", "31.9us"])
        print(table.render())
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self._rows: List[List[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        """Append a row; values are stringified (floats to 3 decimals)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append([_format_cell(value) for value in values])

    @property
    def rows(self) -> List[List[str]]:
        """Rendered cell values (for assertions)."""
        return [list(row) for row in self._rows]

    def render(self) -> str:
        """Render the table as a fixed-width string block."""
        widths = [len(column) for column in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * max(len(self.title), 1)]
        header = "  ".join(
            column.ljust(widths[i]) for i, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self._rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table with surrounding blank lines."""
        print()
        print(self.render())
        print()


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------------
# Observability rendering
# ---------------------------------------------------------------------------


def render_trace_timeline(
    events: Sequence[TraceEvent], title: Optional[str] = None
) -> str:
    """Render a message trace as a fixed-width stage-by-stage timeline.

    ``events`` is typically one conditional message's trace
    (``recorder.events_for(cmid)``); the rows appear in emission order
    with the virtual timestamp, the delta since the previous stage, and
    the hop's location.  Example::

        trace cm-42
        ===========
        t (ms)  +dt   stage    manager    queue   message       detail
        ------------------------------------------------------------...
        0       +0    send     QM.R       Q.IN    01HVX3K9…     priority=4
        10      +10   arrival  QM.R       Q.IN    01HVX3K9…     persistent=yes
    """
    if title is None:
        cmids = {e.cmid for e in events if e.cmid is not None}
        title = f"trace {next(iter(cmids))}" if len(cmids) == 1 else "trace"
    table = Table(
        title, ["t (ms)", "+dt", "stage", "manager", "queue", "message", "detail"]
    )
    previous_ms: Optional[int] = None
    for event in events:
        delta = 0 if previous_ms is None else event.at_ms - previous_ms
        previous_ms = event.at_ms
        detail = " ".join(
            f"{key}={_format_cell(value)}" for key, value in event.detail.items()
        )
        table.add_row(
            [
                event.at_ms,
                f"+{delta}",
                event.stage,
                event.manager or "-",
                event.queue or "-",
                _short_id(event.message_id),
                detail or "-",
            ]
        )
    return table.render()


def render_metrics(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Render a registry's counters, gauges, and histogram summaries.

    Histograms show count/mean/p50/p95/p99 via
    :class:`~repro.harness.metrics.LatencyStats` (one row per histogram);
    counters and gauges are one row each, sorted by name.
    """
    blocks: List[str] = []
    counters = registry.counters()
    gauges = registry.gauges()
    if counters or gauges:
        table = Table(f"{title}: counters & gauges", ["name", "kind", "value"])
        for name in sorted(counters):
            table.add_row([name, "counter", counters[name]])
        for name in sorted(gauges):
            table.add_row([name, "gauge", gauges[name]])
        blocks.append(table.render())
    histograms = sorted(registry.histograms())
    if histograms:
        table = Table(
            f"{title}: histograms",
            ["name", "count", "mean", "min", "p50", "p95", "p99", "max"],
        )
        for name in histograms:
            stats = registry.histogram_stats(name)
            if stats is None:
                continue
            table.add_row(
                [
                    name,
                    stats.count,
                    stats.mean,
                    stats.minimum,
                    stats.p50,
                    stats.p95,
                    stats.p99,
                    stats.maximum,
                ]
            )
        blocks.append(table.render())
    if not blocks:
        return f"{title}: (no metrics recorded)"
    return "\n\n".join(blocks)


def _short_id(message_id: Optional[str]) -> str:
    if message_id is None:
        return "-"
    return message_id if len(message_id) <= 10 else message_id[:10] + "…"
