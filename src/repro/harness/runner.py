"""Experiment runners: canned end-to-end scenario executions.

Each runner assembles a testbed, drives the scenario to quiescence, and
returns a structured :class:`ExperimentResult` that both the benchmarks
and the integration tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.outcome import OutcomeRecord
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.workloads.receivers import ReceiverMode, ReceiverScript, ScriptedReceiver
from repro.workloads.scenarios import (
    SECOND_MS,
    Testbed,
    build_example1_condition,
    build_example2_condition,
)


@dataclass
class ExperimentResult:
    """Outcome and bookkeeping of one scenario run."""

    outcome: OutcomeRecord
    testbed: Testbed
    cmid: str
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """True when the conditional message succeeded."""
        return self.outcome.succeeded


def run_example1(
    r1_react_ms: int = 3 * 3_600 * SECOND_MS,
    r2_react_ms: int = 5 * 3_600 * SECOND_MS,
    r3_react_ms: int = 8 * 3_600 * SECOND_MS,
    r4_react_ms: int = 30 * 3_600 * SECOND_MS,
    r1_mode: ReceiverMode = ReceiverMode.PROCESS_COMMIT,
    r2_mode: ReceiverMode = ReceiverMode.PROCESS_COMMIT,
    r3_mode: ReceiverMode = ReceiverMode.PROCESS_COMMIT,
    r4_mode: ReceiverMode = ReceiverMode.READ,
    latency_ms: int = 50,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExperimentResult:
    """Run Example 1 (group meeting, Figures 1/4) to completion.

    Defaults give the paper's success story: all four read within two
    days, Receiver3 processes within a week, and two of the other three
    (R1, R2) process within the subset window while R4 only reads.

    Pass a :class:`~repro.obs.trace.FlightRecorder` as ``tracer`` and/or
    a :class:`~repro.obs.registry.MetricsRegistry` as ``metrics`` to get
    the full stage-by-stage trace and latency breakdown of the run.
    """
    testbed = Testbed(
        ["R1", "R2", "R3", "R4"],
        latency_ms=latency_ms,
        seed=seed,
        tracer=tracer,
        metrics=metrics,
    )
    condition = build_example1_condition(testbed)
    cmid = testbed.service.send_message(
        {"meeting": "quarterly planning"}, condition, compensation={"cancelled": True}
    )
    reacts = {
        "R1": (r1_react_ms, r1_mode),
        "R2": (r2_react_ms, r2_mode),
        "R3": (r3_react_ms, r3_mode),
        "R4": (r4_react_ms, r4_mode),
    }
    scripts: Dict[str, ScriptedReceiver] = {}
    for name, (react, mode) in reacts.items():
        script = ScriptedReceiver(
            testbed.receiver(name),
            testbed.scheduler,
            ReceiverScript(
                queue=testbed.queue_of(name),
                react_after_ms=react,
                mode=mode,
                process_ms=60 * SECOND_MS,
            ),
        )
        script.start()
        scripts[name] = script
    testbed.run_all()
    outcome = testbed.service.outcome(cmid)
    assert outcome is not None, "example 1 must decide by its timeout"
    return ExperimentResult(
        outcome=outcome,
        testbed=testbed,
        cmid=cmid,
        extras={"scripts": scripts},
    )


def run_example2(
    controllers: int = 4,
    first_reaction_ms: Optional[int] = 5 * SECOND_MS,
    pick_up_window_ms: int = 20 * SECOND_MS,
    latency_ms: int = 20,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExperimentResult:
    """Run Example 2 (air traffic control, Figures 2/5) to completion.

    ``first_reaction_ms=None`` models the failure case: no controller
    reads the flight message, the 21-second evaluation timeout fires, and
    the staged compensation cancels the unread original.  ``tracer`` and
    ``metrics`` wire observability through the testbed as in
    :func:`run_example1`.
    """
    testbed = Testbed(
        ["TOWER"],
        latency_ms=latency_ms,
        seed=seed,
        tracer=tracer,
        metrics=metrics,
    )
    condition = build_example2_condition(
        shared_queue="Q.CENTRAL",
        manager="QM.TOWER",
        pick_up_window_ms=pick_up_window_ms,
        evaluation_timeout_ms=pick_up_window_ms + SECOND_MS,
    )
    cmid = testbed.service.send_message(
        {"flight": "BA117", "runway": "27L"}, condition
    )
    # All controllers poll the shared queue; only the first getter wins.
    tower = testbed.receivers["TOWER"]
    from repro.core.receiver import ConditionalMessagingReceiver

    controller_endpoints = [
        ConditionalMessagingReceiver(tower.manager, recipient_id=f"controller-{i}")
        for i in range(controllers)
    ]
    picked: List[str] = []
    if first_reaction_ms is not None:
        def first_pick() -> None:
            message = controller_endpoints[0].read_message("Q.CENTRAL")
            if message is not None:
                picked.append(controller_endpoints[0].recipient_id)

        testbed.at(first_reaction_ms, first_pick)
        for i, endpoint in enumerate(controller_endpoints[1:], start=1):
            def late_pick(endpoint=endpoint) -> None:
                message = endpoint.read_message("Q.CENTRAL")
                if message is not None:
                    picked.append(endpoint.recipient_id)

            testbed.at(first_reaction_ms + i * SECOND_MS, late_pick)
    testbed.run_all()
    outcome = testbed.service.outcome(cmid)
    assert outcome is not None, "example 2 must decide by its timeout"
    return ExperimentResult(
        outcome=outcome,
        testbed=testbed,
        cmid=cmid,
        extras={"picked_by": picked, "controllers": controller_endpoints},
    )


def run_chaos_corpus(
    episodes: int = 50,
    base_seed: int = 0,
    journal: str = "memory",
    journal_dir: Optional[str] = None,
    repro_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run a fixed-seed chaos corpus; returns an aggregate summary.

    Drives :class:`repro.chaos.ChaosExplorer` over ``episodes``
    consecutive seeds.  Every failing episode is shrunk to a minimal
    reproducer; when ``repro_dir`` is given the reproducer JSON is
    written there as ``CHAOS_repro_seed<seed>.json`` so CI can upload
    it as an artifact.

    Args:
        episodes: Number of seeded episodes.
        base_seed: Seed of the first episode (episode ``i`` uses
            ``base_seed + i``).
        journal: ``"memory"``, ``"file"``, or ``"sqlite"`` — file
            journals enable torn-tail faults; sqlite journals exercise
            engine-transaction commit groups.
        journal_dir: Directory for file/sqlite journals (temporary when
            None).
        repro_dir: Where to write minimized reproducers for failures.

    Returns:
        Summary dict: ``episodes``, ``failures`` (count),
        ``violations`` (list of strings), ``repro_paths``, plus the
        aggregate ``sends``/``crashes``/``faults_fired`` counters.
    """
    from repro.chaos import ChaosExplorer, EpisodeSpec

    explorer = ChaosExplorer(journal_dir=journal_dir)
    summary: Dict[str, object] = {
        "episodes": episodes,
        "base_seed": base_seed,
        "journal": journal,
        "failures": 0,
        "violations": [],
        "repro_paths": [],
        "sends": 0,
        "crashes": 0,
        "faults_fired": 0,
    }
    for i in range(episodes):
        seed = base_seed + i
        spec = EpisodeSpec.generate(seed, journal=journal)
        result = explorer.run_episode(spec)
        summary["sends"] += result.sends  # type: ignore[operator]
        summary["crashes"] += result.crashes  # type: ignore[operator]
        summary["faults_fired"] += result.faults_fired  # type: ignore[operator]
        if result.ok:
            continue
        summary["failures"] += 1  # type: ignore[operator]
        summary["violations"].extend(  # type: ignore[union-attr]
            f"seed={seed} {violation}" for violation in result.violations
        )
        if repro_dir is not None:
            minimal = explorer.shrink(spec)
            path = explorer.write_repro(
                minimal, f"{repro_dir}/CHAOS_repro_seed{seed}.json"
            )
            summary["repro_paths"].append(path)  # type: ignore[union-attr]
    return summary
