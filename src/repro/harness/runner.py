"""Experiment runners: canned end-to-end scenario executions.

Each runner assembles a testbed, drives the scenario to quiescence, and
returns a structured :class:`ExperimentResult` that both the benchmarks
and the integration tests consume.
"""

from __future__ import annotations

import json
import os
import select
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.outcome import OutcomeRecord
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.workloads.receivers import ReceiverMode, ReceiverScript, ScriptedReceiver
from repro.workloads.scenarios import (
    SECOND_MS,
    Testbed,
    build_example1_condition,
    build_example2_condition,
)


@dataclass
class ExperimentResult:
    """Outcome and bookkeeping of one scenario run."""

    outcome: OutcomeRecord
    testbed: Testbed
    cmid: str
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """True when the conditional message succeeded."""
        return self.outcome.succeeded


def run_example1(
    r1_react_ms: int = 3 * 3_600 * SECOND_MS,
    r2_react_ms: int = 5 * 3_600 * SECOND_MS,
    r3_react_ms: int = 8 * 3_600 * SECOND_MS,
    r4_react_ms: int = 30 * 3_600 * SECOND_MS,
    r1_mode: ReceiverMode = ReceiverMode.PROCESS_COMMIT,
    r2_mode: ReceiverMode = ReceiverMode.PROCESS_COMMIT,
    r3_mode: ReceiverMode = ReceiverMode.PROCESS_COMMIT,
    r4_mode: ReceiverMode = ReceiverMode.READ,
    latency_ms: int = 50,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExperimentResult:
    """Run Example 1 (group meeting, Figures 1/4) to completion.

    Defaults give the paper's success story: all four read within two
    days, Receiver3 processes within a week, and two of the other three
    (R1, R2) process within the subset window while R4 only reads.

    Pass a :class:`~repro.obs.trace.FlightRecorder` as ``tracer`` and/or
    a :class:`~repro.obs.registry.MetricsRegistry` as ``metrics`` to get
    the full stage-by-stage trace and latency breakdown of the run.
    """
    testbed = Testbed(
        ["R1", "R2", "R3", "R4"],
        latency_ms=latency_ms,
        seed=seed,
        tracer=tracer,
        metrics=metrics,
    )
    condition = build_example1_condition(testbed)
    cmid = testbed.service.send_message(
        {"meeting": "quarterly planning"}, condition, compensation={"cancelled": True}
    )
    reacts = {
        "R1": (r1_react_ms, r1_mode),
        "R2": (r2_react_ms, r2_mode),
        "R3": (r3_react_ms, r3_mode),
        "R4": (r4_react_ms, r4_mode),
    }
    scripts: Dict[str, ScriptedReceiver] = {}
    for name, (react, mode) in reacts.items():
        script = ScriptedReceiver(
            testbed.receiver(name),
            testbed.scheduler,
            ReceiverScript(
                queue=testbed.queue_of(name),
                react_after_ms=react,
                mode=mode,
                process_ms=60 * SECOND_MS,
            ),
        )
        script.start()
        scripts[name] = script
    testbed.run_all()
    outcome = testbed.service.outcome(cmid)
    assert outcome is not None, "example 1 must decide by its timeout"
    return ExperimentResult(
        outcome=outcome,
        testbed=testbed,
        cmid=cmid,
        extras={"scripts": scripts},
    )


def run_example2(
    controllers: int = 4,
    first_reaction_ms: Optional[int] = 5 * SECOND_MS,
    pick_up_window_ms: int = 20 * SECOND_MS,
    latency_ms: int = 20,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExperimentResult:
    """Run Example 2 (air traffic control, Figures 2/5) to completion.

    ``first_reaction_ms=None`` models the failure case: no controller
    reads the flight message, the 21-second evaluation timeout fires, and
    the staged compensation cancels the unread original.  ``tracer`` and
    ``metrics`` wire observability through the testbed as in
    :func:`run_example1`.
    """
    testbed = Testbed(
        ["TOWER"],
        latency_ms=latency_ms,
        seed=seed,
        tracer=tracer,
        metrics=metrics,
    )
    condition = build_example2_condition(
        shared_queue="Q.CENTRAL",
        manager="QM.TOWER",
        pick_up_window_ms=pick_up_window_ms,
        evaluation_timeout_ms=pick_up_window_ms + SECOND_MS,
    )
    cmid = testbed.service.send_message(
        {"flight": "BA117", "runway": "27L"}, condition
    )
    # All controllers poll the shared queue; only the first getter wins.
    tower = testbed.receivers["TOWER"]
    from repro.core.receiver import ConditionalMessagingReceiver

    controller_endpoints = [
        ConditionalMessagingReceiver(tower.manager, recipient_id=f"controller-{i}")
        for i in range(controllers)
    ]
    picked: List[str] = []
    if first_reaction_ms is not None:
        def first_pick() -> None:
            message = controller_endpoints[0].read_message("Q.CENTRAL")
            if message is not None:
                picked.append(controller_endpoints[0].recipient_id)

        testbed.at(first_reaction_ms, first_pick)
        for i, endpoint in enumerate(controller_endpoints[1:], start=1):
            def late_pick(endpoint=endpoint) -> None:
                message = endpoint.read_message("Q.CENTRAL")
                if message is not None:
                    picked.append(endpoint.recipient_id)

            testbed.at(first_reaction_ms + i * SECOND_MS, late_pick)
    testbed.run_all()
    outcome = testbed.service.outcome(cmid)
    assert outcome is not None, "example 2 must decide by its timeout"
    return ExperimentResult(
        outcome=outcome,
        testbed=testbed,
        cmid=cmid,
        extras={"picked_by": picked, "controllers": controller_endpoints},
    )


class MultiprocessDeployment:
    """Spawn a wire-transport deployment as real OS processes.

    One sender host plus ``receivers`` receiver hosts, each a
    ``python -m repro.net.host`` subprocess talking over unix sockets
    (or TCP on loopback).  Use as a context manager — :meth:`cleanup`
    runs on *every* exit path, so a failing benchmark or test never
    leaks child processes or unix-socket files:

        with MultiprocessDeployment(receivers=4, messages=200) as dep:
            result = dep.run()

    Args:
        receivers: Number of receiver host processes.
        messages: Conditional messages the sender round-robins.
        processing_ms: Simulated per-message work in each receiver (the
            cost that overlaps across processes).
        transport: ``"unix"`` or ``"tcp"`` (loopback, ephemeral ports).
        socket_dir: Directory for unix sockets; a private temp dir
            (removed on cleanup) when None.
        capacity: Each receiver's advertised credit/backlog bound.
        pickup_ms: ``msg_pick_up_time`` deadline for the condition.
        timeout_s: Bound on READY handshakes and on the sender run.
    """

    def __init__(
        self,
        receivers: int,
        messages: int,
        processing_ms: float = 2.0,
        transport: str = "unix",
        socket_dir: Optional[str] = None,
        capacity: int = 128,
        pickup_ms: int = 60_000,
        timeout_s: float = 120.0,
    ) -> None:
        if receivers < 1:
            raise ValueError("need at least one receiver process")
        if transport not in ("unix", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.receivers = receivers
        self.messages = messages
        self.processing_ms = processing_ms
        self.transport = transport
        self.capacity = capacity
        self.pickup_ms = pickup_ms
        self.timeout_s = timeout_s
        self._owns_dir = socket_dir is None
        self.socket_dir = socket_dir or tempfile.mkdtemp(prefix="repro-wire-")
        os.makedirs(self.socket_dir, exist_ok=True)
        self.procs: List[subprocess.Popen] = []
        self.peers: List[Tuple[str, str]] = []
        self.sender_name = "QM.S"
        if transport == "unix":
            self.sender_addr = f"unix:{os.path.join(self.socket_dir, 's.sock')}"
        else:
            self.sender_addr = f"tcp:127.0.0.1:{_free_port()}"
        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(sys.modules["repro"].__file__))
        )
        self._env = dict(os.environ)
        self._env["PYTHONPATH"] = (
            src_dir + os.pathsep + self._env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)

    def __enter__(self) -> "MultiprocessDeployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()

    # -- lifecycle --------------------------------------------------------------

    def _spawn(self, argv: List[str]) -> subprocess.Popen:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.net.host", *argv],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=self._env,
            text=True,
        )
        self.procs.append(proc)
        return proc

    def _receiver_listen(self, index: int) -> str:
        if self.transport == "unix":
            return f"unix:{os.path.join(self.socket_dir, f'r{index}.sock')}"
        return "tcp:127.0.0.1:0"

    def start_receivers(self) -> List[Tuple[str, str]]:
        """Spawn every receiver host and collect its READY address."""
        for i in range(self.receivers):
            name = f"QM.R{i}"
            proc = self._spawn(
                [
                    "receiver",
                    "--name", name,
                    "--listen", self._receiver_listen(i),
                    "--peer", f"{self.sender_name}={self.sender_addr}",
                    "--processing-ms", str(self.processing_ms),
                    "--capacity", str(self.capacity),
                    "--timeout", str(self.timeout_s),
                ]
            )
            ready = _await_line(proc, "READY ", self.timeout_s)
            bound = ready.split()[2]
            self.peers.append((name, bound))
        return self.peers

    def run_sender(self) -> Dict[str, object]:
        """Run the sender to completion; returns its RESULT payload."""
        argv = [
            "sender",
            "--name", self.sender_name,
            "--listen", self.sender_addr,
            "--messages", str(self.messages),
            "--pickup-ms", str(self.pickup_ms),
            "--timeout", str(self.timeout_s),
        ]
        for name, bound in self.peers:
            argv += ["--peer", f"{name}={bound}"]
        proc = self._spawn(argv)
        try:
            out, err = proc.communicate(timeout=self.timeout_s + 10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, err = proc.communicate()
            raise RuntimeError(
                f"sender timed out after {self.timeout_s}s\n{out}\n{err}"
            )
        if proc.returncode != 0:
            raise RuntimeError(
                f"sender exited with {proc.returncode}\n{out}\n{err}"
            )
        for line in out.splitlines():
            if line.startswith("RESULT "):
                return json.loads(line[len("RESULT "):])
        raise RuntimeError(f"sender produced no RESULT line\n{out}\n{err}")

    def run(self) -> Dict[str, object]:
        """Start the receivers, run the sender, return its result."""
        self.start_receivers()
        return self.run_sender()

    def cleanup(self, grace_s: float = 5.0) -> None:
        """Tear everything down; safe to call on any exit path.

        Closes each host's stdin first (their cue to exit cleanly),
        escalates to terminate/kill for stragglers, then removes the
        unix-socket files (and the socket dir, when this deployment
        created it).
        """
        for proc in self.procs:
            if proc.stdin is not None and not proc.stdin.closed:
                try:
                    proc.stdin.close()
                except OSError:
                    pass
        deadline = time.monotonic() + grace_s
        for proc in self.procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(0.05, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.terminate()
        for proc in self.procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        for proc in self.procs:
            for stream in (proc.stdout, proc.stderr):
                if stream is not None and not stream.closed:
                    stream.close()
        if self._owns_dir:
            shutil.rmtree(self.socket_dir, ignore_errors=True)
        else:
            for entry in os.listdir(self.socket_dir):
                if entry.endswith(".sock"):
                    try:
                        os.unlink(os.path.join(self.socket_dir, entry))
                    except OSError:
                        pass


def _free_port() -> int:
    """Reserve-and-release a loopback TCP port for a child to bind."""
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _await_line(proc: subprocess.Popen, prefix: str, timeout_s: float) -> str:
    """Read ``proc`` stdout lines until one starts with ``prefix``."""
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while True:
        if proc.poll() is not None:
            err = proc.stderr.read() if proc.stderr else ""
            raise RuntimeError(
                f"host exited with {proc.returncode} before {prefix!r}\n{err}"
            )
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RuntimeError(f"timed out waiting for {prefix!r} from host")
        ready, _, _ = select.select([proc.stdout], [], [], min(remaining, 0.25))
        if not ready:
            continue
        line = proc.stdout.readline()
        if not line:
            err = proc.stderr.read() if proc.stderr else ""
            raise RuntimeError(f"host closed stdout before {prefix!r}\n{err}")
        if line.startswith(prefix):
            return line.strip()


def run_multiprocess_benchmark(
    receivers: int,
    messages: int,
    processing_ms: float = 2.0,
    transport: str = "unix",
    timeout_s: float = 120.0,
) -> Dict[str, object]:
    """One multi-process throughput measurement (see the deployment class).

    Returns the sender's RESULT payload: ``sends_per_sec``,
    ``decision_latency_ms`` percentiles, per-channel ``wire`` counters.
    """
    with MultiprocessDeployment(
        receivers=receivers,
        messages=messages,
        processing_ms=processing_ms,
        transport=transport,
        timeout_s=timeout_s,
    ) as deployment:
        return deployment.run()


def run_chaos_corpus(
    episodes: int = 50,
    base_seed: int = 0,
    journal: str = "memory",
    journal_dir: Optional[str] = None,
    repro_dir: Optional[str] = None,
    transport: str = "local",
) -> Dict[str, object]:
    """Run a fixed-seed chaos corpus; returns an aggregate summary.

    With the default ``transport="local"`` this drives
    :class:`repro.chaos.ChaosExplorer` over ``episodes`` consecutive
    seeds.  Every failing episode is shrunk to a minimal reproducer;
    when ``repro_dir`` is given the reproducer JSON is written there as
    ``CHAOS_repro_seed<seed>.json`` so CI can upload it as an artifact.

    With ``transport="tcp"`` it instead runs the wire-chaos family
    (:func:`repro.chaos.wire.run_wire_corpus`): real
    :class:`~repro.net.protocol.ChannelEngine` pairs over a simulated
    lossy connection, with seeded mid-frame drops, reconnect resync and
    deferred confirmations — the ``journal*`` arguments do not apply.

    Args:
        episodes: Number of seeded episodes.
        base_seed: Seed of the first episode (episode ``i`` uses
            ``base_seed + i``).
        journal: ``"memory"``, ``"file"``, or ``"sqlite"`` — file
            journals enable torn-tail faults; sqlite journals exercise
            engine-transaction commit groups.
        journal_dir: Directory for file/sqlite journals (temporary when
            None).
        repro_dir: Where to write minimized reproducers for failures.
        transport: ``"local"`` (in-process MessageNetwork chaos) or
            ``"tcp"`` (wire-protocol chaos).

    Returns:
        Summary dict: ``episodes``, ``failures`` (count),
        ``violations`` (list of strings), ``repro_paths``, plus the
        aggregate ``sends``/``crashes``/``faults_fired`` counters
        (wire corpora report wire counters instead).
    """
    if transport == "tcp":
        from repro.chaos.wire import run_wire_corpus

        return run_wire_corpus(
            episodes=episodes, base_seed=base_seed, repro_dir=repro_dir
        )
    if transport != "local":
        raise ValueError(f"unknown chaos transport {transport!r}")

    from repro.chaos import ChaosExplorer, EpisodeSpec

    explorer = ChaosExplorer(journal_dir=journal_dir)
    summary: Dict[str, object] = {
        "episodes": episodes,
        "base_seed": base_seed,
        "journal": journal,
        "failures": 0,
        "violations": [],
        "repro_paths": [],
        "sends": 0,
        "crashes": 0,
        "faults_fired": 0,
    }
    for i in range(episodes):
        seed = base_seed + i
        spec = EpisodeSpec.generate(seed, journal=journal)
        result = explorer.run_episode(spec)
        summary["sends"] += result.sends  # type: ignore[operator]
        summary["crashes"] += result.crashes  # type: ignore[operator]
        summary["faults_fired"] += result.faults_fired  # type: ignore[operator]
        if result.ok:
            continue
        summary["failures"] += 1  # type: ignore[operator]
        summary["violations"].extend(  # type: ignore[union-attr]
            f"seed={seed} {violation}" for violation in result.violations
        )
        if repro_dir is not None:
            minimal = explorer.shrink(spec)
            path = explorer.write_repro(
                minimal, f"{repro_dir}/CHAOS_repro_seed{seed}.json"
            )
            summary["repro_paths"].append(path)  # type: ignore[union-attr]
    return summary


def run_bounded_check(
    gen_seeds: Optional[List[int]] = None,
    crash_budget: int = 1,
    max_schedules: int = 6_000,
    repro_dir: Optional[str] = None,
    baseline_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run the exhaustive bounded checker over the CI configurations.

    Enumerates every event interleaving and crash point (within
    ``crash_budget``) of the pinned canonical rule set plus one
    generated rule set per seed in ``gen_seeds`` (default ``[1, 2]``),
    checking the full invariant suite at every terminal state — see
    :class:`repro.chaos.bounded.BoundedExplorer`.

    When ``baseline_path`` names an earlier report (the committed
    ``CHAOS_bounded.json``), a *state-count collapse* gate compares
    per-config explored-state counts: a config exploring fewer than
    half its baseline states trips the gate — the signature of the
    checker silently ceasing to explore (over-eager pruning, a hashing
    bug) rather than the protocol shrinking.

    Returns:
        Summary dict shaped like the report file: per-config
        ``configs`` (state/transition/schedule counts, completeness,
        violations), ``failures`` (configs with violations),
        ``violations`` (flat strings), ``repro_paths`` (written when
        ``repro_dir`` is given), and ``gate_failures``.
    """
    from repro.chaos.bounded import BoundedExplorer, canonical_ruleset
    from repro.rules import RuleSetGenerator

    configs = [("canonical", canonical_ruleset())]
    for seed in gen_seeds if gen_seeds is not None else [1, 2]:
        ruleset = RuleSetGenerator(
            seed, max_receivers=2, max_messages=2
        ).generate()
        configs.append((f"gen-{seed}", ruleset))

    summary: Dict[str, object] = {
        "crash_budget": crash_budget,
        "configs": {},
        "failures": 0,
        "violations": [],
        "repro_paths": [],
        "gate_failures": [],
    }
    for name, ruleset in configs:
        explorer = BoundedExplorer(
            ruleset,
            crash_budget=crash_budget,
            max_schedules=max_schedules,
        )
        result = explorer.run()
        summary["configs"][name] = result.to_dict()  # type: ignore[index]
        if result.ok:
            continue
        summary["failures"] += 1  # type: ignore[operator]
        summary["violations"].extend(  # type: ignore[union-attr]
            f"{name} {violation}"
            for failure in result.violations
            for violation in failure.violations
        )
        if repro_dir is not None:
            path = explorer.write_repro(
                result.violations[0],
                f"{repro_dir}/CHAOS_bounded_repro_{name}.json",
            )
            summary["repro_paths"].append(path)  # type: ignore[union-attr]

    if baseline_path is not None:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        for name, entry in summary["configs"].items():  # type: ignore[union-attr]
            old = baseline.get("configs", {}).get(name)
            if not old:
                continue
            if entry["states"] < 0.5 * old["states"]:
                summary["gate_failures"].append(  # type: ignore[union-attr]
                    f"{name}: explored {entry['states']} states, under"
                    f" 50% of baseline {old['states']} — bounded checker"
                    " stopped exploring?"
                )
    return summary
