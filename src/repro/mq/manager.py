"""Queue manager: names and hosts queues, routes puts/gets, owns the journal.

A :class:`QueueManager` corresponds to one MQSeries queue manager or one
JMS provider instance.  Every application endpoint in the paper's
architecture (the sender, each receiver) connects to *its own* queue
manager; managers are wired together by
:class:`~repro.mq.network.MessageNetwork`.

Responsibilities:

* queue definition/deletion, with a system dead-letter queue
  (``SYSTEM.DEAD.LETTER.QUEUE``) that collects expired and poisoned
  messages;
* non-transactional put/get/browse with journal records for persistent
  messages;
* syncpoint transactions (see :mod:`repro.mq.transactions`);
* backout-threshold handling: a message whose transactional consumption
  has been rolled back too many times is moved to the dead-letter queue
  rather than poisoning consumers forever;
* crash/restart: :meth:`recover` rebuilds a manager from its journal.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Callable, ContextManager, Dict, Iterable, Iterator, List, Optional

from repro.errors import (
    EmptyQueueError,
    MQError,
    QueueExistsError,
    QueueNotFoundError,
)
from repro.mq.message import Message
from repro.mq.persistence import Journal, journal_for
from repro.mq.sqlstore import SqlMessageQueue, SqlQueueStore
from repro.mq.queue import DEFAULT_MAX_DEPTH, MessageQueue
from repro.mq.transactions import MQTransaction
from repro.mq import reports as reports_mod
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    STAGE_ARRIVAL,
    STAGE_COMMIT,
    STAGE_DEAD_LETTER,
    STAGE_GET,
    STAGE_ROLLBACK,
    Tracer,
    cmid_of,
)
from repro.sim.clock import Clock

#: Name of the automatically defined dead-letter queue.
DEAD_LETTER_QUEUE = "SYSTEM.DEAD.LETTER.QUEUE"

#: Prefix of per-target transmission queues (owned by the network layer,
#: defined here so the manager can recognize transit queues without a
#: circular import; :mod:`repro.mq.network` re-exports it).
XMIT_PREFIX = "SYSTEM.XMIT."


class QueueManager:
    """A named queue manager hosting local queues.

    Args:
        name: Network-unique manager name (e.g. ``"QM.SENDER"``).
        clock: Time source shared with the rest of the simulation.
        journal: Optional durability log — a :class:`Journal` instance or
            a backend URL (``"memory:"`` / ``"file:<path>"`` /
            ``"sqlite:<path>"``, resolved via
            :func:`~repro.mq.persistence.journal_for`); without one the
            manager is volatile (all messages behave as non-persistent on
            restart).
        backout_threshold: When a message's backout count reaches this
            value, the next transactional get moves it to the dead-letter
            queue instead of delivering it.  ``None`` disables the check.
        tracer: Lifecycle tracer (see :mod:`repro.obs.trace`); the
            default no-op tracer keeps the hot path at one flag check.
            Components layered on this manager (receiver, evaluation,
            compensation) inherit it.
        metrics: Optional shared registry for counters and per-queue
            depth gauges; ``None`` (default) records nothing.
    """

    def __init__(
        self,
        name: str,
        clock: Clock,
        journal: "Optional[Journal | str]" = None,
        backout_threshold: Optional[int] = 5,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not name:
            raise MQError("queue manager name must be non-empty")
        if isinstance(journal, str):
            journal = journal_for(journal)
        self.name = name
        self.clock = clock
        #: SQL-backed live state (``sqlstore:`` URLs / :class:`SqlQueueStore`
        #: passed as the journal).  In store mode the database *is* the
        #: queue content, so there is nothing to journal: ``self.journal``
        #: stays ``None`` and queue operations run through
        #: :class:`SqlMessageQueue` wrappers.
        self.store: Optional[SqlQueueStore] = None
        if isinstance(journal, SqlQueueStore):
            self.store = journal
            journal = None
            if metrics is not None and self.store.metrics is None:
                self.store.metrics = metrics
        self.journal = journal
        self.backout_threshold = backout_threshold
        self.tracer = tracer
        self.metrics = metrics
        if journal is not None and metrics is not None and journal.metrics is None:
            # The journal reports flush/byte/batch-size metrics through the
            # owning manager's registry.
            journal.metrics = metrics
        self._compacting = False
        #: crash-point hook (:mod:`repro.chaos`): called after a
        #: :meth:`group_commit` block's journal group has been written,
        #: before auto-compaction.  ``None`` (default) is a no-op.
        self.on_post_group: Optional[Callable[[], None]] = None
        self._queues: Dict[str, MessageQueue] = {}
        #: local alias -> (remote manager, remote queue) — MQ "remote
        #: queue definitions"
        self._remote_definitions: Dict[str, tuple] = {}
        self._remote_put_handler: Optional[Callable[[str, str, Message], None]] = None
        self.define_queue(DEAD_LETTER_QUEUE, journal_definition=False)
        if self.store is not None:
            # Attaching to a shared store: pick up queues that already
            # exist there (defined by a previous incarnation or by
            # another manager sharing the store).
            for queue_name in self.store.queue_names():
                if queue_name not in self._queues:
                    self.define_queue(queue_name, journal_definition=False)

    # -- queue administration --------------------------------------------------

    def define_queue(
        self,
        queue_name: str,
        max_depth: int = DEFAULT_MAX_DEPTH,
        journal_definition: bool = True,
    ) -> MessageQueue:
        """Create a local queue; raises :class:`QueueExistsError` if taken."""
        if queue_name in self._queues or queue_name in self._remote_definitions:
            raise QueueExistsError(queue_name)
        # Bind the queue name so expiry can journal the removal from
        # the right source queue.
        on_expired = lambda message, _q=queue_name: self._route_expired(
            _q, message
        )
        if self.store is not None:
            queue: MessageQueue = SqlMessageQueue(
                self.store,
                queue_name,
                self.clock,
                max_depth=max_depth,
                on_expired=on_expired,
                tracer=self.tracer,
                metrics=self.metrics,
                owner=self.name,
            )
        else:
            queue = MessageQueue(
                queue_name,
                self.clock,
                max_depth=max_depth,
                on_expired=on_expired,
                tracer=self.tracer,
                metrics=self.metrics,
                owner=self.name,
            )
        self._queues[queue_name] = queue
        if self.journal is not None and journal_definition:
            self.journal.log_queue_defined(queue_name)
        return queue

    def ensure_queue(self, queue_name: str, max_depth: int = DEFAULT_MAX_DEPTH) -> MessageQueue:
        """Return the queue, defining it first if absent (idempotent).

        Remote queue definitions are not local queues; ensuring one is an
        error (resolve it with :meth:`resolve_remote` instead).
        """
        if queue_name in self._remote_definitions:
            raise MQError(
                f"{queue_name!r} is a remote queue definition, not a local queue"
            )
        if queue_name in self._queues:
            return self._queues[queue_name]
        return self.define_queue(queue_name, max_depth=max_depth)

    def delete_queue(self, queue_name: str) -> None:
        """Remove a queue and discard its content."""
        if queue_name == DEAD_LETTER_QUEUE:
            raise MQError("the dead-letter queue cannot be deleted")
        if queue_name not in self._queues:
            raise QueueNotFoundError(queue_name)
        del self._queues[queue_name]
        if self.store is not None:
            self.store.delete_queue(queue_name)
        if self.journal is not None:
            self.journal.log_queue_deleted(queue_name)

    def define_remote_queue(
        self, local_name: str, remote_manager: str, remote_queue: str
    ) -> None:
        """Define a local alias for a queue on another manager.

        Real MQSeries "remote queue definitions": applications put to the
        local name; the manager routes to the remote destination.  The
        alias shares the namespace with local queues.
        """
        if local_name in self._queues or local_name in self._remote_definitions:
            raise QueueExistsError(local_name)
        self._remote_definitions[local_name] = (remote_manager, remote_queue)

    def resolve_remote(self, local_name: str) -> "Optional[tuple]":
        """The (manager, queue) behind a remote definition, or ``None``."""
        return self._remote_definitions.get(local_name)

    def queue(self, queue_name: str) -> MessageQueue:
        """Look up a local queue; raises :class:`QueueNotFoundError`."""
        try:
            return self._queues[queue_name]
        except KeyError:
            queue = self._attach_store_queue(queue_name)
            if queue is not None:
                return queue
            raise QueueNotFoundError(queue_name) from None

    def _attach_store_queue(self, queue_name: str) -> Optional[MessageQueue]:
        """Late-attach a queue another manager defined on the shared store.

        Construction picks up the store's queues, but a manager sharing
        the store may define new ones afterwards; a lookup miss re-checks
        the store registry so those appear without re-attaching.
        """
        if self.store is None or queue_name in self._remote_definitions:
            return None
        if queue_name not in self.store.queue_names():
            return None
        return self.define_queue(queue_name, journal_definition=False)

    def has_queue(self, queue_name: str) -> bool:
        """True if a local queue with that name exists."""
        if queue_name in self._queues:
            return True
        return self._attach_store_queue(queue_name) is not None

    def queue_names(self) -> List[str]:
        """Names of all local queues (dead-letter queue included)."""
        return list(self._queues)

    # -- put ------------------------------------------------------------------------

    def put(
        self,
        queue_name: str,
        message: Message,
        transaction: Optional[MQTransaction] = None,
    ) -> Message:
        """Put ``message`` on a local queue, optionally under syncpoint.

        A put to a remote queue definition routes to its remote
        destination transparently.
        """
        remote = self._remote_definitions.get(queue_name)
        if remote is not None:
            self.put_remote(remote[0], remote[1], message, transaction=transaction)
            return message
        self.queue(queue_name)  # raises QueueNotFoundError early
        if transaction is not None:
            transaction.record_put(queue_name, message)
            return message
        return self._deliver_local(queue_name, message)

    def put_many(
        self,
        queue_name: str,
        messages: Iterable[Message],
        transaction: Optional[MQTransaction] = None,
    ) -> List[Message]:
        """Put a batch of messages on one queue with one journal flush.

        The whole batch is stored with a single sorted splice
        (:meth:`MessageQueue.put_many`) and its persistent members are
        journaled as one group-committed write (:meth:`Journal.log_put_many`),
        so a fan-out of N costs one flush instead of N.  Semantics per
        message are identical to :meth:`put` (reports, traces, metrics);
        batches to a remote queue definition route message-by-message
        and — like :meth:`put` on a remote definition — return the
        caller's messages unchanged (the stored copies, stamped with
        ``put_time_ms``, live on the remote manager).  The local path
        returns the stored copies.
        """
        messages = list(messages)
        remote = self._remote_definitions.get(queue_name)
        if remote is not None:
            for message in messages:
                self.put_remote(remote[0], remote[1], message, transaction=transaction)
            return messages
        self.queue(queue_name)  # raises QueueNotFoundError early
        if transaction is not None:
            for message in messages:
                transaction.record_put(queue_name, message)
            return messages
        queue = self.queue(queue_name)
        stored_batch = queue.put_many(messages, notify=False)
        if self.journal is not None:
            persistent = [
                (queue_name, stored)
                for stored in stored_batch
                if stored.is_persistent()
            ]
            if persistent:
                self.journal.log_put_many(persistent)
        # Listeners fire only after the puts are journaled: a push
        # consumer may journal-visibly get the message inside the
        # listener, and a get logged before its put replays the message
        # back to life on recovery.
        for stored in stored_batch:
            queue.notify_put(stored)
        for stored in stored_batch:
            self._after_deliver(queue_name, stored)
        if self.metrics is not None:
            self.metrics.incr(f"puts.{self.name}", len(stored_batch))
        self._maybe_autocompact()
        return stored_batch

    def group_commit(self) -> "ContextManager":
        """Batch every journal record written inside the block into one flush.

        Used by the conditional messaging service to make a whole
        conditional send (data messages parked on transmission queues,
        staged compensations, the sender-log entry) cost a single journal
        flush.  A volatile manager returns a no-op context.
        """
        if self.journal is not None:
            return self._group_commit_then_compact()
        if self.store is not None:
            return self._store_group_commit()
        return nullcontext(self)

    @contextmanager
    def _group_commit_then_compact(self) -> Iterator["QueueManager"]:
        with self.journal.batch():
            yield self
        # The hook only fires once the group is durable: a batch that
        # raises (including a simulated pre-flush crash) skips it.
        if self.on_post_group is not None:
            self.on_post_group()
        self._maybe_autocompact()

    @contextmanager
    def _store_group_commit(self) -> Iterator["QueueManager"]:
        with self.store.transaction():
            yield self
        if self.on_post_group is not None:
            self.on_post_group()

    def post_durable(self, callback: "Callable[[], None]") -> None:
        """Run ``callback`` once the current commit group is durable.

        Journal mode defers to :meth:`Journal.post_commit`, store mode to
        :meth:`SqlQueueStore.post_commit`; a volatile manager runs the
        callback immediately.  The network layer hangs transfer attempts
        off this hook so a transmission never races its own durability.
        """
        if self.journal is not None:
            self.journal.post_commit(callback)
        elif self.store is not None:
            self.store.post_commit(callback)
        else:
            callback()

    def _deliver_local(self, queue_name: str, message: Message) -> Message:
        """Store a committed put: journal, arrival report, trace.

        Shared by the non-transactional put path and transaction commit,
        so syncpoint puts get identical durability and COA behaviour.
        """
        queue = self.queue(queue_name)
        stored = queue.put(message, notify=False)
        if self.journal is not None and stored.is_persistent():
            self.journal.log_put(queue_name, stored)
        # Listeners fire only after the put is journaled: a push consumer
        # may journal-visibly get the message inside the listener, and a
        # get logged before its put replays the message on recovery.
        queue.notify_put(stored)
        self._after_deliver(queue_name, stored)
        if self.metrics is not None:
            self.metrics.incr(f"puts.{self.name}")
        self._maybe_autocompact()
        return stored

    def _after_deliver(self, queue_name: str, stored: Message) -> None:
        """Post-storage effects of one committed put: report and trace."""
        self._maybe_report_arrival(queue_name, stored)
        # Transit parking is traced as ``xmit`` by the network layer.
        if self.tracer.enabled and not queue_name.startswith(XMIT_PREFIX):
            self.tracer.emit(
                STAGE_ARRIVAL,
                at_ms=self.clock.now_ms(),
                cmid=cmid_of(stored),
                manager=self.name,
                queue=queue_name,
                message_id=stored.message_id,
                persistent=stored.is_persistent(),
            )

    def put_remote(
        self,
        manager_name: str,
        queue_name: str,
        message: Message,
        transaction: Optional[MQTransaction] = None,
    ) -> None:
        """Send ``message`` to a queue on another manager via the network.

        Requires this manager to be attached to a
        :class:`~repro.mq.network.MessageNetwork`.  If ``manager_name`` is
        this manager, the put is local.
        """
        if manager_name == self.name:
            self.put(queue_name, message, transaction=transaction)
            return
        if transaction is not None:
            transaction.record_remote_put(manager_name, queue_name, message)
            return
        if self._remote_put_handler is None:
            raise MQError(
                f"queue manager {self.name!r} is not attached to a network;"
                f" cannot reach {manager_name!r}"
            )
        self._remote_put_handler(manager_name, queue_name, message)

    # -- get ------------------------------------------------------------------------

    def get(
        self,
        queue_name: str,
        selector: Optional[Callable[[Message], bool]] = None,
        transaction: Optional[MQTransaction] = None,
    ) -> Message:
        """Get the next message from a local queue.

        Under syncpoint the message is locked (redelivered on rollback);
        otherwise it is removed immediately and journaled.  Poisoned
        messages (backout count at threshold) are diverted to the
        dead-letter queue transparently.

        Raises :class:`EmptyQueueError` when nothing matches.
        """
        queue = self.queue(queue_name)
        while True:
            if transaction is not None:
                message = queue.get(selector=selector, lock_owner=transaction.tx_id)
            else:
                message = queue.get(selector=selector)
            if (
                self.backout_threshold is not None
                and queue_name != DEAD_LETTER_QUEUE
                and message.backout_count >= self.backout_threshold
            ):
                # Poison message: do not deliver; move to the DLQ and retry.
                if transaction is not None:
                    queue.remove_locked(transaction.tx_id, message.message_id)
                self._dead_letter(message, reason="backout-threshold")
                if self.journal is not None and message.is_persistent():
                    self.journal.log_get(queue_name, message.message_id)
                continue
            break
        if transaction is not None:
            transaction.record_locked(queue_name)
        else:
            if self.journal is not None and message.is_persistent():
                self.journal.log_get(queue_name, message.message_id)
                self._maybe_autocompact()
            self._maybe_report_delivery(queue_name, message)
        if self.metrics is not None:
            self.metrics.incr(f"gets.{self.name}")
        if self.tracer.enabled:
            self.tracer.emit(
                STAGE_GET,
                at_ms=self.clock.now_ms(),
                cmid=cmid_of(message),
                manager=self.name,
                queue=queue_name,
                message_id=message.message_id,
                transactional=transaction is not None,
            )
        return message

    def get_wait(
        self,
        queue_name: str,
        selector: Optional[Callable[[Message], bool]] = None,
        transaction: Optional[MQTransaction] = None,
    ) -> Optional[Message]:
        """Like :meth:`get` but returns ``None`` instead of raising."""
        try:
            return self.get(queue_name, selector=selector, transaction=transaction)
        except EmptyQueueError:
            return None

    def get_by_id(self, queue_name: str, message_id: str) -> Message:
        """Destructively get a specific message by id, journaling the removal.

        System components (compensation release/discard, pair
        cancellation, DLQ administration) pull specific messages out of
        queues.  The queue-level :meth:`MessageQueue.get_by_id` bypasses
        durability, so recovery would resurrect the removed message; this
        wrapper journals the removal of persistent messages like any
        destructive get.  No delivery reports fire — these removals are
        administrative, not application consumption.
        """
        message = self.queue(queue_name).get_by_id(message_id)
        if self.journal is not None and message.is_persistent():
            self.journal.log_get(queue_name, message_id)
            self._maybe_autocompact()
        if self.metrics is not None:
            self.metrics.incr(f"gets.{self.name}")
        return message

    def browse(
        self,
        queue_name: str,
        selector: Optional[Callable[[Message], bool]] = None,
    ) -> Iterator[Message]:
        """Non-destructive scan of a local queue."""
        return self.queue(queue_name).browse(selector=selector)

    def depth(self, queue_name: str) -> int:
        """Visible depth of a local queue."""
        return self.queue(queue_name).depth()

    # -- transactions ------------------------------------------------------------

    def begin(self) -> MQTransaction:
        """Start a syncpoint transaction on this manager."""
        return MQTransaction(self)

    def apply_commit(self, transaction: MQTransaction) -> None:
        """Apply a transaction's effects (called by ``MQTransaction.commit``).

        All journal records of the unit of work (gets of consumed
        messages, puts becoming visible) are group-committed as one flush.
        """
        with self.group_commit():
            self._apply_commit_effects(transaction)

    def _apply_commit_effects(self, transaction: MQTransaction) -> None:
        # 1. Destroy transactionally read messages and journal their removal.
        for queue_name in transaction.locked_queues():
            queue = self.queue(queue_name)
            for message in queue.commit_locked(transaction.tx_id):
                if self.journal is not None and message.is_persistent():
                    self.journal.log_get(queue_name, message.message_id)
                # COD for syncpoint reads fires at commit (a rolled-back
                # read produces no report, like MQ under syncpoint).
                self._maybe_report_delivery(queue_name, message)
                if self.tracer.enabled:
                    self.tracer.emit(
                        STAGE_COMMIT,
                        at_ms=self.clock.now_ms(),
                        cmid=cmid_of(message),
                        manager=self.name,
                        queue=queue_name,
                        message_id=message.message_id,
                    )
        # 2. Publish buffered puts.  COA for syncpoint puts likewise fires
        # at commit — the arrival becomes visible only now.
        local_puts, remote_puts = transaction.drain_pending()
        for queue_name, message in local_puts:
            self._deliver_local(queue_name, message)
        for manager_name, queue_name, message in remote_puts:
            if self._remote_put_handler is None:
                raise MQError(
                    f"queue manager {self.name!r} is not attached to a network"
                )
            self._remote_put_handler(manager_name, queue_name, message)

    def apply_rollback(self, transaction: MQTransaction) -> None:
        """Undo a transaction's effects (called by ``MQTransaction.rollback``)."""
        for queue_name in transaction.locked_queues():
            rolled_back = self.queue(queue_name).rollback_locked(transaction.tx_id)
            if self.tracer.enabled:
                for message in rolled_back:
                    self.tracer.emit(
                        STAGE_ROLLBACK,
                        at_ms=self.clock.now_ms(),
                        cmid=cmid_of(message),
                        manager=self.name,
                        queue=queue_name,
                        message_id=message.message_id,
                        backout_count=message.backout_count,
                    )
        transaction.drain_pending()  # discard buffered puts

    # -- durability -----------------------------------------------------------------

    def checkpoint(self) -> None:
        """Compact the journal to a snapshot of current persistent state."""
        if self.store is not None:
            # Nothing to compact — the store has no replay log.  Fold the
            # WAL back into the main database file instead.
            self.store.sync()
            return
        if self.journal is None:
            return
        # The dead-letter queue is included: persistent poisoned/expired
        # messages must survive a crash for the DLQ handler to inspect.
        snapshot = {
            name: queue.snapshot() for name, queue in self._queues.items()
        }
        self.journal.checkpoint(snapshot)

    @classmethod
    def recover(
        cls,
        name: str,
        clock: Clock,
        journal: "Journal | str",
        backout_threshold: Optional[int] = 5,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "QueueManager":
        """Rebuild a queue manager from its journal after a crash.

        ``journal`` may be a :class:`Journal` or a backend URL (resolved
        via :func:`~repro.mq.persistence.journal_for` — the natural
        restart shape: point the URL at the surviving store).  Only
        persistent, committed messages reappear; in-flight transactions
        are presumed aborted (their gets were never journaled, so the
        messages are still live; their puts were never journaled, so they
        never existed).
        """
        if isinstance(journal, str):
            journal = journal_for(journal)
        if isinstance(journal, SqlQueueStore):
            # Store mode: recovery is opening the database.  No replay —
            # the rows are the state.  Presumed abort releases only THIS
            # manager's locks (other managers sharing the store keep
            # theirs) without bumping backout counts, exactly as journal
            # recovery resurfaces locked messages with pre-crash counts.
            # Unlike journal recovery, non-persistent messages survive:
            # the store outlived the manager, so nothing was lost.
            manager = cls(
                name,
                clock,
                journal=journal,
                backout_threshold=backout_threshold,
                tracer=tracer,
                metrics=metrics,
            )
            journal.release_locks(name)
            return manager
        manager = cls(
            name,
            clock,
            journal=None,
            backout_threshold=backout_threshold,
            tracer=tracer,
            metrics=metrics,
        )
        queue_names, live_messages = journal.recover()
        for queue_name in queue_names:
            if not manager.has_queue(queue_name):
                manager.define_queue(queue_name, journal_definition=False)
        for queue_name, messages in live_messages.items():
            if not manager.has_queue(queue_name):
                manager.define_queue(queue_name, journal_definition=False)
            manager.queue(queue_name).restore(messages)
        # Re-attach the journal only after restore so recovery itself is
        # not re-journaled; then checkpoint to compact the log.
        manager.journal = journal
        if metrics is not None and journal.metrics is None:
            journal.metrics = metrics
        manager.checkpoint()
        return manager

    # -- internals --------------------------------------------------------------------

    def _maybe_autocompact(self) -> None:
        """Checkpoint when the journal outgrew its compaction threshold.

        Called after journaled mutations; re-entrancy guarded because the
        checkpoint itself runs through journal machinery.  Compaction is
        skipped inside a group-commit batch (``needs_compaction`` is false
        while batching) so a snapshot never interleaves with a half-built
        commit group.
        """
        journal = self.journal
        if journal is None or self._compacting or not journal.needs_compaction():
            return
        self._compacting = True
        try:
            self.checkpoint()
        finally:
            self._compacting = False

    def attach_network(
        self, remote_put_handler: Callable[[str, str, Message], None]
    ) -> None:
        """Install the network layer's remote-put handler (network use only)."""
        self._remote_put_handler = remote_put_handler

    # -- report options (see repro.mq.reports) ----------------------------------

    def _maybe_report_arrival(self, queue_name: str, message: Message) -> None:
        if queue_name.startswith(XMIT_PREFIX):
            return  # arrival means the *destination* queue, not transit
        if reports_mod.wants_coa(message):
            self._send_report(reports_mod.KIND_COA, queue_name, message)

    def _maybe_report_delivery(self, queue_name: str, message: Message) -> None:
        if reports_mod.wants_cod(message):
            self._send_report(reports_mod.KIND_COD, queue_name, message)

    def _send_report(self, kind: str, queue_name: str, message: Message) -> None:
        if message.reply_to_manager is None or message.reply_to_queue is None:
            return  # nowhere to send the report
        report = reports_mod.build_report(
            kind, message, queue_name, self.name, self.clock.now_ms()
        )
        if message.reply_to_manager == self.name:
            self.ensure_queue(message.reply_to_queue)
            self.put(message.reply_to_queue, report)
        elif self._remote_put_handler is not None:
            self.put_remote(
                message.reply_to_manager, message.reply_to_queue, report
            )

    def _route_expired(self, queue_name: str, message: Message) -> None:
        # The sweep removed the message from its queue; journal that
        # removal, or recovery would resurrect the message on the source
        # queue *and* restore the dead-lettered copy.
        if self.journal is not None and message.is_persistent():
            self.journal.log_get(queue_name, message.message_id)
        self._dead_letter(message, reason="expired")

    def _dead_letter(self, message: Message, reason: str) -> None:
        dlq = self._queues[DEAD_LETTER_QUEUE]
        # Strip the expiry: a dead-lettered message must rest in the DLQ
        # for inspection, not expire out of it (which would also recurse
        # through the expiry handler).
        dead = message.with_properties(DLQ_REASON=reason).copy(expiry_ms=None)
        stored = dlq.put(dead)
        # Dead-lettering is a put like any other: persistent dead messages
        # are journaled so they survive crash recovery (the put bypasses
        # ``self.put`` because a DLQ arrival must not fire COA reports).
        if self.journal is not None and stored.is_persistent():
            self.journal.log_put(DEAD_LETTER_QUEUE, stored)
        if self.metrics is not None:
            self.metrics.incr(f"dead_letters.{self.name}")
        if self.tracer.enabled:
            self.tracer.emit(
                STAGE_DEAD_LETTER,
                at_ms=self.clock.now_ms(),
                cmid=cmid_of(stored),
                manager=self.name,
                queue=DEAD_LETTER_QUEUE,
                message_id=stored.message_id,
                reason=reason,
            )

    def __repr__(self) -> str:
        return f"QueueManager({self.name!r}, queues={len(self._queues)})"
