"""Message-oriented middleware substrate (a from-scratch mini MQSeries/JMS).

The conditional messaging layer (``repro.core``) is, per the paper, "a
simple indirection to standard messaging middleware".  This package *is*
that standard middleware: queue managers hosting persistent priority
queues, syncpoint (transactional) get/put, JMS-style sessions, message
selectors, dead-letter handling, and store-and-forward channels connecting
queue managers across a simulated network.

Public surface:

* :class:`~repro.mq.message.Message` and
  :class:`~repro.mq.message.MessageBuilder` — immutable-ish message records
  with headers, typed properties, priority, persistence, and expiry.
* :class:`~repro.mq.manager.QueueManager` — names and hosts queues, owns a
  journal for persistent messages, exposes put/get/browse.
* :class:`~repro.mq.transactions.MQTransaction` — syncpoint semantics:
  transactional gets return messages to the queue on rollback (with a
  backout count), transactional puts become visible only at commit.
* :class:`~repro.mq.network.MessageNetwork` — connects queue managers with
  channels that have latency/jitter/loss; remote puts are store-and-forward
  via transmission queues.
* :mod:`repro.mq.session` — a small JMS-flavoured Connection/Session/
  Producer/Consumer API over the above.
"""

from repro.mq.message import Message, MessageBuilder, DeliveryMode
from repro.mq.queue import MessageQueue, QueueStats
from repro.mq.manager import QueueManager
from repro.mq.transactions import MQTransaction
from repro.mq.network import MessageNetwork, Channel
from repro.mq.selectors import (
    compile_selector,
    compile_selector_sql,
    Selector,
    SelectorSql,
)
from repro.mq.sqlstore import SqlQueueStore, SqlMessageQueue
from repro.mq.session import Connection, Session, MessageProducer, MessageConsumer

__all__ = [
    "Message",
    "MessageBuilder",
    "DeliveryMode",
    "MessageQueue",
    "QueueStats",
    "QueueManager",
    "MQTransaction",
    "MessageNetwork",
    "Channel",
    "compile_selector",
    "compile_selector_sql",
    "Selector",
    "SelectorSql",
    "SqlQueueStore",
    "SqlMessageQueue",
    "Connection",
    "Session",
    "MessageProducer",
    "MessageConsumer",
]
