"""Network of queue managers: store-and-forward channels with latency/loss.

MQSeries connects queue managers with *channels*: a remote put lands on a
local transmission queue, and a channel agent forwards it to the target
manager.  Delivery is reliable (the message stays on the transmission
queue until the transfer succeeds) but takes time and may need retries.

This module reproduces that model over the simulation scheduler:

* :meth:`MessageNetwork.connect` defines a unidirectional channel with
  configurable latency, jitter, and loss rate (loss models a failed
  transfer attempt, which is retried — messages are never silently
  dropped, matching "reliable messaging");
* remote puts go through a per-manager handler installed with
  :meth:`QueueManager.attach_network`; the message is wrapped with a
  routing envelope and parked on ``SYSTEM.XMIT.<target>``;
* a scheduled event per message performs the transfer after the sampled
  delay, auto-creating the destination queue if the target manager allows
  it (otherwise the message dead-letters on the target).

Without a scheduler the network delivers synchronously (zero latency),
which the unit tests of higher layers use for brevity.
"""

from __future__ import annotations

import abc
import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ChannelError, MQError, QueueManagerNotFoundError
from repro.mq.manager import DEAD_LETTER_QUEUE, XMIT_PREFIX, QueueManager
from repro.mq.message import Message
from repro.net.rtt import RttEstimator
from repro.obs.trace import NULL_TRACER, STAGE_XMIT, Tracer, cmid_of
from repro.sim.scheduler import EventScheduler

__all__ = [
    "Transport",
    "MessageNetwork",
    "Channel",
    "ChannelStats",
    # Re-exported for back-compat; the constant lives in repro.mq.manager.
    "XMIT_PREFIX",
    "PROP_ROUTE_TARGET_MANAGER",
    "PROP_ROUTE_TARGET_QUEUE",
]

#: Routing-envelope property names.
PROP_ROUTE_TARGET_MANAGER = "SYS_ROUTE_TO_QM"
PROP_ROUTE_TARGET_QUEUE = "SYS_ROUTE_TO_Q"


class Transport(abc.ABC):
    """Abstract store-and-forward transport between queue managers.

    A transport owns the path a remote put takes from one manager toward
    another.  Two implementations exist:

    * :class:`MessageNetwork` — the in-process implementation: every
      manager lives in this interpreter and channels are simulated
      (latency/jitter/loss over :class:`EventScheduler`).  The chaos and
      sim layers drive this one.
    * :class:`repro.net.wire.WireHost` — the multi-process
      implementation: the local manager's channels are real TCP or
      unix-domain socket connections to peer host processes, with the
      sans-IO protocol engine providing sequencing, retransmission and
      credit flow control.

    Both park outbound messages on durable ``SYSTEM.XMIT.<peer>``
    transmission queues before anything crosses the channel, so a crash
    on either side leaves an in-doubt journaled copy rather than a lost
    or duplicated message.
    """

    @abc.abstractmethod
    def send(
        self, source: str, target: str, queue_name: str, message: Message
    ) -> None:
        """Route ``message`` from ``source`` to ``queue_name`` on ``target``."""

    def attach(self, manager: QueueManager) -> QueueManager:
        """Install this transport as ``manager``'s remote-put handler."""

        def handler(target: str, queue_name: str, message: Message) -> None:
            self.send(manager.name, target, queue_name, message)

        manager.attach_network(handler)
        return manager


@dataclass
class ChannelStats:
    """Per-channel transfer counters."""

    sent: int = 0
    delivered: int = 0
    failed_attempts: int = 0
    dead_lettered: int = 0
    #: redeliveries suppressed by the exactly-once resolution check (a
    #: crashed source resurrecting an already-transferred parked message,
    #: or an injected duplicate transfer)
    duplicates_suppressed: int = 0


@dataclass
class Channel:
    """A unidirectional transfer path between two queue managers.

    Attributes:
        latency_ms: Base one-way transfer time.
        jitter_ms: Uniform extra delay in ``[0, jitter_ms]`` per attempt.
        loss_rate: Probability that a transfer attempt fails and is
            retried after the channel's current retransmission timeout.
        retry_interval_ms: *Initial* retransmission timeout.  Subsequent
            retries are timed by the channel's RFC 6298 estimator
            (:attr:`rtt`): successful transfer times feed the smoothed
            RTT, each failed attempt doubles the timeout, and — Karn's
            rule — retried or re-driven transfers never produce samples.
        stopped: A stopped channel parks messages on the transmission
            queue until restarted (models a network partition).
    """

    source: str
    target: str
    latency_ms: int = 0
    jitter_ms: int = 0
    loss_rate: float = 0.0
    retry_interval_ms: int = 100
    stopped: bool = False
    stats: ChannelStats = field(default_factory=ChannelStats)
    rtt: Optional[RttEstimator] = None
    #: message_id -> [first_attempt_ms, ambiguous] for in-flight
    #: transfers; ``ambiguous`` marks retried/re-driven messages whose
    #: completion must not be sampled (Karn's rule).
    inflight: Dict[str, List] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.latency_ms < 0 or self.jitter_ms < 0:
            raise ChannelError("latency/jitter must be >= 0")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ChannelError("loss_rate must be in [0, 1)")
        if self.retry_interval_ms <= 0:
            raise ChannelError("retry_interval_ms must be positive")
        if self.rtt is None:
            self.rtt = RttEstimator(initial_rto=float(self.retry_interval_ms))


class MessageNetwork(Transport):
    """Connects queue managers; resolves remote puts via channels.

    Args:
        scheduler: Simulation scheduler.  ``None`` means synchronous
            zero-latency delivery (latency settings are then rejected).
        seed: Seed for the jitter/loss random source (deterministic runs).
        auto_create_queues: When True (default), a transfer to a queue the
            target manager has not defined creates it; when False such
            messages go to the target's dead-letter queue.
        tracer: Lifecycle tracer stamping ``xmit`` events when messages
            park on transmission queues (no-op by default).
        exactly_once: When True (default), final delivery records every
            transferred ``(target, queue, message_id)`` and suppresses
            redeliveries — the simulation analogue of MQ channel
            sequence-number resynchronisation.  A crashed source manager
            resurrects already-transferred parked messages from its
            journal (the transfer-time removal is deliberately not
            journaled: the parked copy is the channel's in-doubt record);
            re-driving them must not deliver twice.  Disable only for
            ablation runs that want to observe the duplicates.
    """

    def __init__(
        self,
        scheduler: Optional[EventScheduler] = None,
        seed: int = 0,
        auto_create_queues: bool = True,
        tracer: Tracer = NULL_TRACER,
        exactly_once: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.auto_create_queues = auto_create_queues
        self.tracer = tracer
        self.exactly_once = exactly_once
        #: True when the last :meth:`quiesce` exhausted its event budget
        #: with work still pending (see the ``strict`` parameter).
        self.truncated = False
        self._rng = random.Random(seed)
        self._managers: Dict[str, QueueManager] = {}
        self._channels: Dict[Tuple[str, str], Channel] = {}
        #: (source, final target) -> next hop, for multi-hop forwarding
        self._routes: Dict[Tuple[str, str], str] = {}
        #: (target manager, queue, message_id) of every completed final
        #: delivery — the exactly-once resolution record
        self._delivered: Set[Tuple[str, str, str]] = set()

    # -- topology ---------------------------------------------------------------

    def add_manager(self, manager: QueueManager) -> QueueManager:
        """Register a queue manager and install its remote-put handler."""
        if manager.name in self._managers:
            raise MQError(f"manager {manager.name!r} already on the network")
        self._managers[manager.name] = manager
        self._install_handler(manager)
        return manager

    def reattach_manager(self, manager: QueueManager) -> QueueManager:
        """Replace a registered manager with its post-crash incarnation.

        Channels, routes and delivery records are untouched; only the
        manager object (rebuilt by :meth:`QueueManager.recover`) is
        swapped and re-handled.  Call :meth:`redrive` afterwards to
        re-attempt any parked transmission-queue messages the journal
        resurrected.
        """
        if manager.name not in self._managers:
            raise QueueManagerNotFoundError(manager.name)
        self._managers[manager.name] = manager
        self._install_handler(manager)
        return manager

    def _install_handler(self, manager: QueueManager) -> None:
        self.attach(manager)

    def manager(self, name: str) -> QueueManager:
        """Look up a registered manager by name."""
        try:
            return self._managers[name]
        except KeyError:
            raise QueueManagerNotFoundError(name) from None

    def manager_names(self) -> List[str]:
        """Names of all registered managers."""
        return list(self._managers)

    def connect(
        self,
        source: str,
        target: str,
        latency_ms: int = 0,
        jitter_ms: int = 0,
        loss_rate: float = 0.0,
        retry_interval_ms: int = 100,
        bidirectional: bool = True,
    ) -> None:
        """Define a channel (by default, one in each direction)."""
        if source not in self._managers:
            raise QueueManagerNotFoundError(source)
        if target not in self._managers:
            raise QueueManagerNotFoundError(target)
        if self.scheduler is None and (latency_ms or jitter_ms or loss_rate):
            raise ChannelError(
                "latency/jitter/loss require a scheduler-backed network"
            )
        pairs = [(source, target)]
        if bidirectional:
            pairs.append((target, source))
        for src, dst in pairs:
            channel = Channel(
                source=src,
                target=dst,
                latency_ms=latency_ms,
                jitter_ms=jitter_ms,
                loss_rate=loss_rate,
                retry_interval_ms=retry_interval_ms,
            )
            self._channels[(src, dst)] = channel
            # Store-and-forward: traffic parked on the source's
            # transmission queue (e.g. from before a restart or while no
            # channel was defined) flows as soon as the channel exists.
            self._drain_xmit(channel)

    def set_route(self, source: str, final_target: str, next_hop: str) -> None:
        """Declare that ``source`` reaches ``final_target`` via ``next_hop``.

        ``source`` must have a channel (or a further route) to
        ``next_hop``; the intermediate manager forwards using its own
        channels/routes, so chains of any length compose hop by hop —
        MQSeries-style multi-hop store-and-forward.
        """
        if source not in self._managers:
            raise QueueManagerNotFoundError(source)
        if final_target not in self._managers:
            raise QueueManagerNotFoundError(final_target)
        if next_hop not in self._managers:
            raise QueueManagerNotFoundError(next_hop)
        if next_hop == source:
            raise ChannelError("a route's next hop cannot be its source")
        self._routes[(source, final_target)] = next_hop

    def channel(self, source: str, target: str) -> Channel:
        """Look up the channel from ``source`` to ``target``."""
        try:
            return self._channels[(source, target)]
        except KeyError:
            raise ChannelError(f"no channel {source!r} -> {target!r}") from None

    def _hop_channel(self, source: str, final_target: str) -> Channel:
        """The channel for the first hop toward ``final_target``."""
        direct = self._channels.get((source, final_target))
        if direct is not None:
            return direct
        next_hop = self._routes.get((source, final_target))
        if next_hop is not None:
            return self.channel(source, next_hop)
        raise ChannelError(
            f"no channel or route from {source!r} to {final_target!r}"
        )

    def stop_channel(self, source: str, target: str) -> None:
        """Partition: park all traffic on the source's transmission queue."""
        self.channel(source, target).stopped = True

    def start_channel(self, source: str, target: str) -> None:
        """Heal a partition and drain the parked transmission queue."""
        chan = self.channel(source, target)
        if not chan.stopped:
            return
        chan.stopped = False
        self._drain_xmit(chan)

    def partition(self, a: str, b: str) -> None:
        """Stop both channel directions between ``a`` and ``b`` atomically.

        Both channels are looked up before either is touched, so a
        missing direction raises :class:`ChannelError` without leaving a
        half-partitioned pair.
        """
        forward = self.channel(a, b)
        backward = self.channel(b, a)
        forward.stopped = True
        backward.stopped = True

    def heal(self, a: str, b: str) -> None:
        """Restart both channel directions between ``a`` and ``b``.

        Like :meth:`partition`, both channels are resolved before either
        side is restarted; each direction then drains its parked
        transmission queue.
        """
        self.channel(a, b)
        self.channel(b, a)
        self.start_channel(a, b)
        self.start_channel(b, a)

    def redrive(self) -> None:
        """Re-attempt parked transmission traffic on every running channel.

        After a crash, :meth:`QueueManager.recover` resurrects the
        journaled transmission queues but no transfer events exist for
        them (the old events either fired against the dead manager or
        no-op on the empty recovered queue).  Re-driving schedules a
        fresh attempt per parked message; already-delivered messages are
        resolved without redelivery by the exactly-once check.
        """
        for chan in self._channels.values():
            if not chan.stopped:
                self._drain_xmit(chan)

    # -- transfer --------------------------------------------------------------------

    def send(
        self, source: str, target: str, queue_name: str, message: Message
    ) -> None:
        """Route ``message`` from ``source`` to ``queue_name`` on ``target``.

        The message is enveloped and parked on the source's transmission
        queue; actual delivery happens after the channel delay (or
        immediately in synchronous mode).
        """
        if source == target:
            self.manager(source).put(queue_name, message)
            return
        chan = self._hop_channel(source, target)
        src_manager = self.manager(source)
        enveloped = message.with_properties(
            **{
                PROP_ROUTE_TARGET_MANAGER: target,
                PROP_ROUTE_TARGET_QUEUE: queue_name,
            }
        ).copy(source_manager=message.source_manager or source)
        # Transmission queues are per next hop (the channel's endpoint),
        # not per final target: multi-hop traffic shares the hop's queue.
        xmit_name = XMIT_PREFIX + chan.target
        src_manager.ensure_queue(xmit_name)
        src_manager.put(xmit_name, enveloped)
        chan.stats.sent += 1
        if self.tracer.enabled:
            self.tracer.emit(
                STAGE_XMIT,
                at_ms=src_manager.clock.now_ms(),
                cmid=cmid_of(enveloped),
                manager=source,
                queue=xmit_name,
                message_id=enveloped.message_id,
                target_manager=target,
                target_queue=queue_name,
            )
        if self.scheduler is None:
            # Synchronous delivery must not outrun the sender's
            # durability: inside a group-commit batch the compensation /
            # sender-log / parking records are still buffered, and
            # transferring now would flush the data message into the
            # TARGET manager's journal first — a sender crash then leaves
            # a delivered original that recovery cannot compensate.
            # post_commit defers the transfer until the source journal's
            # commit group is written (immediately when no batch is
            # open).  Scheduler-backed delivery is naturally deferred
            # past the batch because events run after the sending call
            # returns.
            message_id = enveloped.message_id
            src_manager.post_durable(
                lambda: self._attempt_transfer(chan, message_id)
            )
        elif not chan.stopped:
            # Scheduler-backed delivery is deferred past an open batch
            # because events run after the sending call returns — but an
            # adaptive flush timer can hold the sender's records *across*
            # events, so the latency countdown must not start until the
            # parking record's commit group is written.  post_commit is
            # immediate when nothing is held, keeping the plain path
            # unchanged.
            message_id = enveloped.message_id
            src_manager.post_durable(
                lambda: self._schedule_attempt(chan, message_id)
            )

    def _schedule_attempt(self, chan: Channel, message_id: str) -> None:
        assert self.scheduler is not None
        now = self.scheduler.clock.now_ms()
        entry = chan.inflight.get(message_id)
        if entry is None:
            chan.inflight[message_id] = [now, False]
        else:
            # Re-driven (partition heal / crash recovery): a fresh wire
            # attempt for a message that may also have an older attempt
            # outstanding — its completion time is ambiguous (Karn).
            entry[1] = True
        delay = chan.latency_ms
        if chan.jitter_ms:
            delay += self._rng.randint(0, chan.jitter_ms)
        self.scheduler.call_later(
            delay,
            lambda: self._attempt_transfer(chan, message_id),
            label=f"xfer {chan.source}->{chan.target}",
        )

    def _attempt_transfer(self, chan: Channel, message_id: str) -> None:
        if chan.stopped:
            return  # message stays parked; start_channel will re-drive it
        if chan.loss_rate and self._rng.random() < chan.loss_rate:
            chan.stats.failed_attempts += 1
            if self.scheduler is None:
                raise ChannelError("loss requires a scheduler")  # pragma: no cover
            entry = chan.inflight.get(message_id)
            if entry is not None:
                entry[1] = True  # Karn: the eventual success is ambiguous
            # RFC 6298: wait the current timeout, then double it for the
            # next expiry.  A later successful sample recomputes the RTO
            # from the smoothed estimate, collapsing the backoff.
            retry_after = chan.rtt.rto
            chan.rtt.backoff()
            self.scheduler.call_later(
                retry_after,
                lambda: self._attempt_transfer(chan, message_id),
                label=f"retry {chan.source}->{chan.target}",
            )
            return
        src_manager = self.manager(chan.source)
        xmit_name = XMIT_PREFIX + chan.target
        if not src_manager.has_queue(xmit_name):
            chan.inflight.pop(message_id, None)
            return
        enveloped = src_manager.queue(xmit_name).find_by_id(message_id)
        if enveloped is None:
            chan.inflight.pop(message_id, None)
            return  # already transferred (e.g. drained after a partition healed)
        # Deliver first, resolve the parked copy after: a target crash
        # mid-delivery then leaves the message parked for a later
        # re-attempt instead of losing it.  The resolution is a
        # queue-level removal on purpose — the journaled parked copy is
        # the channel's in-doubt record, and a crashed source re-drives
        # it through the exactly-once check instead of losing or
        # duplicating the message.
        self._deliver(chan, enveloped)
        try:
            src_manager.queue(xmit_name).get_by_id(message_id)
        except MQError:
            pass  # raced with another resolution of the same attempt
        entry = chan.inflight.pop(message_id, None)
        if entry is not None and not entry[1] and self.scheduler is not None:
            # A clean first-attempt transfer: feed its elapsed time to the
            # channel's RFC 6298 estimator so retry timeouts track the
            # channel's real latency instead of a fixed interval.
            chan.rtt.observe(
                max(0.0, self.scheduler.clock.now_ms() - entry[0])
            )

    def _deliver(self, chan: Channel, enveloped: Message) -> None:
        final_target = str(enveloped.get_property(PROP_ROUTE_TARGET_MANAGER))
        queue_name = str(enveloped.get_property(PROP_ROUTE_TARGET_QUEUE))
        if final_target != chan.target:
            # Intermediate hop: forward toward the final target using the
            # hop manager's own channels/routes (multi-hop
            # store-and-forward).  Strip this hop's envelope; send()
            # re-envelopes for the next hop.
            stripped = enveloped.copy()
            # Subset of an already-validated dict; skip re-validation.
            stripped.properties = {
                k: v
                for k, v in enveloped.properties.items()
                if k not in (PROP_ROUTE_TARGET_MANAGER, PROP_ROUTE_TARGET_QUEUE)
            }
            chan.stats.delivered += 1
            self.send(chan.target, final_target, queue_name, stripped)
            return
        target_manager = self.manager(chan.target)
        if self.exactly_once:
            key = (chan.target, queue_name, enveloped.message_id)
            # Suppress a redelivery when the transfer already completed:
            # the resolution record covers the common case, the
            # queue-presence scan the narrow one where a target crash
            # after the durable delivery flush lost the record.
            if key in self._delivered or (
                target_manager.has_queue(queue_name)
                and any(
                    stored.message_id == enveloped.message_id
                    for stored in target_manager.queue(queue_name).snapshot()
                )
            ):
                self._delivered.add(key)
                chan.stats.duplicates_suppressed += 1
                return
        # Strip the routing envelope before final delivery.  The stripped
        # dict is a subset of an already-validated one; skip re-validation.
        final = enveloped.copy()
        final.properties = {
            k: v
            for k, v in enveloped.properties.items()
            if k not in (PROP_ROUTE_TARGET_MANAGER, PROP_ROUTE_TARGET_QUEUE)
        }
        if not target_manager.has_queue(queue_name):
            if self.auto_create_queues:
                target_manager.define_queue(queue_name)
            else:
                target_manager.put(
                    DEAD_LETTER_QUEUE,
                    final.with_properties(DLQ_REASON="unknown-queue"),
                )
                chan.stats.dead_lettered += 1
                if self.exactly_once:
                    self._delivered.add(
                        (chan.target, queue_name, enveloped.message_id)
                    )
                return
        target_manager.put(queue_name, final)
        if self.exactly_once:
            self._delivered.add((chan.target, queue_name, enveloped.message_id))
        chan.stats.delivered += 1

    def _drain_xmit(self, chan: Channel) -> None:
        src_manager = self.manager(chan.source)
        xmit_name = XMIT_PREFIX + chan.target
        if not src_manager.has_queue(xmit_name):
            return
        parked = [m.message_id for m in src_manager.browse(xmit_name)]
        for message_id in parked:
            if self.scheduler is None:
                self._attempt_transfer(chan, message_id)
            else:
                self._schedule_attempt(chan, message_id)

    # -- convenience ------------------------------------------------------------------

    def quiesce(self, max_events: int = 1_000_000, strict: bool = True) -> int:
        """Run the scheduler until the network is idle (simulation only).

        Returns the number of events fired.  If the event budget runs out
        with work still pending the network is NOT quiescent: ``strict``
        (default) raises :class:`ChannelError`; otherwise a warning is
        issued and :attr:`truncated` is set so callers can tell a drained
        network from a truncated drain.
        """
        self.truncated = False
        if self.scheduler is None:
            return 0
        fired = 0
        while fired < max_events:
            if not self.scheduler.step():
                return fired
            fired += 1
        if self.scheduler.next_due_ms() is None:
            return fired
        self.truncated = True
        detail = (
            f"network did not quiesce within {max_events} events;"
            f" {self.scheduler.pending()} still pending"
        )
        if strict:
            raise ChannelError(detail)
        warnings.warn(detail, RuntimeWarning, stacklevel=2)
        return fired
