"""A single message queue: priority ordering, expiry, browse, locking.

Ordering follows JMS/MQSeries: higher priority first, FIFO within equal
priority.  Expired messages are swept to the owner's dead-letter handling
on access rather than eagerly, matching how real queue managers discover
expiry lazily.

Transactional (syncpoint) gets do not remove a message outright; they
**lock** it under the transaction id.  Commit destroys locked messages,
rollback unlocks them in place with an incremented backout count, so the
message is redelivered in its original order — the behaviour the paper's
receiver-side relies on ("the message is put back to the queue by the
messaging middleware", section 2.4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from repro.errors import EmptyQueueError, MQError, QueueFullError
from repro.mq.message import Message
from repro.obs.trace import NULL_TRACER, STAGE_EXPIRED, Tracer, cmid_of
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import Clock

#: Default maximum queue depth; generous but finite, as in real queue managers.
DEFAULT_MAX_DEPTH = 100_000


@dataclass
class QueueStats:
    """Counters a queue maintains over its lifetime."""

    puts: int = 0
    gets: int = 0
    browses: int = 0
    expired: int = 0
    backouts: int = 0
    high_water_depth: int = 0


@dataclass(order=True)
class _Entry:
    """Heap-free ordered entry: (negated priority, arrival seq) sorts first."""

    sort_key: tuple
    message: Message = field(compare=False)
    locked_by: Optional[str] = field(default=None, compare=False)


class MessageQueue:
    """A named queue owned by a queue manager.

    The queue keeps a single ordered list; gets scan from the front for the
    first visible (unlocked, unexpired, selector-matching) entry.  Scans
    are linear, which is fine at the depths the benchmarks use and keeps
    lock/unlock semantics obvious.
    """

    def __init__(
        self,
        name: str,
        clock: Clock,
        max_depth: int = DEFAULT_MAX_DEPTH,
        on_expired: Optional[Callable[[Message], None]] = None,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
        owner: str = "",
    ) -> None:
        if not name:
            raise MQError("queue name must be non-empty")
        if max_depth <= 0:
            raise MQError("max_depth must be positive")
        self.name = name
        self._clock = clock
        self._max_depth = max_depth
        self._entries: List[_Entry] = []
        self._seq = itertools.count(1)
        #: Count of visible (unlocked) entries, maintained on every
        #: put/get/lock/unlock so :meth:`depth` never scans the list.
        self._visible = 0
        #: Earliest expiry among **unlocked** stored messages, or ``None``
        #: when nothing visible can expire.  The per-access expiry sweep
        #: skips scanning until the clock passes this watermark (the
        #: common case on hot paths).  Locked entries are excluded — the
        #: sweep cannot remove them, so keeping a locked-but-expired
        #: message in the watermark would force a full no-op scan on every
        #: access for as long as the lock is held.  Removal paths recompute
        #: the minimum whenever the departing message could be the one
        #: holding the watermark down.
        self._next_expiry_ms: Optional[int] = None
        self._on_expired = on_expired
        self._put_listeners: List[Callable[[Message], None]] = []
        self.stats = QueueStats()
        self.tracer = tracer
        self.metrics = metrics
        #: owning manager name, qualifying this queue's metric names
        self.owner = owner
        self._depth_gauge = f"depth.{owner}.{name}" if owner else f"depth.{name}"

    def subscribe(self, listener: Callable[[Message], None]) -> None:
        """Register a callback fired after every successful put.

        Listeners power push-style consumers (the conditional messaging
        evaluation manager subscribes to the acknowledgment queue).  They
        run synchronously at put time and must not raise.
        """
        self._put_listeners.append(listener)

    # -- depth and inspection ------------------------------------------------

    def depth(self) -> int:
        """Visible depth: messages neither locked nor expired.

        Like get/browse, taking the depth sweeps expired messages to the
        dead-letter handler (lazy expiry on any queue access).  The count
        itself is maintained incrementally, so depth checks on hot paths
        cost one watermark comparison, not a scan.
        """
        self._sweep_expired()
        return self._visible

    def total_depth(self) -> int:
        """All stored messages, including ones locked under transactions."""
        return len(self._entries)

    @property
    def max_depth(self) -> int:
        """Configured depth limit of this queue."""
        return self._max_depth

    def capacity_remaining(self) -> int:
        """Messages that can still be stored before ``max_depth``.

        Counts locked entries (they occupy slots) after sweeping expired
        ones.  The broker pre-checks fan-out batches against this so a
        multi-queue publish is all-or-nothing on capacity.
        """
        self._sweep_expired()
        return self._max_depth - len(self._entries)

    def is_empty(self) -> bool:
        """True if no visible message is available."""
        return self.depth() == 0

    # -- put -------------------------------------------------------------------

    def put(self, message: Message, notify: bool = True) -> Message:
        """Append ``message`` in priority order; returns the stored message.

        The stored message is stamped with ``put_time_ms``.  Raises
        :class:`QueueFullError` when the queue is at ``max_depth``.

        ``notify=False`` skips the put listeners; the caller must fire
        :meth:`notify_put` itself.  The queue manager does this to
        notify only *after* journaling the put: a push consumer may
        destructively (and journal-visibly) get the message inside the
        listener, and a journal holding that get before the put would
        replay the message back to life after a crash.
        """
        self._sweep_expired()
        if len(self._entries) >= self._max_depth:
            raise QueueFullError(self.name, self._max_depth)
        stored = message.copy(put_time_ms=self._clock.now_ms())
        entry = _Entry(
            sort_key=(-stored.priority, next(self._seq)), message=stored
        )
        # Insert maintaining sorted order.  Entries arrive mostly in order
        # (same priority), so scan from the tail.
        index = len(self._entries)
        while index > 0 and self._entries[index - 1].sort_key > entry.sort_key:
            index -= 1
        self._entries.insert(index, entry)
        self._visible += 1
        self._expiry_added(stored)
        self.stats.puts += 1
        self.stats.high_water_depth = max(
            self.stats.high_water_depth, len(self._entries)
        )
        self._note_depth()
        if notify:
            self.notify_put(stored)
        return stored

    def notify_put(self, stored: Message) -> None:
        """Fire the put listeners for an already-stored message."""
        for listener in self._put_listeners:
            listener(stored)

    def put_many(
        self, messages: List[Message], notify: bool = True
    ) -> List[Message]:
        """Append a batch of messages with one sorted splice.

        All-or-nothing against ``max_depth``: either the whole batch fits
        or :class:`QueueFullError` is raised and nothing is stored.  The
        expiry sweep, ordering maintenance, and depth-gauge update run
        once for the batch instead of once per message; put listeners
        still fire per stored message, after the whole batch is in place
        (unless ``notify=False`` — see :meth:`put`).
        """
        self._sweep_expired()
        messages = list(messages)
        if len(self._entries) + len(messages) > self._max_depth:
            raise QueueFullError(self.name, self._max_depth)
        if not messages:
            return []
        now = self._clock.now_ms()
        new_entries = [
            _Entry(sort_key=(-m.priority, next(self._seq)), message=m.copy(put_time_ms=now))
            for m in messages
        ]
        new_entries.sort()
        if not self._entries or self._entries[-1].sort_key <= new_entries[0].sort_key:
            self._entries.extend(new_entries)
        else:
            # Two sorted runs; timsort merges them in linear time.
            self._entries.extend(new_entries)
            self._entries.sort()
        self._visible += len(new_entries)
        for entry in new_entries:
            self._expiry_added(entry.message)
        self.stats.puts += len(new_entries)
        self.stats.high_water_depth = max(
            self.stats.high_water_depth, len(self._entries)
        )
        self._note_depth()
        stored_batch = [entry.message for entry in new_entries]
        if notify:
            for stored in stored_batch:
                self.notify_put(stored)
        return stored_batch

    # -- get -------------------------------------------------------------------

    def get(
        self,
        selector: Optional[Callable[[Message], bool]] = None,
        lock_owner: Optional[str] = None,
    ) -> Message:
        """Remove (or lock) and return the first matching visible message.

        Args:
            selector: Optional predicate over messages (compiled selector
                or any callable).
            lock_owner: If given, the message is locked under this
                transaction id instead of removed; see
                :meth:`commit_locked` / :meth:`rollback_locked`.

        Raises:
            EmptyQueueError: No visible matching message.
        """
        self._sweep_expired()
        for i, entry in enumerate(self._entries):
            if entry.locked_by is not None:
                continue
            if selector is not None and not selector(entry.message):
                continue
            self.stats.gets += 1
            if lock_owner is None:
                del self._entries[i]
                self._note_depth()
            else:
                entry.locked_by = lock_owner
            self._visible -= 1
            self._expiry_removed(entry.message)
            return entry.message
        raise EmptyQueueError(self.name)

    def get_by_id(self, message_id: str, lock_owner: Optional[str] = None) -> Message:
        """Destructively get a specific message by id (expired or not).

        Used by the receiver-side compensation logic, which must be able to
        pull a specific original message out of the queue to cancel it
        against its compensation message.
        """
        for i, entry in enumerate(self._entries):
            if entry.locked_by is None and entry.message.message_id == message_id:
                self.stats.gets += 1
                if lock_owner is None:
                    del self._entries[i]
                    self._note_depth()
                else:
                    entry.locked_by = lock_owner
                self._visible -= 1
                self._expiry_removed(entry.message)
                return entry.message
        raise EmptyQueueError(self.name)

    def find_by_id(self, message_id: str) -> Optional[Message]:
        """Return the visible (unlocked, unexpired) message with
        ``message_id`` without removing it, or ``None``.

        The non-destructive sibling of :meth:`get_by_id`; the network
        layer uses it to locate a parked transmission without paying for
        a full :meth:`browse` pass.
        """
        self._sweep_expired()
        now = self._clock.now_ms()
        for entry in self._entries:
            if (
                entry.locked_by is None
                and entry.message.message_id == message_id
                and not entry.message.is_expired(now)
            ):
                return entry.message
        return None

    # -- browse ------------------------------------------------------------------

    def browse(
        self, selector: Optional[Callable[[Message], bool]] = None
    ) -> Iterator[Message]:
        """Yield visible messages in delivery order without removing them."""
        self._sweep_expired()
        self.stats.browses += 1
        now = self._clock.now_ms()
        for entry in list(self._entries):
            if entry.locked_by is not None or entry.message.is_expired(now):
                continue
            if selector is None or selector(entry.message):
                yield entry.message

    def peek(self) -> Optional[Message]:
        """Return (without removing) the next visible message, or ``None``."""
        for message in self.browse():
            return message
        return None

    # -- transactional locking -----------------------------------------------

    def locked_messages(self, lock_owner: str) -> List[Message]:
        """Messages currently locked under ``lock_owner``."""
        return [e.message for e in self._entries if e.locked_by == lock_owner]

    def commit_locked(self, lock_owner: str) -> List[Message]:
        """Destroy all messages locked by ``lock_owner``; returns them.

        Locked entries were already dropped from the visible count and
        the expiry watermark when they were locked, so destroying them
        needs no further bookkeeping.
        """
        committed = [e.message for e in self._entries if e.locked_by == lock_owner]
        self._entries = [e for e in self._entries if e.locked_by != lock_owner]
        self._note_depth()
        return committed

    def remove_locked(self, lock_owner: str, message_id: str) -> Message:
        """Destroy one specific message locked by ``lock_owner``.

        Used for poison-message diversion: the dead-lettered message must
        leave the queue without committing the rest of the transaction's
        locked set.
        """
        for i, entry in enumerate(self._entries):
            if (
                entry.locked_by == lock_owner
                and entry.message.message_id == message_id
            ):
                del self._entries[i]
                self._note_depth()
                return entry.message
        raise EmptyQueueError(self.name)

    def rollback_locked(self, lock_owner: str) -> List[Message]:
        """Unlock ``lock_owner``'s messages in place, bumping backout counts."""
        rolled_back: List[Message] = []
        for entry in self._entries:
            if entry.locked_by == lock_owner:
                entry.locked_by = None
                entry.message = entry.message.copy(
                    backout_count=entry.message.backout_count + 1
                )
                self.stats.backouts += 1
                self._visible += 1
                self._expiry_added(entry.message)
                rolled_back.append(entry.message)
        return rolled_back

    # -- maintenance ---------------------------------------------------------------

    def purge(self) -> int:
        """Discard every unlocked message; returns how many were removed."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.locked_by is not None]
        # Everything visible is gone; only locked entries remain, and
        # those never participate in the expiry watermark.
        self._visible = 0
        self._next_expiry_ms = None
        self._note_depth()
        return before - len(self._entries)

    def snapshot(self) -> List[Message]:
        """All stored messages (for journaling/recovery), locked included."""
        return [e.message for e in self._entries]

    def restore(self, messages: List[Message]) -> None:
        """Reload queue content from a recovery snapshot (replaces content)."""
        self._entries = []
        self._seq = itertools.count(1)
        for message in messages:
            entry = _Entry(
                sort_key=(-message.priority, next(self._seq)), message=message
            )
            self._entries.append(entry)
        self._entries.sort()
        expiries = [
            e.message.expiry_ms
            for e in self._entries
            if e.message.expiry_ms is not None
        ]
        self._next_expiry_ms = min(expiries) if expiries else None
        self._visible = len(self._entries)  # restored entries are unlocked
        self._note_depth()

    def _note_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(self._depth_gauge, len(self._entries))

    # -- expiry-watermark bookkeeping ------------------------------------------

    def _expiry_added(self, message: Message) -> None:
        """A message joined the visible set; pull the watermark down."""
        expiry = message.expiry_ms
        if expiry is not None and (
            self._next_expiry_ms is None or expiry < self._next_expiry_ms
        ):
            self._next_expiry_ms = expiry

    def _expiry_removed(self, message: Message) -> None:
        """A message left the visible set (removed or locked).

        If its expiry is at (or below) the watermark it may be the one
        holding it down, so recompute the minimum over the remaining
        unlocked entries — otherwise a stale watermark keeps triggering
        no-op sweep scans on every access after the deadline passes.
        """
        if (
            self._next_expiry_ms is not None
            and message.expiry_ms is not None
            and message.expiry_ms <= self._next_expiry_ms
        ):
            next_expiry: Optional[int] = None
            for entry in self._entries:
                if entry.locked_by is not None:
                    continue
                expiry = entry.message.expiry_ms
                if expiry is not None and (
                    next_expiry is None or expiry < next_expiry
                ):
                    next_expiry = expiry
            self._next_expiry_ms = next_expiry

    def _sweep_expired(self) -> None:
        if self._next_expiry_ms is None:
            return  # nothing stored can expire; skip the scan
        now = self._clock.now_ms()
        if now <= self._next_expiry_ms:
            return  # earliest deadline not crossed yet; skip the scan
        survivors: List[_Entry] = []
        swept: List[Message] = []
        next_expiry: Optional[int] = None
        for entry in self._entries:
            if entry.locked_by is None and entry.message.is_expired(now):
                self.stats.expired += 1
                swept.append(entry.message)
            else:
                survivors.append(entry)
                # Only unlocked survivors feed the watermark: the sweep
                # can never remove a locked entry, so including one that
                # is already past its deadline would drag the watermark
                # permanently into the past and force a full scan on
                # every access while the lock is held.
                if entry.locked_by is None:
                    expiry = entry.message.expiry_ms
                    if expiry is not None and (
                        next_expiry is None or expiry < next_expiry
                    ):
                        next_expiry = expiry
        self._next_expiry_ms = next_expiry
        if not swept:
            return
        self._entries = survivors
        self._visible -= len(swept)
        self._note_depth()
        for message in swept:
            if self.tracer.enabled:
                self.tracer.emit(
                    STAGE_EXPIRED,
                    at_ms=now,
                    cmid=cmid_of(message),
                    manager=self.owner or None,
                    queue=self.name,
                    message_id=message.message_id,
                )
            if self._on_expired is not None:
                self._on_expired(message)

    def __repr__(self) -> str:
        return f"MessageQueue({self.name!r}, depth={self.depth()})"
