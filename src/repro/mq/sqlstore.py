"""SQL-backed live queue store: the database *is* the queue manager state.

Gray's "Queues Are Databases" argument, applied to this repo: instead of
keeping queues as Python lists and using SQLite only as a recovery log
(PR 5's :class:`~repro.mq.persistence.SQLiteJournal`), a
:class:`SqlQueueStore` keeps every stored message as a row in one WAL-mode
SQLite database.  The queue manager's live representation and its durable
representation are the same thing, which buys three properties at once:

* **Indexed gets.** ``get(selector=...)`` becomes an index scan over
  ``(queue, priority DESC, seq)`` with the selector lowered to a SQL
  ``WHERE`` clause by :meth:`repro.mq.selectors.Selector.to_sql` — no
  O(depth) Python scan.  Selectors (or selector residues) that cannot be
  pushed down fall back to decoding rows in delivery order and applying
  the Python predicate, preserving exact three-valued-logic semantics.
* **Recovery = open.** :meth:`QueueManager.recover` on a store does no
  replay: it opens the database, clears the crashed manager's locks
  (presumed abort — backout counts are *not* bumped, matching journal
  recovery), and is done.  Restart cost is O(locks held), not O(journal).
* **Shared stores.** Two managers may attach to one store (the MSMQ
  multi-branch-synchronization scenario).  Locks are qualified by the
  owning manager's name so one manager's crash recovery releases only its
  own in-flight transactions.

The store registers itself in the journal-backend registry under the URL
scheme ``sqlstore:`` so ``QueueManager(..., journal="sqlstore:/path.db")``
just works; the manager detects the store and routes queue operations
through :class:`SqlMessageQueue` wrappers instead of journaling.

Durability model vs. journals: messages live in the database the moment
the enclosing transaction commits, so in store mode even *non-persistent*
messages survive a manager restart — the store outlives the manager, like
a database server outlives its clients.  Delivery mode still matters for
the read-only :meth:`SqlQueueStore.recover` fold used by the chaos
invariant checker, which (like journal replay) only reports persistent
messages.
"""

from __future__ import annotations

import base64
import json
import pickle
import sqlite3
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import EmptyQueueError, MQError, PersistenceError, QueueFullError
from repro.mq.message import Message
from repro.mq.persistence import (
    _check_sync_policy,
    decode_message,
    encode_message,
    register_journal_backend,
)
from repro.mq.queue import DEFAULT_MAX_DEPTH, QueueStats
from repro.mq.selectors import Selector
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, STAGE_EXPIRED, Tracer, cmid_of
from repro.sim.clock import Clock

#: SQLite signed-integer range; larger Python ints cannot round-trip.
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

_SCHEMA = (
    """
    CREATE TABLE IF NOT EXISTS queues (
        name      TEXT PRIMARY KEY,
        max_depth INTEGER NOT NULL,
        depth     INTEGER NOT NULL DEFAULT 0,
        locked    INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS messages (
        seq            INTEGER PRIMARY KEY AUTOINCREMENT,
        queue          TEXT NOT NULL,
        message_id     TEXT NOT NULL,
        correlation_id TEXT,
        priority       INTEGER NOT NULL,
        put_time_ms    INTEGER,
        expiry_ms      INTEGER,
        delivery_mode  TEXT NOT NULL,
        persistent     INTEGER NOT NULL,
        lock_owner     TEXT,
        lock_manager   TEXT,
        backout_count  INTEGER NOT NULL DEFAULT 0,
        properties     TEXT,
        encoded        TEXT NOT NULL
    )
    """,
    # Delivery order: one scan per get/browse, priority first, FIFO within.
    """
    CREATE INDEX IF NOT EXISTS ix_messages_order
        ON messages (queue, priority DESC, seq)
    """,
    "CREATE INDEX IF NOT EXISTS ix_messages_id ON messages (queue, message_id)",
    """
    CREATE INDEX IF NOT EXISTS ix_messages_corr
        ON messages (queue, correlation_id)
    """,
    # Partial index feeding the MIN(expiry) watermark; locked rows are
    # excluded because the sweep cannot remove them (mirrors the linear
    # queue's unlocked-only watermark).
    """
    CREATE INDEX IF NOT EXISTS ix_messages_expiry
        ON messages (queue, expiry_ms)
        WHERE expiry_ms IS NOT NULL AND lock_owner IS NULL
    """,
    """
    CREATE INDEX IF NOT EXISTS ix_messages_locked
        ON messages (queue, lock_manager, lock_owner)
        WHERE lock_owner IS NOT NULL
    """,
    # Typed side index of property values: one row per (message, key)
    # for every value the selector type rules can match (strings, bools,
    # int64-range ints, finite floats).  Selector index hints seek here
    # (``seq IN (SELECT ...)``) so an equality/range/IN conjunct drives
    # the scan from a B-tree instead of parsing the JSON document per
    # row.  Rows are written even when the message's ``properties``
    # column is opaque — each *individual* clean value is still
    # indexable, and a hint must see it to stay a necessary condition.
    """
    CREATE TABLE IF NOT EXISTS message_props (
        seq     INTEGER NOT NULL,
        queue   TEXT NOT NULL,
        key     TEXT NOT NULL,
        kind    TEXT NOT NULL,
        num_val NUMERIC,
        str_val TEXT
    )
    """,
    # Covering indexes: the hint subqueries read nothing but seq.
    """
    CREATE INDEX IF NOT EXISTS ix_props_num
        ON message_props (queue, key, kind, num_val, seq)
    """,
    """
    CREATE INDEX IF NOT EXISTS ix_props_str
        ON message_props (queue, key, kind, str_val, seq)
    """,
    "CREATE INDEX IF NOT EXISTS ix_props_seq ON message_props (seq)",
    # Every removal path is a plain DELETE on messages (get, sweep,
    # purge, restore, delete_queue); the trigger keeps the side index
    # in lock-step without each call site knowing it exists.
    """
    CREATE TRIGGER IF NOT EXISTS tg_message_props_gc
        AFTER DELETE ON messages
        BEGIN
            DELETE FROM message_props WHERE seq = OLD.seq;
        END
    """,
)


def _queryable_properties(properties: Dict[str, Any]) -> Optional[str]:
    """JSON for the ``properties`` column, or ``None`` for opaque rows.

    A row's properties are stored queryably only when *every* top-level
    value round-trips through JSON1 with the exact semantics the Python
    evaluators implement: strings, bools, in-range ints, finite floats.
    Anything else — ``None`` values, containers, nan/inf, ints beyond
    int64, non-string keys — makes the whole row opaque (column NULL):
    pushed-down clauses skip it and the caller rechecks it in Python, so
    the SQL path can never disagree with ``Selector.matches``.
    """
    if not properties:
        return "{}"
    for key, value in properties.items():
        if not isinstance(key, str):
            return None
        if isinstance(value, bool):
            continue
        if isinstance(value, int):
            if not _INT64_MIN <= value <= _INT64_MAX:
                return None
        elif isinstance(value, float):
            if value != value or value in (float("inf"), float("-inf")):
                return None
        elif not isinstance(value, str):
            return None
    try:
        return json.dumps(properties)
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return None


def _index_rows(properties: Dict[str, Any]) -> List[Tuple[str, str, Any, Any]]:
    """(key, kind, num_val, str_val) rows for the typed property index.

    Kinds mirror the selector comparison rules — ``'n'`` numbers,
    ``'s'`` strings, ``'b'`` booleans (stored as 1/0 in ``num_val``) —
    so an index seek on (key, kind, value) matches exactly the rows
    where the corresponding selector conjunct can be TRUE.  Values the
    SQL type system cannot represent faithfully (out-of-int64 ints,
    nan/inf) are skipped: selector literals with those values never
    lower, so no hint can ask for them.
    """
    rows: List[Tuple[str, str, Any, Any]] = []
    for key, value in properties.items():
        if not isinstance(key, str):
            continue
        if isinstance(value, bool):
            rows.append((key, "b", 1 if value else 0, None))
        elif isinstance(value, int):
            if _INT64_MIN <= value <= _INT64_MAX:
                rows.append((key, "n", value, None))
        elif isinstance(value, float):
            if value == value and value not in (float("inf"), float("-inf")):
                rows.append((key, "n", value, None))
        elif isinstance(value, str):
            rows.append((key, "s", None, value))
    return rows


def _encode(message: Message) -> str:
    """Full message for the ``encoded`` column (JSON, pickle fallback)."""
    record = encode_message(message)
    try:
        return json.dumps(record)
    except (TypeError, ValueError):
        # Exotic property values (the body is already made JSON-safe by
        # encode_message); fall back to an opaque pickled record.
        return "P" + base64.b64encode(pickle.dumps(record)).decode("ascii")


def _decode(encoded: str) -> Message:
    if encoded.startswith("P"):
        record = pickle.loads(base64.b64decode(encoded[1:]))
    else:
        record = json.loads(encoded)
    return decode_message(record)


class SqlQueueStore:
    """One WAL-mode SQLite database holding queues as tables.

    The store plays the journal's role in the manager constructor
    (``QueueManager(..., journal=store)`` or ``journal="sqlstore:path"``)
    but is not a journal: there is no replay log, the rows *are* the
    state.  It exposes the journal-shaped surface the harnesses rely on —
    ``recover()`` (read-only fold for the chaos invariant checker),
    ``close()``, ``post_commit()``, ``on_pre_flush``/``on_post_flush``
    fault-injection hooks, ``enable_adaptive_flush()`` (a no-op; group
    boundaries are real SQL transactions here) — so chaos episodes and
    the workload testbed can swap it in for a journal unchanged.

    Several managers may attach to one store instance; single-threaded
    (simulated-time) use is assumed, as everywhere in this repo.
    """

    #: Store transactions batch whole groups, like journal group commit.
    wraps_groups = True

    def __init__(
        self,
        path: str,
        sync: str = "always",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.path = path
        self.sync_policy = _check_sync_policy(sync)
        self.metrics = metrics
        self.flush_count = 0
        self.records_written = 0
        self.bytes_written = 0
        self.skipped_trailing_records = 0
        self.compaction_threshold: Optional[int] = None
        #: Fault-injection hooks (see ``FaultInjector.attach_journal``):
        #: ``on_pre_flush`` fires before COMMIT — if it raises, the whole
        #: transaction rolls back (the group is lost, like a crash before
        #: the journal write).  ``on_post_flush`` fires after COMMIT.
        self.on_pre_flush: Optional[Callable[[int], None]] = None
        self.on_post_flush: Optional[Callable[[int], None]] = None
        self._tx_depth = 0
        self._tx_ops = 0
        self._post_commit_hooks: List[Callable[[], None]] = []
        #: records_written high-water at the last ANALYZE (see
        #: :meth:`_maybe_analyze`).
        self._analyzed_at = 0
        try:
            self._con = sqlite3.connect(path)
            self._con.isolation_level = None  # explicit BEGIN/COMMIT
            self._con.execute("PRAGMA journal_mode=WAL")
            synchronous = {"always": "FULL", "batch": "NORMAL", "none": "OFF"}
            self._con.execute(
                f"PRAGMA synchronous={synchronous[self.sync_policy]}"
            )
            # The selector grammar's LIKE is case-sensitive (JMS/SQL-92);
            # SQLite's default LIKE is not.  Required for pushdown parity.
            self._con.execute("PRAGMA case_sensitive_like=ON")
            self._con.execute("PRAGMA busy_timeout=5000")
            for statement in _SCHEMA:
                self._con.execute(statement)
            self._con.commit()
        except sqlite3.Error as exc:
            self._close_quietly()
            raise PersistenceError(f"cannot open queue store {path}: {exc}")

    # -- transactions ---------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator["SqlQueueStore"]:
        """Group mutations into one SQL transaction (re-entrant).

        Matches :meth:`Journal.batch` semantics: the outermost exit
        commits even when the body raised (partially-applied state is the
        body's business; durability of what *was* applied is ours), but a
        raising ``on_pre_flush`` hook rolls the whole group back — that is
        the chaos injector's "crash before the group hit disk" model.
        """
        if self._tx_depth == 0:
            self._execute("BEGIN IMMEDIATE")
            self._tx_ops = 0
        self._tx_depth += 1
        try:
            yield self
        finally:
            self._tx_depth -= 1
            if self._tx_depth == 0:
                self._finish_transaction()

    def _finish_transaction(self) -> None:
        ops = self._tx_ops
        if ops and self.on_pre_flush is not None:
            try:
                self.on_pre_flush(ops)
            except BaseException:
                self._execute("ROLLBACK")
                self._post_commit_hooks.clear()
                raise
        self._execute("COMMIT")
        if ops:
            try:
                if self.on_post_flush is not None:
                    self.on_post_flush(ops)
            except BaseException:
                self._post_commit_hooks.clear()
                raise
            finally:
                self.flush_count += 1
                self.records_written += ops
                if self.metrics is not None:
                    self.metrics.inc("journal.flushes")
                    self.metrics.inc("journal.records", ops)
            self._maybe_analyze()
        # Run (and clear) post-commit hooks; a hook may enqueue more.
        while self._post_commit_hooks:
            hooks, self._post_commit_hooks = self._post_commit_hooks, []
            for hook in hooks:
                hook()

    def _maybe_analyze(self) -> None:
        """Refresh planner statistics on an amortized doubling schedule.

        Without ``sqlite_stat1`` rows the planner walks the delivery-order
        index and evaluates selector clauses row by row; with them it
        drives selector gets from the ``message_props`` typed index
        (candidates by rowid, then sort) — the plan the pushdown is for.
        Re-analyzing once the store has written ``max(1000, analyzed)``
        records since the last pass keeps the cost logarithmic in total
        writes while catching every order-of-magnitude depth change.
        """
        written = self.records_written
        if written - self._analyzed_at >= max(1000, self._analyzed_at):
            self._execute("ANALYZE")
            self._analyzed_at = written

    def post_commit(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` after the enclosing transaction commits.

        Outside a transaction the work is already durable, so the
        callback runs immediately — the same contract as
        :meth:`Journal.post_commit`.
        """
        if self._tx_depth > 0:
            self._post_commit_hooks.append(callback)
        else:
            callback()

    def _execute(self, sql: str, params: Tuple = ()) -> sqlite3.Cursor:
        try:
            return self._con.execute(sql, params)
        except sqlite3.Error as exc:
            raise PersistenceError(f"queue store {self.path}: {exc}")

    def _mutate(self, sql: str, params: Tuple = ()) -> sqlite3.Cursor:
        cursor = self._execute(sql, params)
        self._tx_ops += cursor.rowcount if cursor.rowcount > 0 else 0
        return cursor

    # -- queue registry -------------------------------------------------------

    def define_queue(self, name: str, max_depth: int) -> int:
        """Register a queue (idempotent); returns the effective max depth.

        When the queue already exists — another manager attached to the
        shared store defined it first — the stored ``max_depth`` wins, so
        every attached manager enforces the same limit.
        """
        with self.transaction():
            self._mutate(
                "INSERT OR IGNORE INTO queues (name, max_depth) VALUES (?, ?)",
                (name, max_depth),
            )
            row = self._execute(
                "SELECT max_depth FROM queues WHERE name = ?", (name,)
            ).fetchone()
        return int(row[0])

    def queue_names(self) -> List[str]:
        rows = self._execute("SELECT name FROM queues ORDER BY name").fetchall()
        return [row[0] for row in rows]

    def delete_queue(self, name: str) -> None:
        with self.transaction():
            self._mutate("DELETE FROM messages WHERE queue = ?", (name,))
            self._mutate("DELETE FROM queues WHERE name = ?", (name,))

    # -- recovery -------------------------------------------------------------

    def release_locks(self, manager_name: str) -> int:
        """Presumed-abort recovery for one manager: unlock its rows.

        Backout counts are *not* bumped — a crash is not a rollback; the
        message simply reappears, exactly as journal replay makes it
        reappear with its pre-crash count.  Other managers attached to
        the same store keep their in-flight locks untouched.
        """
        # Recovery is not a commit group: the fault-injection hooks model
        # crashes of live flushes, and journal-mode recovery (replay)
        # never fires them either — suppress for the duration.
        saved_hooks = (self.on_pre_flush, self.on_post_flush)
        self.on_pre_flush = self.on_post_flush = None
        try:
            return self._release_locks(manager_name)
        finally:
            self.on_pre_flush, self.on_post_flush = saved_hooks

    def _release_locks(self, manager_name: str) -> int:
        with self.transaction():
            counts = self._execute(
                "SELECT queue, COUNT(*) FROM messages"
                " WHERE lock_manager = ? GROUP BY queue",
                (manager_name,),
            ).fetchall()
            self._mutate(
                "UPDATE messages SET lock_owner = NULL, lock_manager = NULL"
                " WHERE lock_manager = ?",
                (manager_name,),
            )
            for queue, n in counts:
                self._mutate(
                    "UPDATE queues SET locked = locked - ? WHERE name = ?",
                    (n, queue),
                )
        return sum(n for _q, n in counts)

    def recover(self) -> Tuple[List[str], Dict[str, List[Message]]]:
        """Read-only fold: (queue names, persistent messages per queue).

        Shaped like :meth:`Journal.recover` so the chaos invariant
        checker can compare a live store against itself; it mutates
        nothing and may be called on a store other managers are using.
        Like journal replay, only persistent messages are reported.
        """
        queue_names = self.queue_names()
        live: Dict[str, List[Message]] = {name: [] for name in queue_names}
        rows = self._execute(
            "SELECT queue, encoded FROM messages WHERE persistent = 1"
            " ORDER BY queue, priority DESC, seq"
        ).fetchall()
        for queue, encoded in rows:
            live.setdefault(queue, []).append(_decode(encoded))
        return queue_names, live

    # -- journal-surface compatibility ---------------------------------------

    def enable_adaptive_flush(self, scheduler: Any, **_kwargs: Any) -> None:
        """No-op: store commits are real transactions, never deferred."""

    def drain(self) -> int:
        """No-op (nothing is ever buffered outside a transaction)."""
        return 0

    def needs_compaction(self) -> bool:
        return False

    def sync(self) -> None:
        """Checkpoint the WAL into the main database file."""
        self._execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        if getattr(self, "_con", None) is None:
            return
        try:
            if self._tx_depth > 0:  # pragma: no cover - defensive
                self._con.execute("ROLLBACK")
            self._con.close()
        except sqlite3.Error:  # pragma: no cover - defensive
            pass
        self._con = None

    def _close_quietly(self) -> None:
        con = getattr(self, "_con", None)
        if con is not None:
            try:
                con.close()
            except sqlite3.Error:  # pragma: no cover - defensive
                pass
        self._con = None

    def __repr__(self) -> str:
        return f"SqlQueueStore({self.path!r}, sync={self.sync_policy!r})"


class SqlMessageQueue:
    """:class:`~repro.mq.queue.MessageQueue` semantics over store rows.

    One wrapper per (manager, queue name); two managers attached to a
    shared store each hold their own wrapper over the same rows.  Every
    method matches the linear queue's observable behaviour — ordering,
    lazy expiry sweeps, lock/commit/rollback bookkeeping, stats — with
    the list scan replaced by indexed SQL and, for compiled selectors
    that lower (:meth:`Selector.to_sql`), by a pushed-down WHERE clause.
    """

    def __init__(
        self,
        store: SqlQueueStore,
        name: str,
        clock: Clock,
        max_depth: int = DEFAULT_MAX_DEPTH,
        on_expired: Optional[Callable[[Message], None]] = None,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
        owner: str = "",
    ) -> None:
        if not name:
            raise MQError("queue name must be non-empty")
        if max_depth <= 0:
            raise MQError("max_depth must be positive")
        self.name = name
        self.store = store
        self._clock = clock
        self._max_depth = store.define_queue(name, max_depth)
        self._on_expired = on_expired
        self._put_listeners: List[Callable[[Message], None]] = []
        self.stats = QueueStats()
        self.tracer = tracer
        self.metrics = metrics
        self.owner = owner
        self._depth_gauge = f"depth.{owner}.{name}" if owner else f"depth.{name}"

    # -- small helpers --------------------------------------------------------

    def subscribe(self, listener: Callable[[Message], None]) -> None:
        """Register a callback fired after every successful put."""
        self._put_listeners.append(listener)

    def _counts(self) -> Tuple[int, int]:
        row = self.store._execute(
            "SELECT depth, locked FROM queues WHERE name = ?", (self.name,)
        ).fetchone()
        if row is None:  # pragma: no cover - queue deleted underneath
            return 0, 0
        return int(row[0]), int(row[1])

    def _bump(self, depth_delta: int, locked_delta: int = 0) -> None:
        self.store._mutate(
            "UPDATE queues SET depth = depth + ?, locked = locked + ?"
            " WHERE name = ?",
            (depth_delta, locked_delta, self.name),
        )

    def _note_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(self._depth_gauge, self.total_depth())

    # -- depth and inspection -------------------------------------------------

    def depth(self) -> int:
        """Visible depth (sweeps expired messages first, like any access)."""
        with self.store.transaction():
            self._sweep_expired()
            total, locked = self._counts()
        return total - locked

    def total_depth(self) -> int:
        return self._counts()[0]

    @property
    def max_depth(self) -> int:
        """Configured depth limit of this queue (store-resolved)."""
        return self._max_depth

    def capacity_remaining(self) -> int:
        """Messages that can still be stored before ``max_depth``.

        Same contract as :meth:`MessageQueue.capacity_remaining`: locked
        rows occupy slots, expired ones are swept first.
        """
        with self.store.transaction():
            self._sweep_expired()
            total, _locked = self._counts()
        return self._max_depth - total

    def is_empty(self) -> bool:
        return self.depth() == 0

    # -- put ------------------------------------------------------------------

    def _insert(self, stored: Message) -> None:
        cursor = self.store._mutate(
            "INSERT INTO messages (queue, message_id, correlation_id,"
            " priority, put_time_ms, expiry_ms, delivery_mode, persistent,"
            " backout_count, properties, encoded)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                self.name,
                stored.message_id,
                stored.correlation_id,
                stored.priority,
                stored.put_time_ms,
                stored.expiry_ms,
                stored.delivery_mode.value,
                1 if stored.is_persistent() else 0,
                stored.backout_count,
                _queryable_properties(stored.properties),
                _encode(stored),
            ),
        )
        # Side-index upkeep rides the same transaction but is not a
        # logical record: _execute, not _mutate, so flush/record counters
        # (and fault plans keyed on them) see one op per message.
        seq = cursor.lastrowid
        for key, kind, num_val, str_val in _index_rows(stored.properties):
            self.store._execute(
                "INSERT INTO message_props"
                " (seq, queue, key, kind, num_val, str_val)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (seq, self.name, key, kind, num_val, str_val),
            )

    def put(self, message: Message, notify: bool = True) -> Message:
        """Insert in priority order; raises :class:`QueueFullError` at cap."""
        with self.store.transaction():
            self._sweep_expired()
            total, _locked = self._counts()
            if total >= self._max_depth:
                raise QueueFullError(self.name, self._max_depth)
            stored = message.copy(put_time_ms=self._clock.now_ms())
            self._insert(stored)
            self._bump(+1)
            self.stats.puts += 1
            self.stats.high_water_depth = max(
                self.stats.high_water_depth, total + 1
            )
            self._note_depth()
        if notify:
            self.notify_put(stored)
        return stored

    def notify_put(self, stored: Message) -> None:
        for listener in self._put_listeners:
            listener(stored)

    def put_many(
        self, messages: List[Message], notify: bool = True
    ) -> List[Message]:
        """All-or-nothing batch insert (one transaction, one depth check)."""
        with self.store.transaction():
            self._sweep_expired()
            messages = list(messages)
            total, _locked = self._counts()
            if total + len(messages) > self._max_depth:
                raise QueueFullError(self.name, self._max_depth)
            if not messages:
                return []
            now = self._clock.now_ms()
            stored_batch = [m.copy(put_time_ms=now) for m in messages]
            for stored in stored_batch:
                self._insert(stored)
            self._bump(+len(stored_batch))
            self.stats.puts += len(stored_batch)
            self.stats.high_water_depth = max(
                self.stats.high_water_depth, total + len(stored_batch)
            )
            self._note_depth()
        if notify:
            for stored in stored_batch:
                self.notify_put(stored)
        return stored_batch

    # -- selection ------------------------------------------------------------

    def _matches(
        self, selector: Optional[Callable[[Message], bool]]
    ) -> Iterator[Tuple[int, Message]]:
        """Yield (seq, message) over unlocked rows in delivery order.

        Compiled selectors that lower to SQL are pushed into the WHERE
        clause; rows the clause cannot decide — opaque-properties rows,
        or any row when the clause is a widening residue (``exact=False``)
        — are rechecked with the full Python evaluator.  Selectors that
        cannot lower at all (including every selector that can raise) and
        plain callables run as a Python scan over the ordered rows, so
        evaluation-order-dependent behaviour (raises included) matches
        the linear queue exactly.
        """
        where = "queue = ? AND lock_owner IS NULL"
        params: List[Any] = [self.name]
        recheck = selector is not None
        sql = selector.to_sql() if isinstance(selector, Selector) else None
        if sql is not None:
            # Index hints first: each is a necessary condition of the
            # selector being TRUE, answered by a seek on message_props.
            # ``seq IN (indexed subquery)`` lets the planner drive the
            # whole lookup from the typed property index (candidates by
            # rowid, then sort) instead of walking the delivery order and
            # parsing the JSON document row by row.  Hints hold for
            # opaque rows too — the side index stores each clean value
            # even when the row's JSON column is NULL.
            for hint in sql.index_hints:
                if hint[0] == "eq":
                    _op, key, kind, value = hint
                    column = "str_val" if kind == "s" else "num_val"
                    where += (
                        " AND seq IN (SELECT seq FROM message_props"
                        f" WHERE queue = ? AND key = ? AND kind = ?"
                        f" AND {column} = ?)"
                    )
                    params.extend([self.name, key, kind, value])
                elif hint[0] == "range":
                    _op, key, low, high = hint
                    where += (
                        " AND seq IN (SELECT seq FROM message_props"
                        " WHERE queue = ? AND key = ? AND kind = 'n'"
                        " AND num_val BETWEEN ? AND ?)"
                    )
                    params.extend([self.name, key, low, high])
                else:  # "in"
                    _op, key, options = hint
                    marks = ", ".join("?" for _ in options)
                    where += (
                        " AND seq IN (SELECT seq FROM message_props"
                        " WHERE queue = ? AND key = ? AND kind = 's'"
                        f" AND str_val IN ({marks}))"
                    )
                    params.append(self.name)
                    params.append(key)
                    params.extend(options)
            if sql.uses_properties:
                # Opaque rows (properties NULL) bypass the clause and are
                # rechecked in Python below.
                where += f" AND (properties IS NULL OR {sql.clause})"
            else:
                where += f" AND {sql.clause}"
            params.extend(sql.params)
            recheck = not sql.exact
        cursor = self.store._execute(
            "SELECT seq, properties IS NULL, encoded FROM messages"
            f" WHERE {where} ORDER BY priority DESC, seq",
            tuple(params),
        )
        while True:
            rows = cursor.fetchmany(64)
            if not rows:
                return
            for seq, opaque, encoded in rows:
                message = _decode(encoded)
                if sql is not None:
                    if (recheck or (sql.uses_properties and opaque)) and (
                        not selector(message)
                    ):
                        continue
                elif recheck and not selector(message):
                    continue
                yield seq, message

    def _take(
        self, seq: int, message: Message, lock_owner: Optional[str]
    ) -> None:
        """Remove (or lock) one row; caller holds the transaction."""
        if lock_owner is None:
            self.store._mutate("DELETE FROM messages WHERE seq = ?", (seq,))
            self._bump(-1)
            self._note_depth()
        else:
            self.store._mutate(
                "UPDATE messages SET lock_owner = ?, lock_manager = ?"
                " WHERE seq = ?",
                (lock_owner, self.owner or "", seq),
            )
            self._bump(0, +1)
        self.stats.gets += 1

    def get(
        self,
        selector: Optional[Callable[[Message], bool]] = None,
        lock_owner: Optional[str] = None,
    ) -> Message:
        """Remove (or lock) and return the first matching visible message."""
        with self.store.transaction():
            self._sweep_expired()
            for seq, message in self._matches(selector):
                self._take(seq, message, lock_owner)
                return message
        raise EmptyQueueError(self.name)

    def get_by_id(
        self, message_id: str, lock_owner: Optional[str] = None
    ) -> Message:
        """Destructively get a specific message by id (expired or not)."""
        with self.store.transaction():
            row = self.store._execute(
                "SELECT seq, encoded FROM messages WHERE queue = ?"
                " AND lock_owner IS NULL AND message_id = ?"
                " ORDER BY priority DESC, seq LIMIT 1",
                (self.name, message_id),
            ).fetchone()
            if row is not None:
                message = _decode(row[1])
                self._take(row[0], message, lock_owner)
                return message
        raise EmptyQueueError(self.name)

    def find_by_id(self, message_id: str) -> Optional[Message]:
        """Visible (unlocked, unexpired) message with ``message_id``."""
        with self.store.transaction():
            self._sweep_expired()
            now = self._clock.now_ms()
            row = self.store._execute(
                "SELECT encoded FROM messages WHERE queue = ?"
                " AND lock_owner IS NULL AND message_id = ?"
                " AND (expiry_ms IS NULL OR expiry_ms >= ?)"
                " ORDER BY priority DESC, seq LIMIT 1",
                (self.name, message_id, now),
            ).fetchone()
        return _decode(row[0]) if row is not None else None

    # -- browse ---------------------------------------------------------------

    def browse(
        self, selector: Optional[Callable[[Message], bool]] = None
    ) -> Iterator[Message]:
        """Yield visible messages in delivery order without removing them."""
        with self.store.transaction():
            self._sweep_expired()
        self.stats.browses += 1
        now = self._clock.now_ms()
        # Materialise matches up front so the iteration is a snapshot, as
        # with the linear queue's ``list(self._entries)`` copy: callers
        # may get/put between yields without perturbing the browse.
        matched = [
            message
            for _seq, message in self._matches(selector)
            if not message.is_expired(now)
        ]
        return iter(matched)

    def peek(self) -> Optional[Message]:
        for message in self.browse():
            return message
        return None

    # -- transactional locking ------------------------------------------------

    def _locked_rows(self, lock_owner: str) -> List[Tuple[int, str]]:
        return self.store._execute(
            "SELECT seq, encoded FROM messages WHERE queue = ?"
            " AND lock_owner = ? AND lock_manager = ?"
            " ORDER BY priority DESC, seq",
            (self.name, lock_owner, self.owner or ""),
        ).fetchall()

    def locked_messages(self, lock_owner: str) -> List[Message]:
        return [_decode(encoded) for _seq, encoded in self._locked_rows(lock_owner)]

    def commit_locked(self, lock_owner: str) -> List[Message]:
        """Destroy all messages locked by ``lock_owner``; returns them."""
        with self.store.transaction():
            rows = self._locked_rows(lock_owner)
            if rows:
                self.store._mutate(
                    "DELETE FROM messages WHERE queue = ? AND lock_owner = ?"
                    " AND lock_manager = ?",
                    (self.name, lock_owner, self.owner or ""),
                )
                self._bump(-len(rows), -len(rows))
            self._note_depth()
        return [_decode(encoded) for _seq, encoded in rows]

    def remove_locked(self, lock_owner: str, message_id: str) -> Message:
        """Destroy one specific locked message (poison diversion)."""
        with self.store.transaction():
            row = self.store._execute(
                "SELECT seq, encoded FROM messages WHERE queue = ?"
                " AND lock_owner = ? AND lock_manager = ? AND message_id = ?"
                " LIMIT 1",
                (self.name, lock_owner, self.owner or "", message_id),
            ).fetchone()
            if row is None:
                raise EmptyQueueError(self.name)
            self.store._mutate("DELETE FROM messages WHERE seq = ?", (row[0],))
            self._bump(-1, -1)
            self._note_depth()
        return _decode(row[1])

    def rollback_locked(self, lock_owner: str) -> List[Message]:
        """Unlock in place, bumping backout counts (redelivery order kept)."""
        with self.store.transaction():
            rows = self._locked_rows(lock_owner)
            rolled_back: List[Message] = []
            for seq, encoded in rows:
                message = _decode(encoded)
                message = message.copy(backout_count=message.backout_count + 1)
                self.store._mutate(
                    "UPDATE messages SET lock_owner = NULL,"
                    " lock_manager = NULL, backout_count = ?, encoded = ?"
                    " WHERE seq = ?",
                    (message.backout_count, _encode(message), seq),
                )
                self.stats.backouts += 1
                rolled_back.append(message)
            if rows:
                self._bump(0, -len(rows))
        return rolled_back

    # -- maintenance ----------------------------------------------------------

    def purge(self) -> int:
        """Discard every unlocked message; returns how many were removed."""
        with self.store.transaction():
            cursor = self.store._mutate(
                "DELETE FROM messages WHERE queue = ? AND lock_owner IS NULL",
                (self.name,),
            )
            removed = cursor.rowcount if cursor.rowcount > 0 else 0
            if removed:
                self._bump(-removed)
            self._note_depth()
        return removed

    def snapshot(self) -> List[Message]:
        """All stored messages in order (locked included)."""
        rows = self.store._execute(
            "SELECT encoded FROM messages WHERE queue = ?"
            " ORDER BY priority DESC, seq",
            (self.name,),
        ).fetchall()
        return [_decode(row[0]) for row in rows]

    def restore(self, messages: List[Message]) -> None:
        """Replace queue content from a recovery snapshot."""
        with self.store.transaction():
            self.store._mutate(
                "DELETE FROM messages WHERE queue = ?", (self.name,)
            )
            # Insert in delivery order so seq reproduces FIFO-within-
            # priority for messages that tie on priority.
            for message in sorted(
                messages, key=lambda m: -m.priority
            ):
                self._insert(message)
            self.store._mutate(
                "UPDATE queues SET depth = ?, locked = 0 WHERE name = ?",
                (len(messages), self.name),
            )
            self._note_depth()

    # -- expiry ---------------------------------------------------------------

    def _sweep_expired(self) -> None:
        """Lazily dead-letter expired unlocked rows (watermark-gated).

        The watermark is an indexed ``MIN(expiry_ms)`` over unlocked rows
        rather than Python state: with two managers attached to one
        store, a cached watermark in either manager would go stale the
        moment the other one puts an expiring message.
        """
        row = self.store._execute(
            "SELECT MIN(expiry_ms) FROM messages WHERE queue = ?"
            " AND expiry_ms IS NOT NULL AND lock_owner IS NULL",
            (self.name,),
        ).fetchone()
        if row is None or row[0] is None:
            return
        now = self._clock.now_ms()
        if now <= row[0]:
            return
        swept_rows = self.store._execute(
            "SELECT seq, encoded FROM messages WHERE queue = ?"
            " AND lock_owner IS NULL AND expiry_ms IS NOT NULL"
            " AND expiry_ms < ? ORDER BY priority DESC, seq",
            (self.name, now),
        ).fetchall()
        if not swept_rows:
            return  # pragma: no cover - watermark guaranteed one row
        self.store._mutate(
            "DELETE FROM messages WHERE queue = ? AND lock_owner IS NULL"
            " AND expiry_ms IS NOT NULL AND expiry_ms < ?",
            (self.name, now),
        )
        self._bump(-len(swept_rows))
        self.stats.expired += len(swept_rows)
        self._note_depth()
        for _seq, encoded in swept_rows:
            message = _decode(encoded)
            if self.tracer.enabled:
                self.tracer.emit(
                    STAGE_EXPIRED,
                    at_ms=now,
                    cmid=cmid_of(message),
                    manager=self.owner or None,
                    queue=self.name,
                    message_id=message.message_id,
                )
            if self._on_expired is not None:
                self._on_expired(message)

    def __repr__(self) -> str:
        return f"SqlMessageQueue({self.name!r}, depth={self.depth()})"


def _sqlstore_factory(
    path: str,
    sync: str = "always",
    compaction_threshold: Optional[int] = None,
    codec: Optional[str] = None,
) -> SqlQueueStore:
    # Stores have no replay log to compact and no record codec; both
    # journal-URL knobs are accepted (registry compatibility) and ignored.
    del compaction_threshold, codec
    return SqlQueueStore(path, sync=sync)


register_journal_backend("sqlstore", _sqlstore_factory, suffix=".db")
