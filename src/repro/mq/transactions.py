"""Syncpoint (messaging) transactions: all-or-nothing get/put batches.

Matches the messaging-transaction semantics the paper depends on
(section 2.4, citing Bernstein/Newcomer [1]):

* a transactional **get** removes the message only if the transaction
  commits; on rollback the middleware puts the message back (here: unlocks
  it in place) with an incremented backout count;
* a transactional **put** becomes visible to consumers only at commit;
* remote puts made under syncpoint are handed to the network layer at
  commit, which is safe because store-and-forward makes a remote put a
  local put to a transmission queue.

A transaction belongs to one queue manager.  Distributed atomicity across
queue managers and object resources is the job of the object transaction
layer (``repro.objects``) and Dependency-Spheres (``repro.dsphere``);
messaging transactions compose with them through the
:class:`~repro.objects.resource.TransactionalResource` adapter in
``repro.objects.mqresource``.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import TYPE_CHECKING, Callable, List, Tuple

from repro.errors import TransactionError
from repro.mq.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mq.manager import QueueManager

_tx_seq = itertools.count(1)


class TxState(Enum):
    """Lifecycle of a messaging transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled_back"


class MQTransaction:
    """One unit of work on a queue manager.

    Obtained from :meth:`QueueManager.begin`; not constructed directly.
    All gets/puts routed through the owning manager with
    ``transaction=self`` join this unit of work.
    """

    def __init__(self, manager: "QueueManager") -> None:
        self._manager = manager
        self.tx_id = f"TX-{manager.name}-{next(_tx_seq):06d}"
        self.state = TxState.ACTIVE
        #: queues holding messages locked under this transaction
        self._locked_queues: List[str] = []
        #: local puts pending commit: (queue_name, message)
        self._pending_puts: List[Tuple[str, Message]] = []
        #: remote puts pending commit: (manager_name, queue_name, message)
        self._pending_remote_puts: List[Tuple[str, str, Message]] = []
        #: callbacks run after a successful commit (used by the receiver-side
        #: conditional messaging system to emit processing acknowledgments
        #: "bound to the successful commit of the receiver's transaction").
        self._after_commit: List[Callable[[int], None]] = []
        #: callbacks run after rollback (e.g. to clear pending ack state).
        self._after_rollback: List[Callable[[], None]] = []

    # -- recording (called by the manager) -----------------------------------

    def record_locked(self, queue_name: str) -> None:
        """Note that a message on ``queue_name`` is locked under this tx."""
        self._require_active()
        if queue_name not in self._locked_queues:
            self._locked_queues.append(queue_name)

    def record_put(self, queue_name: str, message: Message) -> None:
        """Buffer a local put until commit."""
        self._require_active()
        self._pending_puts.append((queue_name, message))

    def record_remote_put(
        self, manager_name: str, queue_name: str, message: Message
    ) -> None:
        """Buffer a remote put until commit."""
        self._require_active()
        self._pending_remote_puts.append((manager_name, queue_name, message))

    def pending_puts(self) -> List[Tuple[str, Message]]:
        """Local puts buffered so far (visible for introspection/tests)."""
        return list(self._pending_puts)

    # -- hooks ----------------------------------------------------------------

    def on_commit(self, callback: Callable[[int], None]) -> None:
        """Run ``callback(commit_time_ms)`` right after a successful commit."""
        self._require_active()
        self._after_commit.append(callback)

    def on_rollback(self, callback: Callable[[], None]) -> None:
        """Run ``callback()`` right after rollback."""
        self._require_active()
        self._after_rollback.append(callback)

    # -- outcome ----------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while the transaction can still accept work."""
        return self.state is TxState.ACTIVE

    def commit(self) -> None:
        """Make every get and put in this unit of work permanent."""
        self._require_active()
        self._manager.apply_commit(self)
        self.state = TxState.COMMITTED
        commit_time = self._manager.clock.now_ms()
        for callback in self._after_commit:
            callback(commit_time)

    def rollback(self) -> None:
        """Undo the unit of work: unlock gets (backout +1), drop puts."""
        self._require_active()
        self._manager.apply_rollback(self)
        self.state = TxState.ROLLED_BACK
        for callback in self._after_rollback:
            callback()

    # -- internals used by the manager ----------------------------------------

    def locked_queues(self) -> List[str]:
        """Queues with messages locked under this transaction."""
        return list(self._locked_queues)

    def drain_pending(
        self,
    ) -> Tuple[List[Tuple[str, Message]], List[Tuple[str, str, Message]]]:
        """Hand the buffered puts to the manager at commit time."""
        local, remote = self._pending_puts, self._pending_remote_puts
        self._pending_puts = []
        self._pending_remote_puts = []
        return local, remote

    def _require_active(self) -> None:
        if self.state is not TxState.ACTIVE:
            raise TransactionError(
                f"transaction {self.tx_id} is {self.state.value}, not active"
            )

    def __repr__(self) -> str:
        return f"MQTransaction({self.tx_id}, {self.state.value})"
