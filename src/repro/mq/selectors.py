"""JMS-style message selectors: a small SQL-92 conditional expression language.

Consumers may filter messages with selector strings such as::

    "DS_CMID = 'CM-00000001' AND JMSPriority > 4"
    "region IN ('EU', 'US') AND NOT flagged"
    "payload_size BETWEEN 100 AND 4096"
    "route LIKE 'JFK-%' ESCAPE '!'"

The grammar is the JMS 1.0 selector subset:

* identifiers name message properties, plus the header pseudo-properties
  ``JMSMessageID``, ``JMSCorrelationID``, ``JMSPriority``, ``JMSTimestamp``,
  ``JMSDeliveryMode``;
* literals: single-quoted strings (with ``''`` escaping), integer and
  floating numerics, ``TRUE`` / ``FALSE``;
* operators (loosest to tightest): ``OR``, ``AND``, ``NOT``; comparisons
  ``=  <>  <  <=  >  >=``, ``[NOT] BETWEEN .. AND ..``, ``[NOT] IN (..)``,
  ``[NOT] LIKE .. [ESCAPE ..]``, ``IS [NOT] NULL``; arithmetic
  ``+ - * /`` and unary ``-``; parentheses.

Evaluation follows SQL three-valued logic: references to absent properties
yield *unknown*; a message is selected only when the whole expression is
definitely true.

Construction **compiles** the parsed AST down to nested Python closures
(:func:`_compile_truth`), so matching a message never re-walks the tree:
each node becomes one specialized function, ``LIKE`` patterns are lowered
to a compiled regex exactly once at parse time, and property-free
subexpressions are constant-folded at compile time.  The tree-walking
interpreter (:func:`_eval_truth`) is kept as the reference evaluator —
:meth:`Selector.interpreted_matches` exposes it so differential tests can
assert the two paths never diverge.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import SelectorError
from repro.mq.message import Message

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_$][A-Za-z0-9_$.]*)
  | (?P<op><>|<=|>=|[=<>()+\-*/,])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE", "ESCAPE", "IS", "NULL",
    "TRUE", "FALSE",
}


@dataclass
class _Token:
    kind: str  # 'kw', 'ident', 'int', 'float', 'string', 'op', 'end'
    value: Any
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SelectorError(f"bad character {text[pos]!r} at position {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        if match.lastgroup == "float":
            tokens.append(_Token("float", float(match.group()), match.start()))
        elif match.lastgroup == "int":
            tokens.append(_Token("int", int(match.group()), match.start()))
        elif match.lastgroup == "string":
            raw = match.group()[1:-1].replace("''", "'")
            tokens.append(_Token("string", raw, match.start()))
        elif match.lastgroup == "ident":
            word = match.group()
            if word.upper() in _KEYWORDS:
                tokens.append(_Token("kw", word.upper(), match.start()))
            else:
                tokens.append(_Token("ident", word, match.start()))
        else:
            tokens.append(_Token("op", match.group(), match.start()))
    tokens.append(_Token("end", None, len(text)))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

#: The evaluator's truth domain: True, False, or None (SQL "unknown").
Truth = Optional[bool]


@dataclass
class _Node:
    """Base AST node."""


@dataclass
class _Literal(_Node):
    value: Any  # str | int | float | bool | None


@dataclass
class _Property(_Node):
    name: str


@dataclass
class _Unary(_Node):
    op: str  # 'NOT' | 'NEG'
    operand: _Node


@dataclass
class _Binary(_Node):
    op: str  # 'AND','OR','=','<>','<','<=','>','>=','+','-','*','/'
    left: _Node
    right: _Node


@dataclass
class _Between(_Node):
    operand: _Node
    low: _Node
    high: _Node
    negated: bool


@dataclass
class _In(_Node):
    operand: _Node
    options: Tuple[str, ...]
    negated: bool


@dataclass
class _Like(_Node):
    operand: _Node
    pattern: str
    escape: Optional[str]
    negated: bool
    #: Regex compiled from ``pattern`` exactly once, at parse time — both
    #: evaluation paths share it; nothing recompiles per message.
    regex: Optional["re.Pattern[str]"] = None


@dataclass
class _IsNull(_Node):
    operand: _Node
    negated: bool


# ---------------------------------------------------------------------------
# Parser (recursive descent, standard precedence)
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[_Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    def parse(self) -> _Node:
        node = self._or_expr()
        self._expect_end()
        return node

    # precedence climbing -------------------------------------------------

    def _or_expr(self) -> _Node:
        node = self._and_expr()
        while self._accept_kw("OR"):
            node = _Binary("OR", node, self._and_expr())
        return node

    def _and_expr(self) -> _Node:
        node = self._not_expr()
        while self._accept_kw("AND"):
            node = _Binary("AND", node, self._not_expr())
        return node

    def _not_expr(self) -> _Node:
        if self._accept_kw("NOT"):
            return _Unary("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> _Node:
        left = self._additive()
        token = self._peek()
        if token.kind == "op" and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self._advance()
            return _Binary(token.value, left, self._additive())
        negated = False
        if token.kind == "kw" and token.value == "NOT":
            nxt = self._peek(1)
            if nxt.kind == "kw" and nxt.value in ("BETWEEN", "IN", "LIKE"):
                self._advance()
                negated = True
                token = self._peek()
        if token.kind == "kw" and token.value == "BETWEEN":
            self._advance()
            low = self._additive()
            self._expect_kw("AND")
            high = self._additive()
            return _Between(left, low, high, negated)
        if token.kind == "kw" and token.value == "IN":
            self._advance()
            self._expect_op("(")
            options: List[str] = []
            while True:
                item = self._advance()
                if item.kind != "string":
                    raise SelectorError(
                        f"IN list requires string literals at position {item.pos}"
                    )
                options.append(item.value)
                sep = self._advance()
                if sep.kind == "op" and sep.value == ",":
                    continue
                if sep.kind == "op" and sep.value == ")":
                    break
                raise SelectorError(f"bad IN list at position {sep.pos}")
            return _In(left, tuple(options), negated)
        if token.kind == "kw" and token.value == "LIKE":
            self._advance()
            pattern_token = self._advance()
            if pattern_token.kind != "string":
                raise SelectorError(
                    f"LIKE requires a string pattern at position {pattern_token.pos}"
                )
            escape: Optional[str] = None
            if self._accept_kw("ESCAPE"):
                escape_token = self._advance()
                if escape_token.kind != "string" or len(escape_token.value) != 1:
                    raise SelectorError("ESCAPE requires a single-character string")
                escape = escape_token.value
            # Compile the pattern here so a bad one (e.g. a dangling
            # ESCAPE) fails at parse time, and so per-message evaluation
            # never recompiles it.
            regex = _like_to_regex(pattern_token.value, escape)
            return _Like(left, pattern_token.value, escape, negated, regex)
        if token.kind == "kw" and token.value == "IS":
            self._advance()
            is_negated = bool(self._accept_kw("NOT"))
            self._expect_kw("NULL")
            return _IsNull(left, is_negated)
        return left

    def _additive(self) -> _Node:
        node = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self._advance()
                node = _Binary(token.value, node, self._multiplicative())
            else:
                return node

    def _multiplicative(self) -> _Node:
        node = self._unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/"):
                self._advance()
                node = _Binary(token.value, node, self._unary())
            else:
                return node

    def _unary(self) -> _Node:
        token = self._peek()
        if token.kind == "op" and token.value == "-":
            self._advance()
            return _Unary("NEG", self._unary())
        if token.kind == "op" and token.value == "+":
            self._advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> _Node:
        token = self._advance()
        if token.kind == "op" and token.value == "(":
            node = self._or_expr()
            self._expect_op(")")
            return node
        if token.kind in ("int", "float", "string"):
            return _Literal(token.value)
        if token.kind == "kw" and token.value == "TRUE":
            return _Literal(True)
        if token.kind == "kw" and token.value == "FALSE":
            return _Literal(False)
        if token.kind == "ident":
            return _Property(token.value)
        raise SelectorError(
            f"unexpected token {token.value!r} at position {token.pos}"
            f" in selector {self._text!r}"
        )

    # token plumbing -------------------------------------------------------

    def _peek(self, ahead: int = 0) -> _Token:
        return self._tokens[min(self._index + ahead, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "end":
            self._index += 1
        return token

    def _accept_kw(self, keyword: str) -> bool:
        token = self._peek()
        if token.kind == "kw" and token.value == keyword:
            self._advance()
            return True
        return False

    def _expect_kw(self, keyword: str) -> None:
        if not self._accept_kw(keyword):
            token = self._peek()
            raise SelectorError(
                f"expected {keyword} at position {token.pos}, got {token.value!r}"
            )

    def _expect_op(self, op: str) -> None:
        token = self._advance()
        if token.kind != "op" or token.value != op:
            raise SelectorError(
                f"expected {op!r} at position {token.pos}, got {token.value!r}"
            )

    def _expect_end(self) -> None:
        token = self._peek()
        if token.kind != "end":
            raise SelectorError(
                f"trailing input at position {token.pos}: {token.value!r}"
            )


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------

_MISSING = object()


def _header_value(message: Message, name: str) -> Any:
    if name == "JMSMessageID":
        return message.message_id
    if name == "JMSCorrelationID":
        return message.correlation_id
    if name == "JMSPriority":
        return message.priority
    if name == "JMSTimestamp":
        return message.put_time_ms
    if name == "JMSDeliveryMode":
        return message.delivery_mode.value
    return _MISSING


def _lookup(message: Message, name: str) -> Any:
    """Property lookup; returns None for SQL NULL (absent)."""
    if name.startswith("JMS"):
        value = _header_value(message, name)
        if value is not _MISSING:
            return value
    return message.properties.get(name)


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _eval_value(node: _Node, message: Message) -> Any:
    """Evaluate a value-producing subexpression; None means SQL NULL."""
    if isinstance(node, _Literal):
        return node.value
    if isinstance(node, _Property):
        return _lookup(message, node.name)
    if isinstance(node, _Unary) and node.op == "NEG":
        value = _eval_value(node.operand, message)
        if value is None:
            return None
        if not _is_numeric(value):
            raise SelectorError("unary minus requires a numeric operand")
        return -value
    if isinstance(node, _Binary) and node.op in ("+", "-", "*", "/"):
        left = _eval_value(node.left, message)
        right = _eval_value(node.right, message)
        if left is None or right is None:
            return None
        if not (_is_numeric(left) and _is_numeric(right)):
            raise SelectorError(f"arithmetic {node.op!r} requires numeric operands")
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if right == 0:
            return None  # SQL: division by zero yields NULL rather than crashing
        return left / right
    # Boolean-producing nodes used in value position evaluate to their truth.
    return _eval_truth(node, message)


def _compare(op: str, left: Any, right: Any) -> Truth:
    if left is None or right is None:
        return None
    numeric = _is_numeric(left) and _is_numeric(right)
    if isinstance(left, bool) or isinstance(right, bool):
        if op == "=":
            return left is right if isinstance(right, bool) and isinstance(left, bool) else False
        if op == "<>":
            return not (left is right) if isinstance(right, bool) and isinstance(left, bool) else True
        return None  # ordering booleans is undefined in JMS selectors
    if isinstance(left, str) != isinstance(right, str):
        # Mixed string/number comparison: JMS says unknown.
        return None
    if not numeric and op not in ("=", "<>"):
        return None  # strings only support (in)equality in JMS selectors
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _like_to_regex(pattern: str, escape: Optional[str]) -> "re.Pattern[str]":
    out: List[str] = []
    i = 0
    while i < len(pattern):
        char = pattern[i]
        if escape is not None and char == escape:
            if i + 1 >= len(pattern):
                raise SelectorError("dangling ESCAPE character in LIKE pattern")
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
        i += 1
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _eval_truth(node: _Node, message: Message) -> Truth:
    """Evaluate a boolean subexpression with three-valued logic."""
    if isinstance(node, _Binary) and node.op == "AND":
        left = _eval_truth(node.left, message)
        if left is False:
            return False
        right = _eval_truth(node.right, message)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if isinstance(node, _Binary) and node.op == "OR":
        left = _eval_truth(node.left, message)
        if left is True:
            return True
        right = _eval_truth(node.right, message)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False
    if isinstance(node, _Unary) and node.op == "NOT":
        inner = _eval_truth(node.operand, message)
        if inner is None:
            return None
        return not inner
    if isinstance(node, _Binary) and node.op in ("=", "<>", "<", "<=", ">", ">="):
        return _compare(
            node.op,
            _eval_value(node.left, message),
            _eval_value(node.right, message),
        )
    if isinstance(node, _Between):
        value = _eval_value(node.operand, message)
        low = _eval_value(node.low, message)
        high = _eval_value(node.high, message)
        if value is None or low is None or high is None:
            return None
        if not (_is_numeric(value) and _is_numeric(low) and _is_numeric(high)):
            return None
        result: Truth = low <= value <= high
        return (not result) if node.negated else result
    if isinstance(node, _In):
        value = _eval_value(node.operand, message)
        if value is None:
            return None
        if not isinstance(value, str):
            return None
        result = value in node.options
        return (not result) if node.negated else result
    if isinstance(node, _Like):
        value = _eval_value(node.operand, message)
        if value is None:
            return None
        if not isinstance(value, str):
            return None
        regex = node.regex
        if regex is None:  # hand-built node; compile once and cache
            regex = node.regex = _like_to_regex(node.pattern, node.escape)
        result = bool(regex.match(value))
        return (not result) if node.negated else result
    if isinstance(node, _IsNull):
        value = _eval_value(node.operand, message)
        result = value is None
        return (not result) if node.negated else result
    if isinstance(node, _Literal):
        if isinstance(node.value, bool):
            return node.value
        raise SelectorError("non-boolean literal used as a condition")
    if isinstance(node, _Property):
        value = _lookup(message, node.name)
        if value is None:
            return None
        if isinstance(value, bool):
            return value
        raise SelectorError(
            f"property {node.name!r} is not boolean; cannot use as condition"
        )
    raise SelectorError(f"cannot evaluate node {node!r} as a condition")


# ---------------------------------------------------------------------------
# Compiler: lower the AST to nested closures
# ---------------------------------------------------------------------------
#
# Each AST node becomes one specialized closure over its children's
# closures, so Selector.__call__ dispatches straight through function
# calls instead of re-walking the tree with isinstance chains per message.
# The closures replicate _eval_truth / _eval_value exactly — including
# three-valued logic and error behaviour — and the interpreter stays as
# the reference implementation for differential tests.


def _is_constant(node: _Node) -> bool:
    """True when no property reference occurs anywhere under ``node``."""
    if isinstance(node, _Property):
        return False
    if isinstance(node, _Literal):
        return True
    if isinstance(node, _Unary):
        return _is_constant(node.operand)
    if isinstance(node, _Binary):
        return _is_constant(node.left) and _is_constant(node.right)
    if isinstance(node, _Between):
        return (
            _is_constant(node.operand)
            and _is_constant(node.low)
            and _is_constant(node.high)
        )
    if isinstance(node, (_In, _Like, _IsNull)):
        return _is_constant(node.operand)
    return False


def _fold(fn: "Any") -> "Any":
    """Evaluate a property-free closure once and pin its result.

    The fold runs at compile time with no message (constant closures
    never dereference one).  If evaluation raises a :class:`SelectorError`
    (e.g. arithmetic on a string literal), the error is captured and
    re-raised per call, so error timing matches the interpreter's.
    """
    try:
        constant = fn(None)
    except SelectorError as exc:
        def raising(message: Message, _exc: SelectorError = exc) -> Any:
            raise _exc
        return raising
    return lambda message: constant


def _compile_value(node: _Node) -> "Any":
    """Compile a value-producing subexpression to ``f(message) -> Any``."""
    if _is_constant(node):
        return _fold(_compile_value_inner(node))
    return _compile_value_inner(node)


def _compile_value_inner(node: _Node) -> "Any":
    if isinstance(node, _Literal):
        value = node.value
        return lambda message: value
    if isinstance(node, _Property):
        name = node.name
        return lambda message: _lookup(message, name)
    if isinstance(node, _Unary) and node.op == "NEG":
        operand = _compile_value(node.operand)

        def neg(message: Message) -> Any:
            value = operand(message)
            if value is None:
                return None
            if not _is_numeric(value):
                raise SelectorError("unary minus requires a numeric operand")
            return -value

        return neg
    if isinstance(node, _Binary) and node.op in ("+", "-", "*", "/"):
        left = _compile_value(node.left)
        right = _compile_value(node.right)
        op = node.op

        def arith(message: Message) -> Any:
            left_value = left(message)
            right_value = right(message)
            if left_value is None or right_value is None:
                return None
            if not (_is_numeric(left_value) and _is_numeric(right_value)):
                raise SelectorError(
                    f"arithmetic {op!r} requires numeric operands"
                )
            if op == "+":
                return left_value + right_value
            if op == "-":
                return left_value - right_value
            if op == "*":
                return left_value * right_value
            if right_value == 0:
                return None  # SQL: division by zero yields NULL
            return left_value / right_value

        return arith
    # Boolean-producing nodes used in value position evaluate to their truth.
    return _compile_truth_inner(node)


def _compile_truth(node: _Node) -> "Any":
    """Compile a boolean subexpression to ``f(message) -> Truth``."""
    if _is_constant(node):
        return _fold(_compile_truth_inner(node))
    return _compile_truth_inner(node)


def _compile_truth_inner(node: _Node) -> "Any":
    if isinstance(node, _Binary) and node.op == "AND":
        left = _compile_truth(node.left)
        right = _compile_truth(node.right)

        def and_(message: Message) -> Truth:
            left_value = left(message)
            if left_value is False:
                return False
            right_value = right(message)
            if right_value is False:
                return False
            if left_value is None or right_value is None:
                return None
            return True

        return and_
    if isinstance(node, _Binary) and node.op == "OR":
        left = _compile_truth(node.left)
        right = _compile_truth(node.right)

        def or_(message: Message) -> Truth:
            left_value = left(message)
            if left_value is True:
                return True
            right_value = right(message)
            if right_value is True:
                return True
            if left_value is None or right_value is None:
                return None
            return False

        return or_
    if isinstance(node, _Unary) and node.op == "NOT":
        operand = _compile_truth(node.operand)

        def not_(message: Message) -> Truth:
            inner = operand(message)
            if inner is None:
                return None
            return not inner

        return not_
    if isinstance(node, _Binary) and node.op in ("=", "<>", "<", "<=", ">", ">="):
        left = _compile_value(node.left)
        right = _compile_value(node.right)
        op = node.op
        return lambda message: _compare(op, left(message), right(message))
    if isinstance(node, _Between):
        operand = _compile_value(node.operand)
        low = _compile_value(node.low)
        high = _compile_value(node.high)
        negated = node.negated

        def between(message: Message) -> Truth:
            value = operand(message)
            low_value = low(message)
            high_value = high(message)
            if value is None or low_value is None or high_value is None:
                return None
            if not (
                _is_numeric(value)
                and _is_numeric(low_value)
                and _is_numeric(high_value)
            ):
                return None
            result: Truth = low_value <= value <= high_value
            return (not result) if negated else result

        return between
    if isinstance(node, _In):
        operand = _compile_value(node.operand)
        options = node.options
        negated = node.negated

        def in_(message: Message) -> Truth:
            value = operand(message)
            if value is None:
                return None
            if not isinstance(value, str):
                return None
            result = value in options
            return (not result) if negated else result

        return in_
    if isinstance(node, _Like):
        operand = _compile_value(node.operand)
        regex = node.regex
        if regex is None:  # hand-built node; compile once and cache
            regex = node.regex = _like_to_regex(node.pattern, node.escape)
        negated = node.negated

        def like(message: Message) -> Truth:
            value = operand(message)
            if value is None:
                return None
            if not isinstance(value, str):
                return None
            result = bool(regex.match(value))
            return (not result) if negated else result

        return like
    if isinstance(node, _IsNull):
        operand = _compile_value(node.operand)
        negated = node.negated

        def is_null(message: Message) -> Truth:
            result = operand(message) is None
            return (not result) if negated else result

        return is_null
    if isinstance(node, _Literal):
        if isinstance(node.value, bool):
            value = node.value
            return lambda message: value

        def bad_literal(message: Message) -> Truth:
            raise SelectorError("non-boolean literal used as a condition")

        return bad_literal
    if isinstance(node, _Property):
        name = node.name

        def prop_truth(message: Message) -> Truth:
            value = _lookup(message, name)
            if value is None:
                return None
            if isinstance(value, bool):
                return value
            raise SelectorError(
                f"property {name!r} is not boolean; cannot use as condition"
            )

        return prop_truth
    raise SelectorError(f"cannot evaluate node {node!r} as a condition")


# ---------------------------------------------------------------------------
# SQL lowering: translate the AST to a SQLite WHERE clause (pushdown)
# ---------------------------------------------------------------------------
#
# The SQL-backed queue store (repro.mq.sqlstore) keeps message headers in
# indexed columns and properties as a JSON1 document, so a selector that
# lowers to SQL turns get(selector=...) into an index scan instead of a
# Python linear scan.  The lowering is *semantics-preserving*, never
# best-effort:
#
# * Three-valued logic maps onto SQL NULL propagation directly (AND/OR/
#   NOT/BETWEEN/IN/LIKE all share SQL-92 unknown semantics).
# * JMS type rules that SQLite would get wrong (mixed string/number
#   comparisons are unknown, booleans only support (in)equality, string
#   ordering is unknown) are compiled into CASE expressions over
#   json_type(), not left to SQLite's type-affinity comparisons.
# * Any node whose Python evaluation can raise per message (a bare
#   non-boolean property used as a condition, arithmetic or unary minus
#   over property operands) makes the WHOLE selector non-pushable: SQL
#   cannot raise, so pushing a sibling clause could silently skip a
#   message the Python evaluators would have raised on.
# * A non-pushable conjunct that can NOT raise is dropped from an AND,
#   yielding a weaker *necessary* condition: the clause is then marked
#   inexact and the store re-checks every candidate with the compiled
#   Python predicate.  (OR and NOT admit no such weakening.)
#
# The generated clause assumes the executing connection has
# ``PRAGMA case_sensitive_like=ON`` (JMS LIKE is case sensitive); the
# sqlstore connection sets it at open time.


@dataclass
class SelectorSql:
    """A selector lowered to a SQL ``WHERE`` fragment.

    Attributes:
        clause: SQL boolean expression over the sqlstore ``messages``
            columns (``priority``, ``put_time_ms``, ``message_id``,
            ``correlation_id``, ``delivery_mode``) and the ``properties``
            JSON1 document.  Selected rows are the ones where the clause
            is SQL TRUE (unknown/NULL never selects, as in JMS).
        params: Positional bind parameters for ``clause``.
        exact: When true the clause reproduces the Python evaluators
            exactly and matching rows need no re-check (rows whose
            ``properties`` column is NULL — unencodable property sets —
            are the store-level exception and are always re-checked).
            When false the clause is only a necessary condition: every
            match must be confirmed by the Python predicate.
        uses_properties: Whether the clause touches the ``properties``
            JSON document at all (lets the store skip the opaque-row
            carve-out for pure header selectors).
        index_hints: Necessary conditions extracted from the root AND
            chain, in a shape the store can answer from its typed
            property index instead of parsing JSON per row.  Each hint
            is one of ``('eq', key, kind, value)`` (kind ``'n'``/``'s'``/
            ``'b'``), ``('range', key, low, high)`` (numeric BETWEEN) or
            ``('in', key, options)`` (string IN).  A row where the
            selector is TRUE always satisfies every hint, so ANDing them
            onto the WHERE clause never changes which messages match —
            it only lets the engine drive the scan from an index.
    """

    clause: str
    params: List[Any]
    exact: bool
    uses_properties: bool
    index_hints: Tuple[Tuple[Any, ...], ...] = ()


#: Header pseudo-properties that live in dedicated sqlstore columns.
#: name -> (column, kind, nullable)
_HEADER_COLUMNS = {
    "JMSMessageID": ("message_id", "string", False),
    "JMSCorrelationID": ("correlation_id", "string", True),
    "JMSPriority": ("priority", "number", False),
    "JMSTimestamp": ("put_time_ms", "number", False),
    "JMSDeliveryMode": ("delivery_mode", "string", False),
}

#: SQLite INTEGER is a signed 64-bit value; a Python int literal outside
#: this range cannot be bound as a parameter (and json_extract degrades
#: such property values to REAL), so comparisons against one stay in
#: Python.
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


class _NoSql:
    """Marker: this subtree cannot be pushed down.

    ``may_raise`` records whether Python evaluation of the subtree can
    raise per message; a raising subtree poisons every enclosing
    combinator (see the module comment), while a merely unpushable one
    may still be dropped from an AND.
    """

    __slots__ = ("may_raise",)

    def __init__(self, may_raise: bool) -> None:
        self.may_raise = may_raise


class _SqlBool:
    """A lowered boolean subexpression."""

    __slots__ = ("clause", "params", "exact")

    def __init__(self, clause: str, params: List[Any], exact: bool) -> None:
        self.clause = clause
        self.params = params
        self.exact = exact


class _SqlVal:
    """A lowered value subexpression with its static type.

    ``kind`` is one of ``'number'``/``'string'``/``'bool'`` (literals and
    header columns), ``'null'`` (a constant-folded unknown), or
    ``'dynamic'`` (a JSON property whose runtime type is unknown).  The
    slot accessors yield SQL expressions that evaluate to the value when
    it has the slot's type and to NULL otherwise, which lets comparisons
    encode the JMS type rules as CASE branches.
    """

    __slots__ = ("kind", "expr", "params", "path", "nullable")

    def __init__(
        self,
        kind: str,
        expr: str = "NULL",
        params: Optional[List[Any]] = None,
        path: Optional[str] = None,
        nullable: bool = False,
    ) -> None:
        self.kind = kind
        self.expr = expr
        self.params = params or []
        self.path = path
        self.nullable = nullable

    def _dynamic_slot(self, type_cond: str) -> Tuple[str, List[Any]]:
        return (
            "(CASE WHEN json_type(properties, ?) " + type_cond +
            " THEN json_extract(properties, ?) END)",
            [self.path, self.path],
        )

    def num_slot(self) -> Tuple[str, List[Any]]:
        if self.kind == "number":
            return self.expr, list(self.params)
        if self.kind == "dynamic":
            return self._dynamic_slot("IN ('integer','real')")
        return "NULL", []

    def str_slot(self) -> Tuple[str, List[Any]]:
        if self.kind == "string":
            return self.expr, list(self.params)
        if self.kind == "dynamic":
            return self._dynamic_slot("= 'text'")
        return "NULL", []

    def bool_slot(self) -> Tuple[str, List[Any]]:
        if self.kind == "bool":
            return self.expr, list(self.params)
        if self.kind == "dynamic":
            return self._dynamic_slot("IN ('true','false')")
        return "NULL", []

    def known_cond(self) -> Tuple[str, List[Any]]:
        """SQL condition: the value is not SQL NULL."""
        if self.kind == "null":
            return "0", []
        if self.kind == "dynamic":
            return "json_type(properties, ?) IS NOT NULL", [self.path]
        if self.nullable:
            return f"{self.expr} IS NOT NULL", list(self.params)
        return "1", []


def _json_path(name: str) -> str:
    # Identifiers may contain '.' and '$'; quoting the key keeps them
    # literal parts of one property name, not path steps.
    return '$."' + name + '"'


def _truth_const(value: Truth) -> _SqlBool:
    if value is True:
        return _SqlBool("1", [], True)
    if value is False:
        return _SqlBool("0", [], True)
    return _SqlBool("NULL", [], True)


def _sql_value(node: _Node) -> "Any":
    """Lower a value subexpression; returns :class:`_SqlVal` or :class:`_NoSql`."""
    if _is_constant(node):
        try:
            value = _eval_value(node, None)  # constants never touch the message
        except SelectorError:
            return _NoSql(True)  # raises for every message; stay in Python
        if value is None:
            return _SqlVal("null")
        if isinstance(value, bool):
            return _SqlVal("bool", "?", [1 if value else 0])
        if isinstance(value, str):
            return _SqlVal("string", "?", [value])
        if isinstance(value, int) and not _INT64_MIN <= value <= _INT64_MAX:
            return _NoSql(False)
        return _SqlVal("number", "?", [value])
    if isinstance(node, _Property):
        header = _HEADER_COLUMNS.get(node.name)
        if header is not None:
            column, kind, nullable = header
            return _SqlVal(kind, column, nullable=nullable)
        return _SqlVal("dynamic", path=_json_path(node.name))
    # Non-constant NEG / arithmetic: the operand may turn out non-numeric
    # at match time, which raises in Python but cannot raise in SQL.
    if isinstance(node, _Unary) and node.op == "NEG":
        return _NoSql(True)
    if isinstance(node, _Binary) and node.op in ("+", "-", "*", "/"):
        return _NoSql(True)
    # Boolean-producing nodes in value position evaluate to their truth in
    # Python; comparing truths is exotic — keep it out of the pushdown.
    return _NoSql(True)


def _sql_compare(op: str, left: _SqlVal, right: _SqlVal) -> _SqlBool:
    """Lower ``left op right`` pinning the JMS comparison type rules."""
    ordering = op not in ("=", "<>")
    if left.kind == "null" or right.kind == "null":
        return _truth_const(None)
    static = "dynamic" not in (left.kind, right.kind)
    if static:
        if left.kind == right.kind:
            if left.kind == "bool" and ordering:
                return _truth_const(None)  # booleans do not order
            if left.kind == "string" and ordering:
                return _truth_const(None)  # strings only (in)equality
            return _SqlBool(
                f"({left.expr} {op} {right.expr})",
                list(left.params) + list(right.params),
                True,
            )
        if "bool" in (left.kind, right.kind) and not ordering:
            # bool vs non-bool: definitely-false '=' / definitely-true '<>'
            # ... unless the non-bool side is NULL (then unknown).
            other = right if left.kind == "bool" else left
            const = "0" if op == "=" else "1"
            if other.nullable:
                return _SqlBool(
                    f"(CASE WHEN {other.expr} IS NULL THEN NULL"
                    f" ELSE {const} END)",
                    list(other.params),
                    True,
                )
            return _SqlBool(const, [], True)
        # Mixed string/number (any op), or bool ordering: unknown.
        return _truth_const(None)
    # At least one dynamic operand: dispatch on the runtime JSON type.
    ln, lnp = left.num_slot()
    rn, rnp = right.num_slot()
    if ordering:
        # Only numbers order in JMS; every other typing is unknown.
        return _SqlBool(
            f"(CASE WHEN {ln} IS NOT NULL AND {rn} IS NOT NULL"
            f" THEN ({ln} {op} {rn}) ELSE NULL END)",
            lnp + rnp + lnp + rnp,
            True,
        )
    ls, lsp = left.str_slot()
    rs, rsp = right.str_slot()
    lb, lbp = left.bool_slot()
    rb, rbp = right.bool_slot()
    lk, lkp = left.known_cond()
    rk, rkp = right.known_cond()
    const = "0" if op == "=" else "1"
    clause = (
        f"(CASE"
        f" WHEN {ln} IS NOT NULL AND {rn} IS NOT NULL THEN ({ln} {op} {rn})"
        f" WHEN {ls} IS NOT NULL AND {rs} IS NOT NULL THEN ({ls} {op} {rs})"
        f" WHEN {lb} IS NOT NULL AND {rb} IS NOT NULL THEN ({lb} {op} {rb})"
        f" WHEN ({lb} IS NOT NULL OR {rb} IS NOT NULL)"
        f" AND {lk} AND {rk} THEN {const}"
        f" ELSE NULL END)"
    )
    params = (
        lnp + rnp + lnp + rnp
        + lsp + rsp + lsp + rsp
        + lbp + rbp + lbp + rbp
        + lbp + rbp + lkp + rkp
    )
    return _SqlBool(clause, params, True)


def _sql_truth(node: _Node) -> "Any":
    """Lower a boolean subexpression; returns :class:`_SqlBool` or :class:`_NoSql`."""
    if _is_constant(node):
        try:
            return _truth_const(_eval_truth(node, None))
        except SelectorError:
            return _NoSql(True)
    if isinstance(node, _Binary) and node.op == "AND":
        left = _sql_truth(node.left)
        right = _sql_truth(node.right)
        for child in (left, right):
            if isinstance(child, _NoSql) and child.may_raise:
                return _NoSql(True)
        if isinstance(left, _NoSql) and isinstance(right, _NoSql):
            return _NoSql(False)
        if isinstance(left, _NoSql):
            # Dropping a conjunct weakens the clause to a necessary
            # condition; candidates must be re-checked in Python.
            return _SqlBool(right.clause, right.params, False)
        if isinstance(right, _NoSql):
            return _SqlBool(left.clause, left.params, False)
        return _SqlBool(
            f"({left.clause} AND {right.clause})",
            left.params + right.params,
            left.exact and right.exact,
        )
    if isinstance(node, _Binary) and node.op == "OR":
        left = _sql_truth(node.left)
        right = _sql_truth(node.right)
        for child in (left, right):
            if isinstance(child, _NoSql):
                # A disjunct cannot be dropped (it can only *add*
                # matches), so any unpushable side sinks the OR.
                return _NoSql(child.may_raise or any(
                    isinstance(c, _NoSql) and c.may_raise
                    for c in (left, right)
                ))
        return _SqlBool(
            f"({left.clause} OR {right.clause})",
            left.params + right.params,
            left.exact and right.exact,
        )
    if isinstance(node, _Unary) and node.op == "NOT":
        inner = _sql_truth(node.operand)
        if isinstance(inner, _NoSql):
            return inner
        if not inner.exact:
            # NOT of a weakened (necessary) condition is not a necessary
            # condition of the negation; no sound clause exists.
            return _NoSql(False)
        return _SqlBool(f"(NOT {inner.clause})", inner.params, True)
    if isinstance(node, _Binary) and node.op in ("=", "<>", "<", "<=", ">", ">="):
        left = _sql_value(node.left)
        right = _sql_value(node.right)
        for child in (left, right):
            if isinstance(child, _NoSql):
                return _NoSql(child.may_raise or any(
                    isinstance(c, _NoSql) and c.may_raise
                    for c in (left, right)
                ))
        return _sql_compare(node.op, left, right)
    if isinstance(node, _Between):
        operand = _sql_value(node.operand)
        low = _sql_value(node.low)
        high = _sql_value(node.high)
        sides = (operand, low, high)
        for child in sides:
            if isinstance(child, _NoSql):
                return _NoSql(any(
                    isinstance(c, _NoSql) and c.may_raise for c in sides
                ))
        vn, vnp = operand.num_slot()
        lo, lop = low.num_slot()
        hi, hip = high.num_slot()
        clause = f"({vn} BETWEEN {lo} AND {hi})"
        if node.negated:
            clause = f"(NOT {clause})"
        return _SqlBool(clause, vnp + lop + hip, True)
    if isinstance(node, _In):
        operand = _sql_value(node.operand)
        if isinstance(operand, _NoSql):
            return operand
        vs, vsp = operand.str_slot()
        marks = ", ".join("?" for _ in node.options)
        clause = f"({vs} IN ({marks}))"
        if node.negated:
            clause = f"(NOT {clause})"
        return _SqlBool(clause, vsp + list(node.options), True)
    if isinstance(node, _Like):
        operand = _sql_value(node.operand)
        if isinstance(operand, _NoSql):
            return operand
        vs, vsp = operand.str_slot()
        if node.escape is None:
            clause = f"({vs} LIKE ?)"
            params = vsp + [node.pattern]
        else:
            clause = f"({vs} LIKE ? ESCAPE ?)"
            params = vsp + [node.pattern, node.escape]
        if node.negated:
            clause = f"(NOT {clause})"
        return _SqlBool(clause, params, True)
    if isinstance(node, _IsNull):
        operand = _sql_value(node.operand)
        if isinstance(operand, _NoSql):
            return operand
        if operand.kind == "dynamic":
            clause = "(json_type(properties, ?) IS NULL)"
            params: List[Any] = [operand.path]
        elif operand.kind == "null":
            clause = "1"
            params = []
        elif operand.nullable:
            clause = f"({operand.expr} IS NULL)"
            params = list(operand.params)
        else:
            clause = "0"  # literals and NOT NULL columns are never null
            params = []
        if node.negated:
            clause = f"(NOT {clause})"
        return _SqlBool(clause, params, True)
    if isinstance(node, _Property):
        # Bare property as the whole condition: raises in Python when the
        # value is non-boolean, so it cannot be pushed (see module note).
        return _NoSql(True)
    if isinstance(node, _Literal):
        return _NoSql(True)  # non-boolean literal condition raises
    return _NoSql(True)


def _uses_properties(node: _Node) -> bool:
    """Whether any property reference resolves to the JSON document."""
    if isinstance(node, _Property):
        return node.name not in _HEADER_COLUMNS
    if isinstance(node, _Unary):
        return _uses_properties(node.operand)
    if isinstance(node, _Binary):
        return _uses_properties(node.left) or _uses_properties(node.right)
    if isinstance(node, _Between):
        return (
            _uses_properties(node.operand)
            or _uses_properties(node.low)
            or _uses_properties(node.high)
        )
    if isinstance(node, (_In, _Like, _IsNull)):
        return _uses_properties(node.operand)
    return False


# Index hints: the store keeps a typed side index of property values
# (``message_props``), so an equality/range/IN conjunct against a plain
# property can be answered with an index seek instead of a JSON parse
# per scanned row.  A hint must be a *necessary* condition of the whole
# selector being TRUE; only positive conjuncts along the root AND chain
# qualify (anything under OR/NOT constrains nothing).  The typing rules
# make each shape exact-by-kind:
#
# * ``p = literal`` is TRUE only when the value has the literal's kind
#   (bool = non-bool is definitely false, string/number mixes are
#   unknown), so seeking the matching kind slot never misses a match.
# * ``p BETWEEN lo AND hi`` is unknown unless the value is a non-bool
#   number, so a numeric range seek is safe.
# * ``p IN (...)`` is unknown unless the value is a string.

_NO_HINT = object()


def _hint_value(node: _Node) -> Any:
    """Constant-fold a comparison operand into an indexable value.

    Returns :data:`_NO_HINT` when the operand is not a constant, folds
    to NULL, raises, or falls outside what the typed index stores
    (int64-range ints, finite floats, strings, bools).
    """
    if not _is_constant(node):
        return _NO_HINT
    try:
        value = _eval_value(node, None)
    except SelectorError:
        return _NO_HINT
    if isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value if _INT64_MIN <= value <= _INT64_MAX else _NO_HINT
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return _NO_HINT
        return value
    return _NO_HINT


def _hint_property(node: _Node) -> Optional[str]:
    """The property name for a hintable operand (headers have columns)."""
    if isinstance(node, _Property) and node.name not in _HEADER_COLUMNS:
        return node.name
    return None


def _conjunct_hint(node: _Node) -> Optional[Tuple[Any, ...]]:
    if isinstance(node, _Binary) and node.op == "=":
        for prop, other in ((node.left, node.right), (node.right, node.left)):
            name = _hint_property(prop)
            if name is None:
                continue
            value = _hint_value(other)
            if value is _NO_HINT:
                continue
            if isinstance(value, bool):
                return ("eq", name, "b", 1 if value else 0)
            if isinstance(value, str):
                return ("eq", name, "s", value)
            return ("eq", name, "n", value)
        return None
    if isinstance(node, _Between) and not node.negated:
        name = _hint_property(node.operand)
        if name is None:
            return None
        low = _hint_value(node.low)
        high = _hint_value(node.high)
        for bound in (low, high):
            if bound is _NO_HINT or isinstance(bound, (bool, str)):
                return None
        return ("range", name, low, high)
    if isinstance(node, _In) and not node.negated and node.options:
        name = _hint_property(node.operand)
        if name is None:
            return None
        return ("in", name, tuple(node.options))
    return None


def _index_hints(node: _Node) -> Tuple[Tuple[Any, ...], ...]:
    """Collect index hints from the positive root AND chain."""
    if isinstance(node, _Binary) and node.op == "AND":
        return _index_hints(node.left) + _index_hints(node.right)
    hint = _conjunct_hint(node)
    return (hint,) if hint is not None else ()


class Selector:
    """A compiled message selector; callable as ``selector(message) -> bool``."""

    def __init__(self, text: str) -> None:
        self.text = text
        self._root = _Parser(_tokenize(text), text).parse()
        # Force boolean shape errors at compile time where possible:
        if isinstance(self._root, (_Literal,)) and not isinstance(
            self._root.value, bool
        ):
            raise SelectorError("selector must be a boolean expression")
        self._compiled = _compile_truth(self._root)
        self._sql: "Any" = False  # False = not lowered yet (None is a result)

    def matches(self, message: Message) -> bool:
        """True only when the expression is definitely true for ``message``."""
        return self._compiled(message) is True

    def interpreted_matches(self, message: Message) -> bool:
        """Reference evaluation via the tree-walking interpreter.

        Same contract as :meth:`matches`; exists so differential tests can
        pin the compiled closures to the interpreter's semantics.
        """
        return _eval_truth(self._root, message) is True

    def to_sql(self) -> Optional[SelectorSql]:
        """Lower the selector to a SQL ``WHERE`` fragment, if pushable.

        Returns ``None`` when no sound SQL clause exists — any part of
        the expression could raise per message, or the only lowering
        would change which messages are selected — in which case callers
        must fall back to a Python scan with :meth:`matches`.  The result
        is computed once and cached.
        """
        if self._sql is False:
            lowered = _sql_truth(self._root)
            if isinstance(lowered, _NoSql):
                self._sql = None
            else:
                self._sql = SelectorSql(
                    clause=lowered.clause,
                    params=lowered.params,
                    exact=lowered.exact,
                    uses_properties=_uses_properties(self._root),
                    index_hints=_index_hints(self._root),
                )
        return self._sql

    def __call__(self, message: Message) -> bool:
        return self.matches(message)

    def __repr__(self) -> str:
        return f"Selector({self.text!r})"


def compile_selector(text: Optional[str]) -> Optional[Selector]:
    """Compile selector ``text``; ``None``/blank selects every message."""
    if text is None or not text.strip():
        return None
    return Selector(text)


def compile_selector_sql(
    selector: "Optional[str | Selector]",
) -> Optional[SelectorSql]:
    """Lower a selector (text or compiled) to SQL; ``None`` if not pushable.

    Blank/absent selectors select everything and also return ``None`` —
    there is no clause to push, the caller simply omits the WHERE filter.
    """
    if selector is None:
        return None
    if isinstance(selector, str):
        compiled = compile_selector(selector)
        if compiled is None:
            return None
        return compiled.to_sql()
    return selector.to_sql()
