"""JMS-flavoured API: connections, sessions, producers, consumers.

The paper positions conditional messaging as an extension applications use
*alongside* the standard JMS/MQ API ("an application can continue to use
JMS/MQSeries directly", section 2.3).  This module is that standard API
over our queue-manager substrate:

* :class:`Connection` binds an application to its queue manager;
* :class:`Session` is the unit of transactionality — a *transacted*
  session batches produced and consumed messages until ``commit()``;
* :class:`MessageProducer` / :class:`MessageConsumer` send to and receive
  from destinations, where a destination is a local queue name or
  ``"queue@manager"`` for a queue on a remote manager;
* consumers accept JMS selector strings (see :mod:`repro.mq.selectors`).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ConnectionClosedError, MQError
from repro.mq.manager import QueueManager
from repro.mq.message import (
    DEFAULT_PRIORITY,
    DeliveryMode,
    Message,
    PropertyValue,
)
from repro.mq.selectors import Selector, compile_selector
from repro.mq.transactions import MQTransaction


def parse_destination(destination: str) -> Tuple[str, Optional[str]]:
    """Split ``"queue"`` or ``"queue@manager"`` into (queue, manager)."""
    if not destination:
        raise MQError("destination must be non-empty")
    if "@" in destination:
        queue_name, _, manager_name = destination.partition("@")
        if not queue_name or not manager_name:
            raise MQError(f"bad destination {destination!r}")
        return queue_name, manager_name
    return destination, None


class Connection:
    """An application's connection to its queue manager."""

    def __init__(self, manager: QueueManager) -> None:
        self.manager = manager
        self._closed = False
        self._sessions: List["Session"] = []

    def create_session(self, transacted: bool = False) -> "Session":
        """Open a session; transacted sessions batch work until commit."""
        self._require_open()
        session = Session(self, transacted=transacted)
        self._sessions.append(session)
        return session

    def close(self) -> None:
        """Close the connection and roll back any open transacted work."""
        if self._closed:
            return
        for session in self._sessions:
            session.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError("connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class Session:
    """A single-threaded context for producing and consuming messages."""

    def __init__(self, connection: Connection, transacted: bool = False) -> None:
        self.connection = connection
        self.transacted = transacted
        self._closed = False
        self._transaction: Optional[MQTransaction] = None
        if transacted:
            self._transaction = connection.manager.begin()

    # -- factories ------------------------------------------------------------

    def create_producer(self, destination: Optional[str] = None) -> "MessageProducer":
        """Create a producer, optionally bound to a default destination."""
        self._require_open()
        return MessageProducer(self, destination)

    def create_consumer(
        self, destination: str, selector: Optional[str] = None
    ) -> "MessageConsumer":
        """Create a consumer on a local queue, with an optional selector."""
        self._require_open()
        return MessageConsumer(self, destination, selector)

    def create_message(
        self,
        body: Any,
        properties: Optional[Mapping[str, PropertyValue]] = None,
        correlation_id: Optional[str] = None,
        priority: int = DEFAULT_PRIORITY,
        persistent: bool = True,
        expiry_ms: Optional[int] = None,
        reply_to: Optional[str] = None,
    ) -> Message:
        """Convenience constructor for a message bound to this session."""
        reply_to_queue = reply_to_manager = None
        if reply_to is not None:
            reply_to_queue, reply_to_manager = parse_destination(reply_to)
            if reply_to_manager is None:
                reply_to_manager = self.connection.manager.name
        return Message(
            body=body,
            properties=dict(properties or {}),
            correlation_id=correlation_id,
            priority=priority,
            delivery_mode=(
                DeliveryMode.PERSISTENT if persistent else DeliveryMode.NON_PERSISTENT
            ),
            expiry_ms=expiry_ms,
            reply_to_queue=reply_to_queue,
            reply_to_manager=reply_to_manager,
        )

    # -- transactionality ---------------------------------------------------------

    @property
    def transaction(self) -> Optional[MQTransaction]:
        """The session's current transaction (transacted sessions only)."""
        return self._transaction

    def commit(self) -> None:
        """Commit the session's unit of work and start a fresh one."""
        self._require_open()
        if not self.transacted or self._transaction is None:
            raise MQError("commit on a non-transacted session")
        self._transaction.commit()
        self._transaction = self.connection.manager.begin()

    def rollback(self) -> None:
        """Roll back the session's unit of work and start a fresh one."""
        self._require_open()
        if not self.transacted or self._transaction is None:
            raise MQError("rollback on a non-transacted session")
        self._transaction.rollback()
        self._transaction = self.connection.manager.begin()

    def close(self) -> None:
        """Close the session; an open transacted unit of work rolls back."""
        if self._closed:
            return
        if self._transaction is not None and self._transaction.active:
            self._transaction.rollback()
        self._transaction = None
        self._closed = True

    def _require_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError("session is closed")
        self.connection._require_open()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self.transacted and self._transaction is not None and self._transaction.active:
            if exc_type is None:
                self._transaction.commit()
            else:
                self._transaction.rollback()
            self._transaction = None
        self.close()


class MessageProducer:
    """Sends messages to local or remote destinations."""

    def __init__(self, session: Session, destination: Optional[str]) -> None:
        self.session = session
        self.destination = destination

    def send(self, message: Message, destination: Optional[str] = None) -> Message:
        """Send ``message`` to ``destination`` (or the producer default)."""
        self.session._require_open()
        dest = destination or self.destination
        if dest is None:
            raise MQError("producer has no destination")
        queue_name, manager_name = parse_destination(dest)
        manager = self.session.connection.manager
        transaction = self.session.transaction
        if manager_name is None or manager_name == manager.name:
            if manager.resolve_remote(queue_name) is None:
                manager.ensure_queue(queue_name)
            return manager.put(queue_name, message, transaction=transaction)
        manager.put_remote(
            manager_name, queue_name, message, transaction=transaction
        )
        return message

    def send_body(self, body: Any, destination: Optional[str] = None, **kwargs: Any) -> Message:
        """Build a message from ``body`` (via the session) and send it."""
        message = self.session.create_message(body, **kwargs)
        return self.send(message, destination=destination)


class MessageConsumer:
    """Receives messages from one local queue, optionally filtered."""

    def __init__(
        self, session: Session, destination: str, selector: Optional[str]
    ) -> None:
        queue_name, manager_name = parse_destination(destination)
        manager = session.connection.manager
        if manager_name is not None and manager_name != manager.name:
            raise MQError("consumers must be local to their queue manager")
        manager.ensure_queue(queue_name)
        self.session = session
        self.queue_name = queue_name
        self.selector: Optional[Selector] = compile_selector(selector)
        self._listener: Optional[Any] = None

    def set_listener(self, listener) -> None:
        """Push delivery (JMS MessageListener): call ``listener(message)``
        for each matching message as it arrives.

        The listener consumes outside any session transaction (push
        delivery has no unit-of-work boundary to join).  Messages already
        waiting are delivered immediately; later puts deliver at put
        time.  A consumer has at most one listener; setting ``None``
        detaches it.
        """
        first_attach = self._listener is None and listener is not None
        self._listener = listener
        if listener is None:
            return
        self._drain_to_listener()
        if first_attach and not getattr(self, "_subscribed", False):
            self._subscribed = True
            self.session.connection.manager.queue(self.queue_name).subscribe(
                lambda _message: self._drain_to_listener()
            )

    def _drain_to_listener(self) -> None:
        if self._listener is None:
            return
        manager = self.session.connection.manager
        while True:
            message = manager.get_wait(self.queue_name, selector=self.selector)
            if message is None:
                return
            self._listener(message)

    def receive(self) -> Optional[Message]:
        """Get the next matching message, or ``None`` if the queue is empty.

        In a transacted session the receive joins the unit of work.
        """
        self.session._require_open()
        manager = self.session.connection.manager
        return manager.get_wait(
            self.queue_name,
            selector=self.selector,
            transaction=self.session.transaction,
        )

    def receive_all(self, limit: Optional[int] = None) -> List[Message]:
        """Drain every currently available matching message (up to limit)."""
        messages: List[Message] = []
        while limit is None or len(messages) < limit:
            message = self.receive()
            if message is None:
                break
            messages.append(message)
        return messages

    def browse(self) -> Iterator[Message]:
        """Peek at matching messages without consuming them."""
        self.session._require_open()
        manager = self.session.connection.manager
        return manager.browse(self.queue_name, selector=self.selector)
