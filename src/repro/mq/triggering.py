"""Queue triggering: activate consumers when work arrives (MQSeries style).

MQSeries *triggering* starts an application when a queue needs service: a
trigger monitor watches an initiation queue; the queue manager writes a
trigger message there when a application queue's trigger condition fires
(first message, every message, or depth threshold).  This module provides
that mechanism, which the workloads use to model receivers that wake on
demand instead of polling.

Usage::

    monitor = TriggerMonitor(manager)
    monitor.define_trigger("ORDERS.Q", TriggerType.FIRST,
                           on_trigger=start_order_processor)

``on_trigger`` receives a :class:`TriggerEvent`; with ``TriggerType.DEPTH``
the event fires when the queue's visible depth reaches ``depth``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Optional

from repro.errors import MQError
from repro.mq.manager import QueueManager
from repro.mq.message import Message


class TriggerType(Enum):
    """When a trigger fires (the MQSeries vocabulary)."""

    #: when a message arrives on an empty queue (depth 0 -> 1)
    FIRST = "first"
    #: on every arriving message
    EVERY = "every"
    #: when the queue depth reaches a threshold
    DEPTH = "depth"


@dataclass(frozen=True)
class TriggerEvent:
    """What a fired trigger tells the application."""

    queue: str
    trigger_type: TriggerType
    depth: int
    at_ms: int


@dataclass
class _TriggerDefinition:
    queue: str
    trigger_type: TriggerType
    threshold: int
    callback: Callable[[TriggerEvent], None]
    armed: bool = True
    fired_count: int = 0


class TriggerMonitor:
    """Watches queues on one manager and fires trigger callbacks.

    FIRST and DEPTH triggers are *armed*: after firing they stay quiet
    until :meth:`rearm` (typically called when the consumer has drained
    the queue), mirroring how MQ avoids a trigger storm while the
    application is already running.
    """

    def __init__(self, manager: QueueManager) -> None:
        self.manager = manager
        self._definitions: Dict[str, _TriggerDefinition] = {}

    def define_trigger(
        self,
        queue_name: str,
        trigger_type: TriggerType,
        on_trigger: Callable[[TriggerEvent], None],
        depth: int = 1,
    ) -> None:
        """Define the trigger for a queue (one per queue)."""
        if queue_name in self._definitions:
            raise MQError(f"queue {queue_name!r} already has a trigger")
        if trigger_type is TriggerType.DEPTH and depth < 1:
            raise MQError("depth threshold must be >= 1")
        self.manager.ensure_queue(queue_name)
        definition = _TriggerDefinition(
            queue=queue_name,
            trigger_type=trigger_type,
            threshold=depth if trigger_type is TriggerType.DEPTH else 1,
            callback=on_trigger,
        )
        self._definitions[queue_name] = definition
        self.manager.queue(queue_name).subscribe(
            lambda message, q=queue_name: self._on_put(q, message)
        )
        # A backlog may already satisfy the condition.
        self._check(definition)

    def rearm(self, queue_name: str) -> None:
        """Re-arm a FIRST/DEPTH trigger (and fire if already satisfied)."""
        definition = self._definitions.get(queue_name)
        if definition is None:
            raise MQError(f"no trigger on queue {queue_name!r}")
        definition.armed = True
        self._check(definition)

    def fired_count(self, queue_name: str) -> int:
        """How many times the trigger has fired."""
        definition = self._definitions.get(queue_name)
        return definition.fired_count if definition else 0

    # -- internals ---------------------------------------------------------------

    def _on_put(self, queue_name: str, message: Message) -> None:
        definition = self._definitions.get(queue_name)
        if definition is not None:
            self._check(definition)

    def _check(self, definition: _TriggerDefinition) -> None:
        depth = self.manager.depth(definition.queue)
        if definition.trigger_type is TriggerType.EVERY:
            if depth >= 1:
                self._fire(definition, depth)
            return
        if not definition.armed:
            return
        if definition.trigger_type is TriggerType.FIRST and depth >= 1:
            definition.armed = False
            self._fire(definition, depth)
        elif (
            definition.trigger_type is TriggerType.DEPTH
            and depth >= definition.threshold
        ):
            definition.armed = False
            self._fire(definition, depth)

    def _fire(self, definition: _TriggerDefinition, depth: int) -> None:
        definition.fired_count += 1
        definition.callback(
            TriggerEvent(
                queue=definition.queue,
                trigger_type=definition.trigger_type,
                depth=depth,
                at_ms=self.manager.clock.now_ms(),
            )
        )
