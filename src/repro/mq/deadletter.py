"""Dead-letter queue handling: inspection and reprocessing.

Messages land on ``SYSTEM.DEAD.LETTER.QUEUE`` when they expire, exceed
the backout threshold, or (with queue auto-creation off) arrive for an
unknown queue — each stamped with a ``DLQ_REASON`` property.  Real
deployments run a *DLQ handler* that inspects, retries, or discards
them; this module is that handler.

Usage::

    handler = DeadLetterHandler(manager)
    handler.summary()                       # {"expired": 3, ...}
    handler.retry(reason="backout-threshold")   # back to origin queues
    handler.discard(older_than_ms=DAY)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mq.manager import DEAD_LETTER_QUEUE, QueueManager
from repro.mq.message import Message

#: Property the queue manager stamps when dead-lettering.
PROP_DLQ_REASON = "DLQ_REASON"


@dataclass
class RetryResult:
    """What a retry pass did."""

    retried: int = 0
    skipped: int = 0
    #: messages refused because retrying without a backout reset would
    #: bounce them straight back to the DLQ (count already at threshold)
    poisoned: int = 0


class DeadLetterHandler:
    """Inspects and reprocesses one manager's dead-letter queue."""

    def __init__(self, manager: QueueManager) -> None:
        self.manager = manager

    # -- inspection ---------------------------------------------------------

    def depth(self) -> int:
        """Messages currently dead-lettered."""
        return self.manager.depth(DEAD_LETTER_QUEUE)

    def summary(self) -> Dict[str, int]:
        """Counts by dead-letter reason."""
        counts: Dict[str, int] = {}
        for message in self.manager.browse(DEAD_LETTER_QUEUE):
            reason = str(message.get_property(PROP_DLQ_REASON, "unknown"))
            counts[reason] = counts.get(reason, 0) + 1
        return counts

    def browse(self, reason: Optional[str] = None) -> List[Message]:
        """Dead messages, optionally filtered by reason."""
        return [
            message
            for message in self.manager.browse(DEAD_LETTER_QUEUE)
            if reason is None or message.get_property(PROP_DLQ_REASON) == reason
        ]

    # -- reprocessing ---------------------------------------------------------

    def retry(
        self,
        reason: Optional[str] = None,
        reset_backout: bool = True,
        limit: Optional[int] = None,
    ) -> RetryResult:
        """Put dead messages back for another attempt.

        The origin queue is not recorded by the dead-letter path (matching
        MQ, where the DLQ header carries the *destination*), so messages
        are re-put to the queue named by their conditional-messaging
        control property when present, falling back to skipping messages
        whose destination cannot be determined.

        With ``reset_backout=False`` a message whose backout count
        already meets the manager's ``backout_threshold`` would ping-pong:
        the very next transactional get diverts it straight back to the
        DLQ.  Such no-op retries are refused — the message stays on the
        DLQ and is counted in :attr:`RetryResult.poisoned` so the
        operator sees why (retry it with ``reset_backout=True``, or raise
        the threshold).

        Args:
            reason: Only retry messages dead-lettered for this reason.
            reset_backout: Clear the backout count so the retry is not
                immediately re-poisoned.
            limit: Retry at most this many.
        """
        result = RetryResult()
        threshold = self.manager.backout_threshold
        for message in self.browse(reason):
            if limit is not None and result.retried >= limit:
                break
            destination = message.get_property("DS_DEST_QUEUE")
            if destination is None or not self.manager.has_queue(str(destination)):
                result.skipped += 1
                continue
            if (
                not reset_backout
                and threshold is not None
                and message.backout_count >= threshold
            ):
                # Refuse the no-op: re-putting with this backout count
                # just cycles DLQ -> queue -> DLQ, silently.
                result.poisoned += 1
                continue
            # Journaled removal: retry must not leave a copy on the DLQ
            # for recovery to resurrect alongside the re-queued message.
            self.manager.get_by_id(DEAD_LETTER_QUEUE, message.message_id)
            props = {
                k: v for k, v in message.properties.items() if k != PROP_DLQ_REASON
            }
            revived = message.copy(
                properties=props,
                backout_count=0 if reset_backout else message.backout_count,
            )
            self.manager.put(str(destination), revived)
            result.retried += 1
        return result

    def discard(self, reason: Optional[str] = None) -> int:
        """Permanently delete dead messages; returns how many.

        Removals are journaled so discarded messages stay gone after a
        crash.
        """
        doomed = self.browse(reason)
        for message in doomed:
            self.manager.get_by_id(DEAD_LETTER_QUEUE, message.message_id)
        return len(doomed)
