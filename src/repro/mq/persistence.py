"""Durability: an append-only journal with checkpointing and recovery.

Real queue managers write persistent messages to a recovery log before
acknowledging the put; on restart they rebuild queue content from the log.
This module provides that behaviour for :class:`~repro.mq.manager.QueueManager`:

* every **committed** put of a persistent message appends a ``put`` record,
* every destructive get of a persistent message appends a ``get`` record,
* :meth:`Journal.checkpoint` compacts the log into a snapshot record,
* :meth:`Journal.recover` folds the log into the set of live messages per
  queue.

Uncommitted transactional work is never journaled — the queue manager only
journals at commit, which gives the standard "presumed abort" behaviour on
crash: in-flight transactions vanish, and transactionally read messages
reappear on their queues.

Throughput comes from **group commit** (Gray: queue systems batch many log
records per force-out):

* :meth:`Journal.append_many` writes a whole batch of records with a single
  write+flush;
* :meth:`Journal.batch` is a context manager that buffers every append made
  inside it and commits the lot as one group write on exit — the queue
  manager exposes it as ``QueueManager.group_commit()`` and the
  conditional-send fan-out routes through it, so one conditional send costs
  one journal flush instead of ``2N+1``;
* a multi-record commit group is written as **one physical frame** (a
  ``group`` wrapper record), so a torn write can never persist a prefix of
  a group: recovery replays the whole group or drops it with the torn
  tail, making group commit genuinely all-or-nothing;
* :meth:`Journal.enable_adaptive_flush` arms an **adaptive flush timer**:
  commit groups are held in memory for a bounded window so that groups
  from *separate* sends coalesce into one physical write.  The window is
  an RFC 6298-style EWMA of commit-group inter-arrival gaps
  (``srtt + 4·rttvar``, clamped to ``[min_hold_ms, max_hold_ms]``) — under
  load the journal learns the arrival rate and keeps the group open just
  long enough for the next send to join it.  Deferred work
  (:meth:`post_commit` actions, cross-manager transfers) is held with the
  records and released by :meth:`drain`, preserving the durability order;
* :meth:`Journal.post_commit` defers an action until the staged records
  are durable — the network layer uses it to hold cross-manager delivery
  until the sender's commit group has been written, preserving the
  compensation-and-log-first durability order;
* the **sync policy** (``always`` / ``batch`` / ``none``) controls when the
  file journal forces data to disk (``os.fsync``): per commit group, only
  on explicit :meth:`FileJournal.sync` / checkpoint, or never;
* a ``compaction_threshold`` lets the owning queue manager trigger
  checkpoint compaction automatically once the log grows past a bound, so
  ``rewrite`` cost is amortized over many appends.

Records are serialized by a pluggable **codec**:

* ``json`` (default) — one JSON document per line, human-readable;
* ``binary`` — a compact length-prefixed frame (magic byte, 4-byte length,
  CRC-32, pickled record), roughly halving encode cost and bytes per
  record.

Recovery **auto-detects** the format frame by frame (a JSON line starts
with ``{``, a binary frame with its magic byte), so journals written under
one codec — or a mixture, e.g. a JSON log appended to by a binary-codec
journal after an upgrade — replay unchanged.

Three stores exist: :class:`FileJournal` (frames on disk, one persistent
append handle), :class:`SQLiteJournal` (one SQLite database in WAL mode,
commit groups as SQL transactions), and :class:`MemoryJournal` (same
record stream, kept in a list; used by tests that inject crashes without
touching the filesystem).  All count ``flush_count`` / ``bytes_written`` /
batch sizes, and report them through an attached
:class:`~repro.obs.registry.MetricsRegistry` (``journal.flushes``,
``journal.records``, ``journal.bytes``, ``journal.batch_records``) when
the owning manager carries one.

Deployments pick the store by URL through the **backend registry**:
:func:`journal_for` maps ``memory:``, ``file:<path>``, ``sqlite:<path>``,
and ``binfile:<path>`` (a file journal defaulting to the binary codec) to
a constructed journal — a ``?codec=<name>`` query selects the codec
explicitly (``file:/var/lib/qm.journal?codec=binary``) — and
:func:`journal_factory_for` derives per-manager journals for
testbed-style deployments.  :func:`register_journal_backend` adds new
schemes, and :func:`register_journal_codec` new codecs, without touching
callers.
"""

from __future__ import annotations

import base64
import json
import logging
import os
import pickle
import sqlite3
import struct
import zlib
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import PersistenceError
from repro.mq.message import DeliveryMode, Message

logger = logging.getLogger(__name__)

#: Valid journal sync policies (file journal; the memory journal accepts
#: them for interface symmetry but has nothing to fsync).
SYNC_POLICIES = ("always", "batch", "none")

# ---------------------------------------------------------------------------
# Message <-> record codec
# ---------------------------------------------------------------------------

#: Scalar types the json module emits natively.
_JSON_SCALARS = (str, int, float, bool, type(None))


def _is_json_safe(value: Any, _seen: Optional[set] = None) -> bool:
    """Cheap structural probe: would ``json.dumps(value)`` succeed?

    Walks the value checking types only — no string is ever built, unlike
    a throwaway ``json.dumps`` probe.  Containers are checked against a
    seen-set so circular structures report unsafe (``json.dumps`` raises
    ``ValueError`` on them) instead of recursing forever.
    """
    if isinstance(value, bool) or value is None:
        return True
    if isinstance(value, _JSON_SCALARS):
        return True
    if isinstance(value, (list, tuple)):
        if _seen is None:
            _seen = set()
        if id(value) in _seen:
            return False
        _seen.add(id(value))
        result = all(_is_json_safe(item, _seen) for item in value)
        _seen.discard(id(value))
        return result
    if isinstance(value, dict):
        if _seen is None:
            _seen = set()
        if id(value) in _seen:
            return False
        _seen.add(id(value))
        # Only str keys: json.dumps would coerce int/bool/None keys to
        # strings, silently corrupting the body on decode — pickle those.
        result = all(
            isinstance(key, str) and _is_json_safe(val, _seen)
            for key, val in value.items()
        )
        _seen.discard(id(value))
        return result
    return False


def encode_body(body: Any, native: bool = False) -> Dict[str, Any]:
    """Encode a message body for the journal.

    JSON-representable bodies are stored natively (readable journals);
    anything else is pickled and base64-wrapped.  The JSON check is a
    structural type probe — the body is serialized exactly once, when the
    enclosing record is appended, not twice.

    ``native=True`` (used when the enclosing record is bound for a codec
    whose frames are pickled wholesale, like the binary codec) stores the
    body as-is under ``kind="raw"``: the probe and the pickle+base64
    detour are pure overhead when the frame serializer handles arbitrary
    objects anyway.
    """
    if native:
        return {"kind": "raw", "data": body}
    if _is_json_safe(body):
        return {"kind": "json", "data": body}
    try:
        blob = pickle.dumps(body)
    except Exception as exc:  # noqa: BLE001 - report what body failed
        raise PersistenceError(
            f"message body of type {type(body).__name__} is not journalable"
        ) from exc
    return {"kind": "pickle", "data": base64.b64encode(blob).decode("ascii")}


def decode_body(record: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_body`."""
    kind = record.get("kind")
    if kind in ("json", "raw"):
        return record["data"]
    if kind == "pickle":
        return pickle.loads(base64.b64decode(record["data"]))
    raise PersistenceError(f"unknown body encoding {kind!r}")


def encode_message(message: Message, native: bool = False) -> Dict[str, Any]:
    """Encode a full message as a journalable dict.

    ``native`` is forwarded to :func:`encode_body` — pass true only when
    the record is bound for a codec that serializes frames with pickle.
    """
    return {
        "message_id": message.message_id,
        "correlation_id": message.correlation_id,
        "body": encode_body(message.body, native=native),
        "properties": dict(message.properties),
        "priority": message.priority,
        "delivery_mode": message.delivery_mode.value,
        "expiry_ms": message.expiry_ms,
        "reply_to_manager": message.reply_to_manager,
        "reply_to_queue": message.reply_to_queue,
        "put_time_ms": message.put_time_ms,
        "backout_count": message.backout_count,
        "source_manager": message.source_manager,
    }


def decode_message(record: Dict[str, Any]) -> Message:
    """Inverse of :func:`encode_message`."""
    try:
        return Message(
            body=decode_body(record["body"]),
            message_id=record["message_id"],
            correlation_id=record.get("correlation_id"),
            properties=dict(record.get("properties", {})),
            priority=record.get("priority", 4),
            delivery_mode=DeliveryMode(record.get("delivery_mode", "persistent")),
            expiry_ms=record.get("expiry_ms"),
            reply_to_manager=record.get("reply_to_manager"),
            reply_to_queue=record.get("reply_to_queue"),
            put_time_ms=record.get("put_time_ms"),
            backout_count=record.get("backout_count", 0),
            source_manager=record.get("source_manager"),
        )
    except KeyError as exc:
        raise PersistenceError(f"journal message record missing field {exc}") from exc


def _expand_record(record: Dict[str, Any], out: List[Dict[str, Any]]) -> None:
    """Append ``record`` to ``out``, inlining ``group`` wrapper records.

    A ``group`` record is the single-frame envelope a multi-record commit
    group is written as (see :meth:`Journal._write_group`); readers see
    the logical member records, never the envelope.
    """
    if record.get("op") == "group":
        out.extend(record.get("records", []))
    else:
        out.append(record)


def _check_sync_policy(sync: str) -> str:
    if sync not in SYNC_POLICIES:
        raise PersistenceError(
            f"unknown sync policy {sync!r}; expected one of {SYNC_POLICIES}"
        )
    return sync


# ---------------------------------------------------------------------------
# Record codecs: JSON lines and length-prefixed binary frames
# ---------------------------------------------------------------------------

#: First byte of a binary record / group frame.  Chosen outside printable
#: ASCII so no frame can ever be mistaken for the start of a JSON line
#: (which always begins with ``{``); the decoder dispatches per frame on
#: this byte, which is what lets JSON and binary content coexist in one
#: journal.
_MAGIC_RECORD = 0xB1
_MAGIC_GROUP = 0xB2

#: Binary frame header: magic byte, payload length, CRC-32 of the payload.
_BIN_HEADER = struct.Struct("<BII")


def _bin_frame(magic: int, payload: bytes) -> bytes:
    return _BIN_HEADER.pack(magic, len(payload), zlib.crc32(payload)) + payload


class JsonLinesCodec:
    """One JSON document per newline-terminated line (human-readable)."""

    name = "json"
    #: Message bodies must be JSON-encodable (or pickle+base64-wrapped).
    native_bodies = False

    def encode_record(self, record: Dict[str, Any]) -> bytes:
        return json.dumps(record).encode("utf-8") + b"\n"

    def wrap_group(self, frames: List[bytes]) -> bytes:
        # Members are serialized already; wrap without re-serializing.
        inner = b", ".join(frame[:-1] for frame in frames)
        return b'{"op": "group", "records": [' + inner + b"]}\n"


class BinaryRecordCodec:
    """Compact length-prefixed frames: magic, length, CRC-32, pickle.

    The CRC turns a torn or bit-rotted frame into a detected error
    instead of a silent mis-replay; a group frame's payload is the
    concatenation of its member record frames, so the whole group shares
    one header and is dropped or replayed atomically.
    """

    name = "binary"
    #: Frames are pickled wholesale, so message bodies can be stored
    #: as-is (``encode_body(..., native=True)``) — no JSON-safety probe,
    #: no pickle+base64 detour per body.
    native_bodies = True

    def encode_record(self, record: Dict[str, Any]) -> bytes:
        try:
            payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # noqa: BLE001 - report what record failed
            raise PersistenceError(
                "journal record is not serializable by the binary codec"
            ) from exc
        return _bin_frame(_MAGIC_RECORD, payload)

    def wrap_group(self, frames: List[bytes]) -> bytes:
        return _bin_frame(_MAGIC_GROUP, b"".join(frames))


#: codec name -> codec instance (stateless singletons).
JOURNAL_CODECS: Dict[str, Any] = {}


def register_journal_codec(codec: Any) -> None:
    """Register a record codec under ``codec.name``.

    A codec provides ``encode_record(record) -> bytes`` (a self-delimiting
    frame) and ``wrap_group(frames) -> bytes`` (one physical frame holding
    the member frames).  Decoding is codec-independent: the frame scanner
    recognizes every registered format by its first byte.
    """
    JOURNAL_CODECS[codec.name] = codec


register_journal_codec(JsonLinesCodec())
register_journal_codec(BinaryRecordCodec())


def _codec_named(name: str) -> Any:
    try:
        return JOURNAL_CODECS[name]
    except KeyError:
        raise PersistenceError(
            f"unknown journal codec {name!r}; registered:"
            f" {sorted(JOURNAL_CODECS)}"
        ) from None


def _unpickle_record(payload: bytes, offset: int, source: str) -> Dict[str, Any]:
    try:
        record = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickle failure is corruption
        raise PersistenceError(
            f"undecodable journal frame at byte {offset} in {source}"
        ) from exc
    if not isinstance(record, dict):
        raise PersistenceError(
            f"journal frame at byte {offset} in {source} is not a record"
        )
    return record


def _scan_group_payload(
    payload: bytes,
    out: Optional[List[Dict[str, Any]]],
    offset: int,
    source: str,
) -> int:
    """Walk the member record frames inside a binary group payload.

    Returns the member count; appends decoded records to ``out`` unless it
    is ``None`` (structural counting).  The group's own CRC already
    matched, so a malformed member here is real corruption.
    """
    members = 0
    position = 0
    end = len(payload)
    while position < end:
        header_end = position + _BIN_HEADER.size
        if header_end > end:
            raise PersistenceError(
                f"malformed journal group frame at byte {offset} in {source}"
            )
        magic, length, crc = _BIN_HEADER.unpack_from(payload, position)
        member_end = header_end + length
        if magic != _MAGIC_RECORD or member_end > end:
            raise PersistenceError(
                f"malformed journal group frame at byte {offset} in {source}"
            )
        member = payload[header_end:member_end]
        if zlib.crc32(member) != crc:
            raise PersistenceError(
                f"corrupt member frame in journal group at byte {offset}"
                f" in {source}"
            )
        if out is not None:
            out.append(_unpickle_record(member, offset, source))
        members += 1
        position = member_end
    return members


def _count_json_line(line: bytes) -> int:
    """Structural record count for one JSON line (group members expand).

    An unparseable line counts as one — :meth:`Journal.read_all` rejects
    mid-file corruption properly; the open-time count must not.
    """
    if line.startswith(b'{"op": "group"'):
        try:
            expanded: List[Dict[str, Any]] = []
            _expand_record(json.loads(line), expanded)
            return len(expanded)
        except json.JSONDecodeError:
            pass
    return 1


def _scan_journal(
    data: bytes,
    source: str,
    decode: bool = True,
    strict: bool = True,
) -> Tuple[List[Dict[str, Any]], int, int, int]:
    """Decode a journal byte stream, auto-detecting the frame format.

    Each frame is dispatched on its first byte: the binary magic bytes
    select a length-prefixed frame, anything else a newline-terminated
    JSON line — so JSON and binary content can coexist in one journal
    (e.g. an old JSON log appended to under the binary codec).

    Returns ``(records, logical_count, valid_end, torn)``:

    * ``records`` — decoded logical records, group wrappers inlined
      (empty when ``decode`` is false);
    * ``logical_count`` — logical record count (group members counted
      individually);
    * ``valid_end`` — byte offset just past the last intact frame, the
      truncation point for open-time healing;
    * ``torn`` — 1 when the stream ends in a torn frame: an unterminated
      JSON line, an incomplete binary frame, a CRC-mismatched frame that
      runs to end-of-stream, or (when decoding) a complete-but-corrupt
      final JSON line.  Torn content is excluded from the returns.

    Corruption *before* intact content is not a crash artefact: with
    ``strict`` it raises :class:`PersistenceError`; without (the
    tolerant open-time scan) the scan simply stops there.
    """
    records: List[Dict[str, Any]] = []
    count = 0
    offset = 0
    valid_end = 0
    end = len(data)
    while offset < end:
        first = data[offset]
        if first in (_MAGIC_RECORD, _MAGIC_GROUP):
            header_end = offset + _BIN_HEADER.size
            if header_end > end:
                return records, count, valid_end, 1
            magic, length, crc = _BIN_HEADER.unpack_from(data, offset)
            frame_end = header_end + length
            if frame_end > end:
                return records, count, valid_end, 1
            payload = data[header_end:frame_end]
            if zlib.crc32(payload) != crc:
                if frame_end == end:
                    # A torn OS write can complete the header but garble
                    # the payload; at end-of-stream that is crash
                    # semantics, not bit rot.
                    return records, count, valid_end, 1
                if not strict:
                    return records, count, valid_end, 0
                raise PersistenceError(
                    f"corrupt journal frame at byte {offset} in {source}"
                )
            try:
                if magic == _MAGIC_GROUP:
                    count += _scan_group_payload(
                        payload, records if decode else None, offset, source
                    )
                else:
                    if decode:
                        records.append(_unpickle_record(payload, offset, source))
                    count += 1
            except PersistenceError:
                if not strict:
                    return records, count, valid_end, 0
                raise
            valid_end = frame_end
            offset = frame_end
        else:
            newline = data.find(b"\n", offset)
            if newline == -1:
                return records, count, valid_end, 1
            line = data[offset:newline].strip()
            line_start = offset
            offset = newline + 1
            if not line:
                valid_end = offset
                continue
            if decode:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    if not data[offset:].strip():
                        # A corrupt final line is the signature of a crash
                        # mid-append; everything before it is intact.
                        return records, count, valid_end, 1
                    if not strict:
                        return records, count, valid_end, 0
                    raise PersistenceError(
                        f"corrupt journal record at byte {line_start}"
                        f" in {source}"
                    ) from exc
                before = len(records)
                _expand_record(record, records)
                count += len(records) - before
            else:
                count += _count_json_line(line)
            valid_end = offset
    return records, count, valid_end, 0


# ---------------------------------------------------------------------------
# Journal stores
# ---------------------------------------------------------------------------


class Journal(ABC):
    """Append-only operation log for one queue manager.

    Args:
        sync: Force-out policy — ``"always"`` syncs every commit group to
            stable storage, ``"batch"`` only on explicit :meth:`sync` and
            checkpoints, ``"none"`` never (the OS decides).  Only the file
            journal actually fsyncs; the policy is accepted everywhere so
            deployments can switch stores without changing configuration.
        compaction_threshold: When set, :meth:`needs_compaction` turns true
            once the live log holds at least this many records; the owning
            queue manager then checkpoints automatically, amortizing the
            rewrite cost over many appends.
        codec: Record serialization format — a registered codec name
            (``"json"`` / ``"binary"``) or a codec instance.  Reading is
            always format-auto-detecting, so the codec only governs new
            appends; an existing journal written under another codec
            replays unchanged.
    """

    #: Whether multi-record commit groups must be wrapped into one
    #: physical ``group`` frame before reaching :meth:`_write_serialized`.
    #: Frame-oriented stores need the wrapper for torn-write atomicity; a
    #: store with engine-level transactions (:class:`SQLiteJournal`) sets
    #: this false and receives the member records individually, committing
    #: them as one transaction instead.
    wraps_groups = True

    def __init__(
        self,
        sync: str = "always",
        compaction_threshold: Optional[int] = None,
        codec: Any = "json",
    ) -> None:
        self.sync_policy = _check_sync_policy(sync)
        self.compaction_threshold = compaction_threshold
        self.codec = _codec_named(codec) if isinstance(codec, str) else codec
        #: records durably handed to the store over this object's lifetime
        self.records_written = 0
        #: commit groups written (each is one write+flush; the unit whose
        #: reduction group commit exists for)
        self.flush_count = 0
        #: serialized bytes handed to the store (appends only)
        self.bytes_written = 0
        #: checkpoint rewrites performed
        self.rewrites = 0
        #: corrupt trailing records skipped by the last :meth:`read_all`
        #: (a partial frame from a crash mid-append — a torn multi-record
        #: group counts once); the file journal includes a torn tail it
        #: healed away at open time.  See :meth:`recover`.
        self.skipped_trailing_records = 0
        #: commit groups coalesced by the adaptive flush timer (logical
        #: groups buffered; each physical drain covers one or more)
        self.adaptive_groups_coalesced = 0
        #: optional metrics registry (the owning manager attaches its own)
        self.metrics = None  # type: Optional[Any]
        #: crash-point hooks (:mod:`repro.chaos`): called with the logical
        #: record count immediately before / after each physical commit
        #: group is handed to the store.  A pre-flush hook that raises
        #: models a crash with the group lost; a post-flush hook that
        #: raises models a crash with the group durable.  ``None`` (the
        #: default) costs one attribute check per flush.
        self.on_pre_flush: Optional[Callable[[int], None]] = None
        self.on_post_flush: Optional[Callable[[int], None]] = None
        self._batch_depth = 0
        self._batch_buffer: List[bytes] = []
        self._post_commit_hooks: List[Callable[[], None]] = []
        # Adaptive flush state (armed by enable_adaptive_flush).
        self._af_scheduler: Optional[Any] = None
        self._af_min_hold_ms = 1
        self._af_max_hold_ms = 20
        self._af_alpha = 0.125
        self._af_beta = 0.25
        self._af_srtt: Optional[float] = None
        self._af_rttvar = 0.0
        self._af_last_arrival_ms: Optional[int] = None
        self._af_pending: List[bytes] = []
        self._af_event: Optional[Any] = None
        self._held_hooks: List[Callable[[], None]] = []

    # -- store primitives ---------------------------------------------------

    @abstractmethod
    def _write_serialized(self, frames: List[bytes], record_count: int) -> int:
        """Durably append pre-serialized frames; returns byte count.

        One call is one commit group: implementations perform a single
        write (+flush/fsync per the sync policy) for the whole list.
        ``record_count`` is the number of *logical* records the frames
        carry (a multi-record group arrives as one wrapped frame), for
        the store's :meth:`size` accounting.
        """

    @abstractmethod
    def read_all(self) -> List[Dict[str, Any]]:
        """Return every record, oldest first."""

    @abstractmethod
    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        """Atomically replace the log content (used by checkpointing)."""

    @abstractmethod
    def size(self) -> int:
        """Number of logical records currently in the live log.

        Members of a multi-record commit group count individually, even
        though the group occupies one physical frame.  Records held by
        the adaptive flush timer are not yet in the log.
        """

    # -- appends ------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (buffered inside :meth:`batch`)."""
        self._stage([self.codec.encode_record(record)])

    def append_many(self, records: Iterable[Dict[str, Any]]) -> None:
        """Group-commit a batch of records with a single write+flush.

        Serialization happens eagerly, so an unjournalable record raises
        before anything is written.  The group is written as one physical
        frame (see :meth:`_write_group`), so it is all-or-nothing even
        against a torn write: recovery replays the whole group or none
        of it, never a prefix.
        """
        frames = [self.codec.encode_record(record) for record in records]
        if frames:
            self._stage(frames)

    @contextmanager
    def batch(self) -> Iterator["Journal"]:
        """Buffer every append made inside the block into one commit group.

        Nested batches join the outermost group.  The group is written on
        exit even when the block raises: the in-memory queue state it
        journals has already been applied, and an unwritten record would
        lose committed work on recovery.  Deferred :meth:`post_commit`
        actions run after the group is durable — and are dropped whenever
        the group aborts instead of committing (the write itself fails,
        e.g. a :class:`~repro.chaos.faults.CrashPoint` from a pre-flush
        hook, or the block raises with nothing staged), so nothing acts on
        records that never reached the log and no stale callback survives
        to fire on the next unrelated commit.  A raising hook likewise
        clears every hook still queued (including ones registered by hooks
        that already ran) before the exception propagates.
        """
        self._batch_depth += 1
        body_raised = False
        try:
            yield self
        except BaseException:
            body_raised = True
            raise
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                try:
                    if self._batch_buffer:
                        frames, self._batch_buffer = self._batch_buffer, []
                        self._commit_group(frames)
                    elif body_raised:
                        # Nothing was staged and the block aborted: the
                        # hooks belong to work that never happened.
                        self._post_commit_hooks.clear()
                except BaseException:
                    self._post_commit_hooks.clear()
                    raise
                try:
                    while self._post_commit_hooks:
                        hooks, self._post_commit_hooks = (
                            self._post_commit_hooks,
                            [],
                        )
                        for hook in hooks:
                            hook()
                except BaseException:
                    # A hook died mid-run; hooks it (or its predecessors)
                    # registered must not linger into the next commit.
                    self._post_commit_hooks.clear()
                    raise

    def post_commit(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once currently-staged records are durable.

        Outside a :meth:`batch`, with no adaptively-held records, every
        append so far has already been committed and the callback runs
        immediately.  Inside a batch it is deferred until the outermost
        commit group has been written; while the adaptive flush timer
        holds records it is deferred until the next :meth:`drain`.  The
        network layer uses this to hold cross-manager delivery until the
        sender's commit group (compensation staging, sender-log entry,
        transmission parking) is durable — delivering earlier would let a
        data message reach the target's journal while the records that
        make it compensatable are still buffered.
        """
        if self._batch_depth:
            self._post_commit_hooks.append(callback)
        elif self._af_pending:
            self._held_hooks.append(callback)
        else:
            callback()

    def _stage(self, frames: List[bytes]) -> None:
        if self._batch_depth:
            self._batch_buffer.extend(frames)
        else:
            self._commit_group(frames)

    def _commit_group(self, frames: List[bytes]) -> None:
        """One logical commit group: write now, or hold for coalescing."""
        if self._af_scheduler is not None:
            self._af_buffer(frames)
        else:
            self._write_group(frames)

    def _write_group(self, frames: List[bytes]) -> None:
        if self.wraps_groups and len(frames) > 1:
            # A multi-record group becomes ONE physical frame, so a torn
            # write cannot persist a prefix of the group: either the frame
            # decodes and the whole group replays, or it is dropped as the
            # torn tail.  Members are serialized already; wrap without
            # re-serializing.  Stores with engine transactions
            # (``wraps_groups = False``) instead receive the members
            # individually and commit them as one transaction.
            physical = [self.codec.wrap_group(frames)]
        else:
            physical = frames
        if self.on_pre_flush is not None:
            self.on_pre_flush(len(frames))
        nbytes = self._write_serialized(physical, len(frames))
        if self.on_post_flush is not None:
            self.on_post_flush(len(frames))
        self.records_written += len(frames)
        self.flush_count += 1
        self.bytes_written += nbytes
        if self.metrics is not None:
            self.metrics.incr("journal.flushes")
            self.metrics.incr("journal.records", len(frames))
            self.metrics.incr("journal.bytes", nbytes)
            self.metrics.observe("journal.batch_records", len(frames))

    # -- adaptive flush -----------------------------------------------------

    def enable_adaptive_flush(
        self,
        scheduler: Any,
        min_hold_ms: int = 1,
        max_hold_ms: int = 20,
        alpha: float = 0.125,
        beta: float = 0.25,
    ) -> None:
        """Hold commit groups open so concurrent sends coalesce.

        Once armed, a commit group is buffered instead of written, and a
        flush event is scheduled ``hold`` ms out; every group arriving
        inside the window joins the same physical write.  The hold window
        is an RFC 6298-style estimator over commit-group inter-arrival
        gaps — ``srtt`` and ``rttvar`` smoothed with gains ``alpha`` and
        ``beta``, ``hold = srtt + 4·rttvar`` clamped to
        ``[min_hold_ms, max_hold_ms]`` — so the journal waits roughly as
        long as the observed arrival rate predicts the next group will
        take, and ``max_hold_ms`` bounds the worst-case added latency.

        Crash semantics: held groups are lost together (none of them was
        ever acknowledged durable), and all held :meth:`post_commit`
        actions — including cross-manager transfers — are held with them,
        so the durability order is exactly that of one large commit
        group.  :meth:`drain` (and any read/rewrite/close) forces the
        buffered groups out as one physical commit group.
        """
        if scheduler is None:
            raise PersistenceError("adaptive flush needs an event scheduler")
        if not 0 < min_hold_ms <= max_hold_ms:
            raise PersistenceError(
                f"bad adaptive flush window [{min_hold_ms}, {max_hold_ms}]"
            )
        self._af_scheduler = scheduler
        self._af_min_hold_ms = int(min_hold_ms)
        self._af_max_hold_ms = int(max_hold_ms)
        self._af_alpha = alpha
        self._af_beta = beta

    def disable_adaptive_flush(self) -> None:
        """Drain held groups and return to write-through commits."""
        self.drain()
        self._af_scheduler = None

    @property
    def adaptive_flush_enabled(self) -> bool:
        return self._af_scheduler is not None

    def drain(self) -> int:
        """Write adaptively-held groups now; returns records written.

        All buffered groups go out as one physical commit group, then the
        held :meth:`post_commit` actions run.  A failing write drops the
        held actions (the records never reached the log), mirroring
        :meth:`batch` abort semantics.  A no-op when nothing is held.
        """
        if self._af_event is not None:
            self._af_event.cancel()
            self._af_event = None
        drained = 0
        if self._af_pending:
            frames, self._af_pending = self._af_pending, []
            drained = len(frames)
            try:
                self._write_group(frames)
            except BaseException:
                self._held_hooks.clear()
                raise
        try:
            while self._held_hooks:
                hooks, self._held_hooks = self._held_hooks, []
                for hook in hooks:
                    hook()
        except BaseException:
            self._held_hooks.clear()
            raise
        return drained

    def _af_buffer(self, frames: List[bytes]) -> None:
        now = self._af_scheduler.clock.now_ms()
        self._af_observe_arrival(now)
        self.adaptive_groups_coalesced += 1
        first = not self._af_pending
        self._af_pending.extend(frames)
        if self._post_commit_hooks:
            # Hooks captured by the enclosing batch() exit must not fire
            # until the held group is durable.
            self._held_hooks.extend(self._post_commit_hooks)
            self._post_commit_hooks.clear()
        if first:
            # Later arrivals join the window without rescheduling, so the
            # first buffered group bounds the added latency.
            self._af_event = self._af_scheduler.call_later(
                self._af_hold_ms(), self._af_timer_fired, label="journal-flush"
            )

    def _af_timer_fired(self) -> None:
        self._af_event = None
        self.drain()

    def _af_observe_arrival(self, now_ms: int) -> None:
        last = self._af_last_arrival_ms
        self._af_last_arrival_ms = now_ms
        if last is None:
            return
        gap = float(now_ms - last)
        if self._af_srtt is None:
            # First measurement (RFC 6298 §2.2): SRTT = R, RTTVAR = R/2.
            self._af_srtt = gap
            self._af_rttvar = gap / 2.0
        else:
            self._af_rttvar += self._af_beta * (
                abs(self._af_srtt - gap) - self._af_rttvar
            )
            self._af_srtt += self._af_alpha * (gap - self._af_srtt)

    def _af_hold_ms(self) -> int:
        if self._af_srtt is None:
            return self._af_min_hold_ms
        hold = self._af_srtt + 4.0 * self._af_rttvar
        return max(
            self._af_min_hold_ms, min(self._af_max_hold_ms, int(round(hold)))
        )

    # -- maintenance --------------------------------------------------------

    def close(self) -> None:
        """Release any store resources (file handles, connections).

        The base journal holds none; stores with handles override this.
        Harnesses may call it on any backend unconditionally.
        """
        self.drain()

    def needs_compaction(self) -> bool:
        """True when the live log has outgrown ``compaction_threshold``."""
        return (
            self.compaction_threshold is not None
            and self._batch_depth == 0
            and not self._af_pending
            and self.size() >= self.compaction_threshold
        )

    # -- logical operations -------------------------------------------------

    def log_put(self, queue_name: str, message: Message) -> None:
        """Record a committed put of a persistent message."""
        native = getattr(self.codec, "native_bodies", False)
        self.append(
            {
                "op": "put",
                "queue": queue_name,
                "message": encode_message(message, native=native),
            }
        )

    def log_put_many(self, puts: Iterable[Tuple[str, Message]]) -> None:
        """Record a batch of committed puts as one commit group."""
        native = getattr(self.codec, "native_bodies", False)
        self.append_many(
            {
                "op": "put",
                "queue": queue_name,
                "message": encode_message(message, native=native),
            }
            for queue_name, message in puts
        )

    def log_get(self, queue_name: str, message_id: str) -> None:
        """Record a committed destructive get of a persistent message."""
        self.append({"op": "get", "queue": queue_name, "message_id": message_id})

    def log_queue_defined(self, queue_name: str) -> None:
        """Record that a queue was defined (so recovery recreates it)."""
        self.append({"op": "define", "queue": queue_name})

    def log_queue_deleted(self, queue_name: str) -> None:
        """Record that a queue was deleted."""
        self.append({"op": "delete", "queue": queue_name})

    def checkpoint(self, queues: Dict[str, List[Message]]) -> None:
        """Compact the log to a single snapshot of current persistent state."""
        self.drain()
        native = getattr(self.codec, "native_bodies", False)
        records: List[Dict[str, Any]] = [{"op": "snapshot-begin"}]
        for queue_name in sorted(queues):
            records.append({"op": "define", "queue": queue_name})
            for message in queues[queue_name]:
                if message.is_persistent():
                    records.append(
                        {
                            "op": "put",
                            "queue": queue_name,
                            "message": encode_message(message, native=native),
                        }
                    )
        records.append({"op": "snapshot-end"})
        self.rewrite(records)
        self.rewrites += 1
        if self.metrics is not None:
            self.metrics.incr("journal.checkpoints")

    def recover(self) -> Tuple[List[str], Dict[str, List[Message]]]:
        """Fold the log into (defined queue names, live messages per queue).

        Replay semantics: ``put`` adds a message, ``get`` removes it,
        ``define``/``delete`` maintain the queue set.  Unknown record types
        raise :class:`PersistenceError` (a corrupt journal must not be
        silently half-recovered).  A corrupt **trailing** record — the
        partial frame a crash mid-append leaves behind — is skipped but
        never silently: it is logged and counted in
        :attr:`skipped_trailing_records`, which this method refreshes.
        """
        self.drain()
        queue_names: List[str] = []
        live: Dict[str, Dict[str, Message]] = {}
        for record in self.read_all():
            op = record.get("op")
            if op in ("snapshot-begin", "snapshot-end"):
                continue
            queue_name = record.get("queue")
            if op == "define":
                if queue_name not in live:
                    queue_names.append(queue_name)
                    live[queue_name] = {}
            elif op == "delete":
                if queue_name in live:
                    queue_names.remove(queue_name)
                    del live[queue_name]
            elif op == "put":
                message = decode_message(record["message"])
                live.setdefault(queue_name, {})
                if queue_name not in queue_names:
                    queue_names.append(queue_name)
                live[queue_name][message.message_id] = message
            elif op == "get":
                live.get(queue_name, {}).pop(record.get("message_id"), None)
            else:
                raise PersistenceError(f"unknown journal op {op!r}")
        return queue_names, {
            name: list(messages.values()) for name, messages in live.items()
        }


class MemoryJournal(Journal):
    """Journal kept in memory; survives simulated crashes of the manager.

    Tests model a crash by discarding the :class:`QueueManager` object and
    constructing a fresh one over the same journal instance — exactly the
    state a restarted process would see on disk.  Flush accounting matches
    the file journal's (one commit group per append / append_many /
    batch), so group-commit benchmarks run without touching a disk.
    """

    def __init__(
        self,
        sync: str = "always",
        compaction_threshold: Optional[int] = None,
        codec: Any = "json",
    ) -> None:
        super().__init__(
            sync=sync, compaction_threshold=compaction_threshold, codec=codec
        )
        self._frames: List[bytes] = []
        self._record_count = 0

    def _write_serialized(self, frames: List[bytes], record_count: int) -> int:
        # Records arrive pre-serialized (bodies were validated journalable
        # at append time, matching the file journal's failure behaviour).
        self._frames.extend(frames)
        self._record_count += record_count
        return sum(len(frame) for frame in frames)

    def read_all(self) -> List[Dict[str, Any]]:
        self.drain()
        records, _, _, torn = _scan_journal(b"".join(self._frames), "<memory>")
        self.skipped_trailing_records = torn
        return records

    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        self.drain()
        self._frames = [self.codec.encode_record(record) for record in records]
        self._record_count = len(self._frames)

    def size(self) -> int:
        """Number of logical records currently in the log."""
        return self._record_count


class FileJournal(Journal):
    """Framed journal on disk with atomic checkpoint rewrite.

    Frames are JSON lines (the default codec) or binary length-prefixed
    records (``codec="binary"``); reads auto-detect per frame, so a file
    may mix both.  The append handle stays open for the journal's
    lifetime (no per-append open/close); :meth:`rewrite` swaps the file
    atomically and reopens it.  Opening an existing log **heals** a torn
    final frame (the artifact of a crash mid-append) by truncating it —
    counted in :attr:`skipped_trailing_records` — so later appends can
    never concatenate onto torn bytes.  The sync policy decides when
    ``os.fsync`` runs:

    * ``always`` — after every commit group (a group-committed batch still
      costs one fsync, which is the point of batching);
    * ``batch`` — only on explicit :meth:`sync` and on checkpoints;
    * ``none`` — never (page cache only; cheapest, weakest).
    """

    def __init__(
        self,
        path: str,
        sync: str = "always",
        compaction_threshold: Optional[int] = None,
        codec: Any = "json",
    ) -> None:
        super().__init__(
            sync=sync, compaction_threshold=compaction_threshold, codec=codec
        )
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(directory, exist_ok=True)
            # A crash can tear the final append mid-frame; appending after
            # it would concatenate the next record onto the torn bytes,
            # turning an ignorable torn tail into mid-file corruption
            # that recovery refuses.  Heal before opening the append
            # handle: the torn tail was never acknowledged durable (every
            # committed write is complete before fsync returns), so
            # truncating it is exactly crash semantics.  The same scan
            # counts the intact records once.
            (
                self._healed_trailing_records,
                self._records_in_log,
            ) = self._heal_and_count()
            # "ab" creates the file if missing, so recover() on a fresh
            # journal succeeds.
            self._fh = open(path, "ab")
        except OSError as exc:
            raise PersistenceError(f"journal open failed: {exc}") from exc
        self.skipped_trailing_records = self._healed_trailing_records

    def _heal_and_count(self) -> Tuple[int, int]:
        """Truncate a torn final frame; count the intact records.

        Returns ``(torn records removed, logical records in the log)``.
        The scan is structural and tolerant: a complete-but-unparseable
        frame counts as one record and is left in place —
        :meth:`read_all` rejects mid-file corruption properly.
        """
        try:
            fh = open(self.path, "rb+")
        except FileNotFoundError:
            return 0, 0
        with fh:
            data = fh.read()
            if not data:
                return 0, 0
            _, count, valid_end, torn = _scan_journal(
                data, self.path, decode=False, strict=False
            )
            if not torn:
                return 0, count
            fh.truncate(valid_end)
        logger.warning(
            "journal %s: truncated torn trailing record (%d bytes) left by"
            " a crash mid-append",
            self.path,
            len(data) - valid_end,
        )
        return 1, count

    def _write_serialized(self, frames: List[bytes], record_count: int) -> int:
        buf = b"".join(frames)
        try:
            self._fh.write(buf)
            self._fh.flush()
            if self.sync_policy == "always":
                os.fsync(self._fh.fileno())
        except (OSError, ValueError) as exc:
            raise PersistenceError(f"journal append failed: {exc}") from exc
        self._records_in_log += record_count
        return len(buf)

    def sync(self) -> None:
        """Force everything written so far to stable storage."""
        self.drain()
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, ValueError) as exc:
            raise PersistenceError(f"journal sync failed: {exc}") from exc

    def close(self) -> None:
        """Flush, force out, and release the append handle."""
        if self._fh.closed:
            return
        self.drain()
        self._fh.flush()
        if self.sync_policy != "none":
            os.fsync(self._fh.fileno())
        self._fh.close()

    def read_all(self) -> List[Dict[str, Any]]:
        self.drain()
        try:
            if not self._fh.closed:
                self._fh.flush()
            with open(self.path, "rb") as f:
                data = f.read()
        except OSError as exc:
            raise PersistenceError(f"journal read failed: {exc}") from exc
        records, _, _, torn = _scan_journal(data, self.path)
        # Torn records healed away when the file was opened stay counted:
        # they are part of what recovery skipped for this log.
        self.skipped_trailing_records = self._healed_trailing_records + torn
        if torn:
            logger.warning(
                "journal %s: skipped corrupt trailing record", self.path
            )
        return records

    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        self.drain()
        tmp_path = self.path + ".tmp"
        frames = [self.codec.encode_record(record) for record in records]
        try:
            with open(tmp_path, "wb") as f:
                for frame in frames:
                    f.write(frame)
                f.flush()
                if self.sync_policy != "none":
                    os.fsync(f.fileno())
            if not self._fh.closed:
                self._fh.close()
            os.replace(tmp_path, self.path)
            self._fh = open(self.path, "ab")
        except OSError as exc:
            raise PersistenceError(f"journal rewrite failed: {exc}") from exc
        self._records_in_log = len(frames)
        # The rewritten log no longer contains the healed torn tail.
        self._healed_trailing_records = 0

    def size(self) -> int:
        """Number of logical records currently in the live log."""
        return self._records_in_log


class SQLiteJournal(Journal):
    """Journal stored in one SQLite database in WAL mode.

    Torn-write atomicity comes from the storage engine instead of the
    file journal's one-physical-frame group trick: ``wraps_groups`` is
    false, so a multi-record commit group arrives as individual member
    records and is inserted inside a single SQL transaction — the engine
    guarantees the whole group is durable or none of it is, even across
    a crash mid-commit.  The crash-point hooks fire at the same
    boundaries as the other stores (pre-flush before ``BEGIN``,
    post-flush after ``COMMIT``), so the chaos explorer can kill the
    manager mid-commit and recovery sees exactly the engine's view.

    Rows are stored as text under the JSON codec (back-compatible with
    existing databases) and as raw frame blobs under the binary codec;
    reads dispatch on the row's type.

    The sync policy maps onto ``PRAGMA synchronous``:

    * ``always``  → ``FULL``   (every commit group reaches stable storage
      before the put returns — the paper's reliability stance);
    * ``batch``   → ``NORMAL`` (WAL syncs on checkpoints; an OS crash can
      lose the tail of recent commit groups, never corrupt older ones —
      the file journal's ``batch`` semantics);
    * ``none``    → ``OFF``    (the OS decides; cheapest, weakest).

    Checkpoint compaction (:meth:`rewrite`) is a snapshot **table swap**:
    the snapshot is written to a fresh table inside one transaction that
    then drops the live table and renames the snapshot into place, so a
    crash mid-checkpoint leaves either the old log or the new snapshot,
    never a mixture.  ``skipped_trailing_records`` is always 0 — the
    engine has no torn tails to heal.
    """

    wraps_groups = False

    _SYNCHRONOUS = {"always": "FULL", "batch": "NORMAL", "none": "OFF"}

    def __init__(
        self,
        path: str,
        sync: str = "always",
        compaction_threshold: Optional[int] = None,
        codec: Any = "json",
    ) -> None:
        super().__init__(
            sync=sync, compaction_threshold=compaction_threshold, codec=codec
        )
        self.path = path
        self._con: Optional[sqlite3.Connection] = None
        directory = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(directory, exist_ok=True)
            self._con = sqlite3.connect(path, isolation_level=None)
            self._con.execute("PRAGMA journal_mode=WAL")
            self._con.execute(
                f"PRAGMA synchronous={self._SYNCHRONOUS[self.sync_policy]}"
            )
            self._con.execute(
                "CREATE TABLE IF NOT EXISTS log ("
                " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                " record TEXT NOT NULL)"
            )
            row = self._con.execute("SELECT COUNT(*) FROM log").fetchone()
            self._record_count = int(row[0])
        except (sqlite3.Error, OSError) as exc:
            # A half-open store (connect succeeded but a PRAGMA or the
            # schema probe failed, e.g. the path holds a non-SQLite file)
            # must not leak the connection and its -wal/-shm handles.
            self._close_quietly()
            raise PersistenceError(f"sqlite journal open failed: {exc}") from exc

    def _close_quietly(self) -> None:
        """Drop the DB handle without raising (refusal/teardown paths)."""
        con, self._con = self._con, None
        if con is not None:
            try:
                con.close()
            except sqlite3.Error:  # pragma: no cover - close cannot really fail
                pass

    @staticmethod
    def _row_value(frame: bytes) -> Any:
        # JSON frames stay TEXT rows (existing databases keep working and
        # stay greppable); binary frames become blobs.
        if frame[:1] == b"{":
            return frame.decode("utf-8").rstrip("\n")
        return sqlite3.Binary(frame)

    def _write_serialized(self, frames: List[bytes], record_count: int) -> int:
        """One commit group = one SQL transaction (engine atomicity)."""
        try:
            self._con.execute("BEGIN IMMEDIATE")
            try:
                self._con.executemany(
                    "INSERT INTO log(record) VALUES (?)",
                    [(self._row_value(frame),) for frame in frames],
                )
            except BaseException:
                self._con.execute("ROLLBACK")
                raise
            self._con.execute("COMMIT")
        except sqlite3.Error as exc:
            raise PersistenceError(f"sqlite journal append failed: {exc}") from exc
        self._record_count += record_count
        return sum(len(frame) for frame in frames)

    def read_all(self) -> List[Dict[str, Any]]:
        self.drain()
        self.skipped_trailing_records = 0  # the engine has no torn tails
        records: List[Dict[str, Any]] = []
        try:
            rows = self._con.execute(
                "SELECT seq, record FROM log ORDER BY seq"
            ).fetchall()
        except sqlite3.Error as exc:
            raise PersistenceError(f"sqlite journal read failed: {exc}") from exc
        for seq, value in rows:
            if isinstance(value, bytes):
                frame_records, _, _, torn = _scan_journal(
                    value, f"{self.path} seq={seq}"
                )
                if torn:
                    # Unlike a frame file, a committed row cannot be a
                    # crash artifact: any corruption is real and recovery
                    # refuses.  A refused store is unusable, so the DB
                    # handle (and its WAL/SHM siblings) is released before
                    # the refusal propagates — the caller only sees the
                    # exception and could never close the journal itself.
                    self._close_quietly()
                    raise PersistenceError(
                        f"corrupt journal row seq={seq} in {self.path}"
                    )
                records.extend(frame_records)
                continue
            try:
                _expand_record(json.loads(value), records)
            except json.JSONDecodeError as exc:
                self._close_quietly()
                raise PersistenceError(
                    f"corrupt journal row seq={seq} in {self.path}"
                ) from exc
        return records

    def recover(self) -> Tuple[List[str], Dict[str, List[Message]]]:
        """Replay the log; on refusal, release the DB handle first.

        Corruption can also surface while the base replay decodes
        individual records (not just while :meth:`read_all` scans rows),
        and recovery is typically the *only* reference the caller holds —
        :meth:`QueueManager.recover` never gets a journal back to close.
        """
        try:
            return super().recover()
        except PersistenceError:
            self._close_quietly()
            raise

    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        self.drain()
        frames = [self.codec.encode_record(record) for record in records]
        try:
            self._con.execute("BEGIN IMMEDIATE")
            try:
                self._con.execute("DROP TABLE IF EXISTS log_snapshot")
                self._con.execute(
                    "CREATE TABLE log_snapshot ("
                    " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                    " record TEXT NOT NULL)"
                )
                self._con.executemany(
                    "INSERT INTO log_snapshot(record) VALUES (?)",
                    [(self._row_value(frame),) for frame in frames],
                )
                self._con.execute("DROP TABLE log")
                self._con.execute("ALTER TABLE log_snapshot RENAME TO log")
            except BaseException:
                self._con.execute("ROLLBACK")
                raise
            self._con.execute("COMMIT")
            if self.sync_policy != "none":
                # Match FileJournal.rewrite forcing the snapshot out: fold
                # the WAL into the main database and fsync it.
                self._con.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error as exc:
            raise PersistenceError(f"sqlite journal rewrite failed: {exc}") from exc
        self._record_count = len(frames)

    def sync(self) -> None:
        """Force everything committed so far to stable storage."""
        self.drain()
        try:
            self._con.execute("PRAGMA wal_checkpoint(FULL)")
        except sqlite3.Error as exc:
            raise PersistenceError(f"sqlite journal sync failed: {exc}") from exc

    def close(self) -> None:
        """Checkpoint the WAL (per the sync policy) and close the handle."""
        self.drain()
        if self._con is None:
            return  # already released by a recovery refusal
        try:
            if self.sync_policy != "none":
                self._con.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error:
            pass  # closing must succeed even over a checkpoint hiccup
        self._close_quietly()

    def size(self) -> int:
        """Number of logical records currently in the live log."""
        return self._record_count


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

#: scheme -> factory(path, sync=..., compaction_threshold=...) -> Journal
JOURNAL_BACKENDS: Dict[str, Callable[..., Journal]] = {}

#: Journal filename suffix per backend (used by :func:`journal_factory_for`).
JOURNAL_SUFFIXES: Dict[str, str] = {}

#: Backends that need no path (the URL's path part is ignored).
_PATHLESS_BACKENDS = {"memory"}


def register_journal_backend(
    scheme: str, factory: Callable[..., Journal], suffix: str = ".journal"
) -> None:
    """Register a journal backend under a URL scheme.

    ``factory(path, sync=..., compaction_threshold=...)`` must return a
    :class:`Journal`; factories for codec-aware stores also accept a
    ``codec`` keyword.  Registering an existing scheme replaces it, so
    tests can shadow a backend with an instrumented one.
    """
    if not scheme or not scheme.isalnum():
        raise PersistenceError(f"bad journal backend scheme {scheme!r}")
    JOURNAL_BACKENDS[scheme.lower()] = factory
    JOURNAL_SUFFIXES[scheme.lower()] = suffix


register_journal_backend(
    "memory",
    lambda path, **kwargs: MemoryJournal(**kwargs),
)
register_journal_backend("file", FileJournal)
register_journal_backend("sqlite", SQLiteJournal, suffix=".db")
register_journal_backend(
    "binfile",
    lambda path, codec="binary", **kwargs: FileJournal(path, codec=codec, **kwargs),
)


def journal_for(
    url_or_path: str,
    sync: str = "always",
    compaction_threshold: Optional[int] = None,
    codec: Optional[str] = None,
) -> Journal:
    """Construct a journal from a backend URL (or bare file path).

    ``memory:`` ignores any path; ``file:<path>`` and ``sqlite:<path>``
    open (creating if needed) the named store; ``binfile:<path>`` is a
    file journal defaulting to the binary codec; a bare path with no
    scheme means ``file:``.  A ``?codec=<name>`` query (or the ``codec``
    argument) selects the record codec — recovery auto-detects formats,
    so switching codec over an existing journal is safe.  Unknown
    schemes raise :class:`PersistenceError` naming the registered
    backends.
    """
    scheme, sep, path = url_or_path.partition(":")
    if not sep:
        scheme, path = "file", url_or_path
    scheme = scheme.lower()
    path, query_sep, query = path.partition("?")
    if query_sep:
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "codec" and value:
                codec = value
            elif key:
                raise PersistenceError(
                    f"unknown journal URL option {key!r} in {url_or_path!r}"
                )
    factory = JOURNAL_BACKENDS.get(scheme)
    if factory is None and scheme == "sqlstore":
        # The shared-store backend lives in repro.mq.sqlstore (it builds
        # on this module, so it cannot be imported at the top).  Importing
        # it registers the scheme.
        import repro.mq.sqlstore  # noqa: F401  (import for side effect)

        factory = JOURNAL_BACKENDS.get(scheme)
    if factory is None:
        raise PersistenceError(
            f"unknown journal backend {scheme!r}; registered:"
            f" {sorted(JOURNAL_BACKENDS)}"
        )
    if not path and scheme not in _PATHLESS_BACKENDS:
        raise PersistenceError(f"journal backend {scheme!r} needs a path")
    kwargs: Dict[str, Any] = {
        "sync": sync,
        "compaction_threshold": compaction_threshold,
    }
    if codec is not None:
        kwargs["codec"] = codec
    return factory(path, **kwargs)


def journal_factory_for(
    backend: str,
    directory: Optional[str] = None,
    sync: str = "always",
    compaction_threshold: Optional[int] = None,
    codec: Optional[str] = None,
) -> Callable[[str], Journal]:
    """Per-manager journal factory for testbed-style deployments.

    Returns a ``factory(manager_name) -> Journal`` that places each
    manager's store under ``directory`` as ``<name>.journal`` /
    ``<name>.db`` (dots in the manager name become underscores), so one
    call configures a whole multi-manager deployment:

        Testbed(names, journaled=True,
                journal_factory=journal_factory_for("sqlite", tmpdir))

    ``memory`` needs no directory; every other backend requires one.
    ``codec`` (when given) selects the record codec for every journal.
    """
    backend = backend.lower()
    if backend == "sqlstore" and backend not in JOURNAL_BACKENDS:
        import repro.mq.sqlstore  # noqa: F401  (registers the scheme)
    if backend not in JOURNAL_BACKENDS:
        raise PersistenceError(
            f"unknown journal backend {backend!r}; registered:"
            f" {sorted(JOURNAL_BACKENDS)}"
        )
    if backend in _PATHLESS_BACKENDS:
        return lambda name: journal_for(
            f"{backend}:",
            sync=sync,
            compaction_threshold=compaction_threshold,
            codec=codec,
        )
    if directory is None:
        raise PersistenceError(f"journal backend {backend!r} needs a directory")
    suffix = JOURNAL_SUFFIXES.get(backend, ".journal")
    def factory(name: str) -> Journal:
        filename = name.replace(".", "_") + suffix
        return journal_for(
            f"{backend}:{os.path.join(directory, filename)}",
            sync=sync,
            compaction_threshold=compaction_threshold,
            codec=codec,
        )
    return factory
