"""Durability: an append-only journal with checkpointing and recovery.

Real queue managers write persistent messages to a recovery log before
acknowledging the put; on restart they rebuild queue content from the log.
This module provides that behaviour for :class:`~repro.mq.manager.QueueManager`:

* every **committed** put of a persistent message appends a ``put`` record,
* every destructive get of a persistent message appends a ``get`` record,
* :meth:`Journal.checkpoint` compacts the log into a snapshot record,
* :meth:`Journal.recover` folds the log into the set of live messages per
  queue.

Uncommitted transactional work is never journaled — the queue manager only
journals at commit, which gives the standard "presumed abort" behaviour on
crash: in-flight transactions vanish, and transactionally read messages
reappear on their queues.

Two stores exist: :class:`FileJournal` (JSON-lines on disk, real fsync-free
append I/O) and :class:`MemoryJournal` (same record stream, kept in a list;
used by tests that inject crashes without touching the filesystem).
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import PersistenceError
from repro.mq.message import DeliveryMode, Message

# ---------------------------------------------------------------------------
# Message <-> record codec
# ---------------------------------------------------------------------------


def encode_body(body: Any) -> Dict[str, Any]:
    """Encode a message body for the journal.

    JSON-representable bodies are stored natively (readable journals);
    anything else is pickled and base64-wrapped.
    """
    try:
        json.dumps(body)
        return {"kind": "json", "data": body}
    except (TypeError, ValueError):
        try:
            blob = pickle.dumps(body)
        except Exception as exc:  # noqa: BLE001 - report what body failed
            raise PersistenceError(
                f"message body of type {type(body).__name__} is not journalable"
            ) from exc
        return {"kind": "pickle", "data": base64.b64encode(blob).decode("ascii")}


def decode_body(record: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_body`."""
    kind = record.get("kind")
    if kind == "json":
        return record["data"]
    if kind == "pickle":
        return pickle.loads(base64.b64decode(record["data"]))
    raise PersistenceError(f"unknown body encoding {kind!r}")


def encode_message(message: Message) -> Dict[str, Any]:
    """Encode a full message as a JSON-able dict."""
    return {
        "message_id": message.message_id,
        "correlation_id": message.correlation_id,
        "body": encode_body(message.body),
        "properties": dict(message.properties),
        "priority": message.priority,
        "delivery_mode": message.delivery_mode.value,
        "expiry_ms": message.expiry_ms,
        "reply_to_manager": message.reply_to_manager,
        "reply_to_queue": message.reply_to_queue,
        "put_time_ms": message.put_time_ms,
        "backout_count": message.backout_count,
        "source_manager": message.source_manager,
    }


def decode_message(record: Dict[str, Any]) -> Message:
    """Inverse of :func:`encode_message`."""
    try:
        return Message(
            body=decode_body(record["body"]),
            message_id=record["message_id"],
            correlation_id=record.get("correlation_id"),
            properties=dict(record.get("properties", {})),
            priority=record.get("priority", 4),
            delivery_mode=DeliveryMode(record.get("delivery_mode", "persistent")),
            expiry_ms=record.get("expiry_ms"),
            reply_to_manager=record.get("reply_to_manager"),
            reply_to_queue=record.get("reply_to_queue"),
            put_time_ms=record.get("put_time_ms"),
            backout_count=record.get("backout_count", 0),
            source_manager=record.get("source_manager"),
        )
    except KeyError as exc:
        raise PersistenceError(f"journal message record missing field {exc}") from exc


# ---------------------------------------------------------------------------
# Journal stores
# ---------------------------------------------------------------------------


class Journal(ABC):
    """Append-only operation log for one queue manager."""

    records_written: int

    @abstractmethod
    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record."""

    @abstractmethod
    def read_all(self) -> List[Dict[str, Any]]:
        """Return every record, oldest first."""

    @abstractmethod
    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        """Atomically replace the log content (used by checkpointing)."""

    # -- logical operations -------------------------------------------------

    def log_put(self, queue_name: str, message: Message) -> None:
        """Record a committed put of a persistent message."""
        self.append(
            {"op": "put", "queue": queue_name, "message": encode_message(message)}
        )

    def log_get(self, queue_name: str, message_id: str) -> None:
        """Record a committed destructive get of a persistent message."""
        self.append({"op": "get", "queue": queue_name, "message_id": message_id})

    def log_queue_defined(self, queue_name: str) -> None:
        """Record that a queue was defined (so recovery recreates it)."""
        self.append({"op": "define", "queue": queue_name})

    def log_queue_deleted(self, queue_name: str) -> None:
        """Record that a queue was deleted."""
        self.append({"op": "delete", "queue": queue_name})

    def checkpoint(self, queues: Dict[str, List[Message]]) -> None:
        """Compact the log to a single snapshot of current persistent state."""
        records: List[Dict[str, Any]] = [{"op": "snapshot-begin"}]
        for queue_name in sorted(queues):
            records.append({"op": "define", "queue": queue_name})
            for message in queues[queue_name]:
                if message.is_persistent():
                    records.append(
                        {
                            "op": "put",
                            "queue": queue_name,
                            "message": encode_message(message),
                        }
                    )
        records.append({"op": "snapshot-end"})
        self.rewrite(records)

    def recover(self) -> Tuple[List[str], Dict[str, List[Message]]]:
        """Fold the log into (defined queue names, live messages per queue).

        Replay semantics: ``put`` adds a message, ``get`` removes it,
        ``define``/``delete`` maintain the queue set.  Unknown record types
        raise :class:`PersistenceError` (a corrupt journal must not be
        silently half-recovered).
        """
        queue_names: List[str] = []
        live: Dict[str, Dict[str, Message]] = {}
        for record in self.read_all():
            op = record.get("op")
            if op in ("snapshot-begin", "snapshot-end"):
                continue
            queue_name = record.get("queue")
            if op == "define":
                if queue_name not in live:
                    queue_names.append(queue_name)
                    live[queue_name] = {}
            elif op == "delete":
                if queue_name in live:
                    queue_names.remove(queue_name)
                    del live[queue_name]
            elif op == "put":
                message = decode_message(record["message"])
                live.setdefault(queue_name, {})
                if queue_name not in queue_names:
                    queue_names.append(queue_name)
                live[queue_name][message.message_id] = message
            elif op == "get":
                live.get(queue_name, {}).pop(record.get("message_id"), None)
            else:
                raise PersistenceError(f"unknown journal op {op!r}")
        return queue_names, {
            name: list(messages.values()) for name, messages in live.items()
        }


class MemoryJournal(Journal):
    """Journal kept in memory; survives simulated crashes of the manager.

    Tests model a crash by discarding the :class:`QueueManager` object and
    constructing a fresh one over the same journal instance — exactly the
    state a restarted process would see on disk.
    """

    def __init__(self) -> None:
        self._records: List[str] = []
        self.records_written = 0

    def append(self, record: Dict[str, Any]) -> None:
        # Serialize on append so bodies must be journalable immediately,
        # matching the file journal's failure behaviour.
        self._records.append(json.dumps(record))
        self.records_written += 1

    def read_all(self) -> List[Dict[str, Any]]:
        return [json.loads(line) for line in self._records]

    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        self._records = [json.dumps(record) for record in records]

    def size(self) -> int:
        """Number of records currently in the log."""
        return len(self._records)


class FileJournal(Journal):
    """JSON-lines journal on disk with atomic checkpoint rewrite."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.records_written = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # Touch the file so recover() on a fresh journal succeeds.
        if not os.path.exists(path):
            with open(path, "w", encoding="utf-8"):
                pass

    def append(self, record: Dict[str, Any]) -> None:
        try:
            with open(self.path, "a", encoding="utf-8") as f:
                f.write(json.dumps(record))
                f.write("\n")
        except OSError as exc:
            raise PersistenceError(f"journal append failed: {exc}") from exc
        self.records_written += 1

    def read_all(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as f:
                for line_no, line in enumerate(f, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(json.loads(line))
                    except json.JSONDecodeError as exc:
                        raise PersistenceError(
                            f"corrupt journal line {line_no} in {self.path}"
                        ) from exc
        except OSError as exc:
            raise PersistenceError(f"journal read failed: {exc}") from exc
        return records

    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        tmp_path = self.path + ".tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as f:
                for record in records:
                    f.write(json.dumps(record))
                    f.write("\n")
            os.replace(tmp_path, self.path)
        except OSError as exc:
            raise PersistenceError(f"journal rewrite failed: {exc}") from exc
