"""Durability: an append-only journal with checkpointing and recovery.

Real queue managers write persistent messages to a recovery log before
acknowledging the put; on restart they rebuild queue content from the log.
This module provides that behaviour for :class:`~repro.mq.manager.QueueManager`:

* every **committed** put of a persistent message appends a ``put`` record,
* every destructive get of a persistent message appends a ``get`` record,
* :meth:`Journal.checkpoint` compacts the log into a snapshot record,
* :meth:`Journal.recover` folds the log into the set of live messages per
  queue.

Uncommitted transactional work is never journaled — the queue manager only
journals at commit, which gives the standard "presumed abort" behaviour on
crash: in-flight transactions vanish, and transactionally read messages
reappear on their queues.

Throughput comes from **group commit** (Gray: queue systems batch many log
records per force-out):

* :meth:`Journal.append_many` writes a whole batch of records with a single
  write+flush;
* :meth:`Journal.batch` is a context manager that buffers every append made
  inside it and commits the lot as one group write on exit — the queue
  manager exposes it as ``QueueManager.group_commit()`` and the
  conditional-send fan-out routes through it, so one conditional send costs
  one journal flush instead of ``2N+1``;
* a multi-record commit group is written as **one physical line** (a
  ``group`` wrapper record), so a torn write can never persist a prefix of
  a group: recovery replays the whole group or drops it with the torn
  tail, making group commit genuinely all-or-nothing;
* :meth:`Journal.post_commit` defers an action until the staged records
  are durable — the network layer uses it to hold synchronous
  cross-manager delivery until the sender's commit group has been
  written, preserving the compensation-and-log-first durability order;
* the **sync policy** (``always`` / ``batch`` / ``none``) controls when the
  file journal forces data to disk (``os.fsync``): per commit group, only
  on explicit :meth:`FileJournal.sync` / checkpoint, or never;
* a ``compaction_threshold`` lets the owning queue manager trigger
  checkpoint compaction automatically once the log grows past a bound, so
  ``rewrite`` cost is amortized over many appends.

Three stores exist: :class:`FileJournal` (JSON-lines on disk, one
persistent append handle), :class:`SQLiteJournal` (one SQLite database in
WAL mode, commit groups as SQL transactions), and :class:`MemoryJournal`
(same record stream, kept in a list; used by tests that inject crashes
without touching the filesystem).  All count ``flush_count`` /
``bytes_written`` / batch sizes, and report them through an attached
:class:`~repro.obs.registry.MetricsRegistry` (``journal.flushes``,
``journal.records``, ``journal.bytes``, ``journal.batch_records``) when
the owning manager carries one.

Deployments pick the store by URL through the **backend registry**:
:func:`journal_for` maps ``memory:``, ``file:<path>``, and
``sqlite:<path>`` (a bare path means ``file:``) to a constructed journal,
and :func:`journal_factory_for` derives per-manager journals for
testbed-style deployments.  :func:`register_journal_backend` adds new
schemes without touching callers.
"""

from __future__ import annotations

import base64
import json
import logging
import os
import pickle
import sqlite3
from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import PersistenceError
from repro.mq.message import DeliveryMode, Message

logger = logging.getLogger(__name__)

#: Valid journal sync policies (file journal; the memory journal accepts
#: them for interface symmetry but has nothing to fsync).
SYNC_POLICIES = ("always", "batch", "none")

# ---------------------------------------------------------------------------
# Message <-> record codec
# ---------------------------------------------------------------------------

#: Scalar types the json module emits natively.
_JSON_SCALARS = (str, int, float, bool, type(None))


def _is_json_safe(value: Any, _seen: Optional[set] = None) -> bool:
    """Cheap structural probe: would ``json.dumps(value)`` succeed?

    Walks the value checking types only — no string is ever built, unlike
    a throwaway ``json.dumps`` probe.  Containers are checked against a
    seen-set so circular structures report unsafe (``json.dumps`` raises
    ``ValueError`` on them) instead of recursing forever.
    """
    if isinstance(value, bool) or value is None:
        return True
    if isinstance(value, _JSON_SCALARS):
        return True
    if isinstance(value, (list, tuple)):
        if _seen is None:
            _seen = set()
        if id(value) in _seen:
            return False
        _seen.add(id(value))
        result = all(_is_json_safe(item, _seen) for item in value)
        _seen.discard(id(value))
        return result
    if isinstance(value, dict):
        if _seen is None:
            _seen = set()
        if id(value) in _seen:
            return False
        _seen.add(id(value))
        # Only str keys: json.dumps would coerce int/bool/None keys to
        # strings, silently corrupting the body on decode — pickle those.
        result = all(
            isinstance(key, str) and _is_json_safe(val, _seen)
            for key, val in value.items()
        )
        _seen.discard(id(value))
        return result
    return False


def encode_body(body: Any) -> Dict[str, Any]:
    """Encode a message body for the journal.

    JSON-representable bodies are stored natively (readable journals);
    anything else is pickled and base64-wrapped.  The JSON check is a
    structural type probe — the body is serialized exactly once, when the
    enclosing record is appended, not twice.
    """
    if _is_json_safe(body):
        return {"kind": "json", "data": body}
    try:
        blob = pickle.dumps(body)
    except Exception as exc:  # noqa: BLE001 - report what body failed
        raise PersistenceError(
            f"message body of type {type(body).__name__} is not journalable"
        ) from exc
    return {"kind": "pickle", "data": base64.b64encode(blob).decode("ascii")}


def decode_body(record: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_body`."""
    kind = record.get("kind")
    if kind == "json":
        return record["data"]
    if kind == "pickle":
        return pickle.loads(base64.b64decode(record["data"]))
    raise PersistenceError(f"unknown body encoding {kind!r}")


def encode_message(message: Message) -> Dict[str, Any]:
    """Encode a full message as a JSON-able dict."""
    return {
        "message_id": message.message_id,
        "correlation_id": message.correlation_id,
        "body": encode_body(message.body),
        "properties": dict(message.properties),
        "priority": message.priority,
        "delivery_mode": message.delivery_mode.value,
        "expiry_ms": message.expiry_ms,
        "reply_to_manager": message.reply_to_manager,
        "reply_to_queue": message.reply_to_queue,
        "put_time_ms": message.put_time_ms,
        "backout_count": message.backout_count,
        "source_manager": message.source_manager,
    }


def decode_message(record: Dict[str, Any]) -> Message:
    """Inverse of :func:`encode_message`."""
    try:
        return Message(
            body=decode_body(record["body"]),
            message_id=record["message_id"],
            correlation_id=record.get("correlation_id"),
            properties=dict(record.get("properties", {})),
            priority=record.get("priority", 4),
            delivery_mode=DeliveryMode(record.get("delivery_mode", "persistent")),
            expiry_ms=record.get("expiry_ms"),
            reply_to_manager=record.get("reply_to_manager"),
            reply_to_queue=record.get("reply_to_queue"),
            put_time_ms=record.get("put_time_ms"),
            backout_count=record.get("backout_count", 0),
            source_manager=record.get("source_manager"),
        )
    except KeyError as exc:
        raise PersistenceError(f"journal message record missing field {exc}") from exc


def _expand_record(record: Dict[str, Any], out: List[Dict[str, Any]]) -> None:
    """Append ``record`` to ``out``, inlining ``group`` wrapper records.

    A ``group`` record is the single-line envelope a multi-record commit
    group is written as (see :meth:`Journal._commit_lines`); readers see
    the logical member records, never the envelope.
    """
    if record.get("op") == "group":
        out.extend(record.get("records", []))
    else:
        out.append(record)


def _check_sync_policy(sync: str) -> str:
    if sync not in SYNC_POLICIES:
        raise PersistenceError(
            f"unknown sync policy {sync!r}; expected one of {SYNC_POLICIES}"
        )
    return sync


# ---------------------------------------------------------------------------
# Journal stores
# ---------------------------------------------------------------------------


class Journal(ABC):
    """Append-only operation log for one queue manager.

    Args:
        sync: Force-out policy — ``"always"`` syncs every commit group to
            stable storage, ``"batch"`` only on explicit :meth:`sync` and
            checkpoints, ``"none"`` never (the OS decides).  Only the file
            journal actually fsyncs; the policy is accepted everywhere so
            deployments can switch stores without changing configuration.
        compaction_threshold: When set, :meth:`needs_compaction` turns true
            once the live log holds at least this many records; the owning
            queue manager then checkpoints automatically, amortizing the
            rewrite cost over many appends.
    """

    #: Whether multi-record commit groups must be wrapped into one
    #: physical ``group`` line before reaching :meth:`_write_serialized`.
    #: Line-oriented stores need the wrapper for torn-write atomicity; a
    #: store with engine-level transactions (:class:`SQLiteJournal`) sets
    #: this false and receives the member records individually, committing
    #: them as one transaction instead.
    wraps_groups = True

    def __init__(
        self,
        sync: str = "always",
        compaction_threshold: Optional[int] = None,
    ) -> None:
        self.sync_policy = _check_sync_policy(sync)
        self.compaction_threshold = compaction_threshold
        #: records durably handed to the store over this object's lifetime
        self.records_written = 0
        #: commit groups written (each is one write+flush; the unit whose
        #: reduction group commit exists for)
        self.flush_count = 0
        #: serialized bytes handed to the store (appends only)
        self.bytes_written = 0
        #: checkpoint rewrites performed
        self.rewrites = 0
        #: corrupt trailing records skipped by the last :meth:`read_all`
        #: (a partial line from a crash mid-append — a torn multi-record
        #: group counts once); the file journal includes a torn tail it
        #: healed away at open time.  See :meth:`recover`.
        self.skipped_trailing_records = 0
        #: optional metrics registry (the owning manager attaches its own)
        self.metrics = None  # type: Optional[Any]
        #: crash-point hooks (:mod:`repro.chaos`): called with the logical
        #: record count immediately before / after each physical commit
        #: group is handed to the store.  A pre-flush hook that raises
        #: models a crash with the group lost; a post-flush hook that
        #: raises models a crash with the group durable.  ``None`` (the
        #: default) costs one attribute check per flush.
        self.on_pre_flush: Optional[Callable[[int], None]] = None
        self.on_post_flush: Optional[Callable[[int], None]] = None
        self._batch_depth = 0
        self._batch_buffer: List[str] = []
        self._post_commit_hooks: List[Callable[[], None]] = []

    # -- store primitives ---------------------------------------------------

    @abstractmethod
    def _write_serialized(self, lines: List[str], record_count: int) -> int:
        """Durably append pre-serialized lines; returns byte count.

        One call is one commit group: implementations perform a single
        write (+flush/fsync per the sync policy) for the whole list.
        ``record_count`` is the number of *logical* records the lines
        carry (a multi-record group arrives as one wrapped line), for the
        store's :meth:`size` accounting.
        """

    @abstractmethod
    def read_all(self) -> List[Dict[str, Any]]:
        """Return every record, oldest first."""

    @abstractmethod
    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        """Atomically replace the log content (used by checkpointing)."""

    @abstractmethod
    def size(self) -> int:
        """Number of logical records currently in the live log.

        Members of a multi-record commit group count individually, even
        though the group occupies one physical line.
        """

    # -- appends ------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (buffered inside :meth:`batch`)."""
        self._stage([json.dumps(record)])

    def append_many(self, records: Iterable[Dict[str, Any]]) -> None:
        """Group-commit a batch of records with a single write+flush.

        Serialization happens eagerly, so an unjournalable record raises
        before anything is written.  The group is written as one physical
        line (see :meth:`_commit_lines`), so it is all-or-nothing even
        against a torn write: recovery replays the whole group or none
        of it, never a prefix.
        """
        lines = [json.dumps(record) for record in records]
        if lines:
            self._stage(lines)

    @contextmanager
    def batch(self) -> Iterator["Journal"]:
        """Buffer every append made inside the block into one commit group.

        Nested batches join the outermost group.  The group is written on
        exit even when the block raises: the in-memory queue state it
        journals has already been applied, and an unwritten record would
        lose committed work on recovery.  Deferred :meth:`post_commit`
        actions run after the group is durable — and are dropped whenever
        the group aborts instead of committing (the write itself fails,
        e.g. a :class:`~repro.chaos.faults.CrashPoint` from a pre-flush
        hook, or the block raises with nothing staged), so nothing acts on
        records that never reached the log and no stale callback survives
        to fire on the next unrelated commit.  A raising hook likewise
        clears every hook still queued (including ones registered by hooks
        that already ran) before the exception propagates.
        """
        self._batch_depth += 1
        body_raised = False
        try:
            yield self
        except BaseException:
            body_raised = True
            raise
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                try:
                    if self._batch_buffer:
                        lines, self._batch_buffer = self._batch_buffer, []
                        self._commit_lines(lines)
                    elif body_raised:
                        # Nothing was staged and the block aborted: the
                        # hooks belong to work that never happened.
                        self._post_commit_hooks.clear()
                except BaseException:
                    self._post_commit_hooks.clear()
                    raise
                try:
                    while self._post_commit_hooks:
                        hooks, self._post_commit_hooks = (
                            self._post_commit_hooks,
                            [],
                        )
                        for hook in hooks:
                            hook()
                except BaseException:
                    # A hook died mid-run; hooks it (or its predecessors)
                    # registered must not linger into the next commit.
                    self._post_commit_hooks.clear()
                    raise

    def post_commit(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once currently-staged records are durable.

        Outside a :meth:`batch` everything appended so far has already
        been committed, so the callback runs immediately.  Inside a batch
        it is deferred until the outermost commit group has been written.
        The network layer uses this to hold synchronous cross-manager
        delivery until the sender's commit group (compensation staging,
        sender-log entry, transmission parking) is durable — delivering
        earlier would let a data message reach the target's journal while
        the records that make it compensatable are still buffered.
        """
        if self._batch_depth:
            self._post_commit_hooks.append(callback)
        else:
            callback()

    def _stage(self, lines: List[str]) -> None:
        if self._batch_depth:
            self._batch_buffer.extend(lines)
        else:
            self._commit_lines(lines)

    def _commit_lines(self, lines: List[str]) -> None:
        if self.wraps_groups and len(lines) > 1:
            # A multi-record group becomes ONE physical line, so a torn
            # write cannot persist a prefix of the group: either the line
            # parses and the whole group replays, or it is dropped as the
            # torn tail.  Members are serialized already; wrap without
            # re-serializing.  Stores with engine transactions
            # (``wraps_groups = False``) instead receive the members
            # individually and commit them as one transaction.
            physical = ['{"op": "group", "records": [' + ", ".join(lines) + "]}"]
        else:
            physical = lines
        if self.on_pre_flush is not None:
            self.on_pre_flush(len(lines))
        nbytes = self._write_serialized(physical, len(lines))
        if self.on_post_flush is not None:
            self.on_post_flush(len(lines))
        self.records_written += len(lines)
        self.flush_count += 1
        self.bytes_written += nbytes
        if self.metrics is not None:
            self.metrics.incr("journal.flushes")
            self.metrics.incr("journal.records", len(lines))
            self.metrics.incr("journal.bytes", nbytes)
            self.metrics.observe("journal.batch_records", len(lines))

    # -- maintenance --------------------------------------------------------

    def close(self) -> None:
        """Release any store resources (file handles, connections).

        The base journal holds none; stores with handles override this.
        Harnesses may call it on any backend unconditionally.
        """

    def needs_compaction(self) -> bool:
        """True when the live log has outgrown ``compaction_threshold``."""
        return (
            self.compaction_threshold is not None
            and self._batch_depth == 0
            and self.size() >= self.compaction_threshold
        )

    # -- logical operations -------------------------------------------------

    def log_put(self, queue_name: str, message: Message) -> None:
        """Record a committed put of a persistent message."""
        self.append(
            {"op": "put", "queue": queue_name, "message": encode_message(message)}
        )

    def log_put_many(self, puts: Iterable[Tuple[str, Message]]) -> None:
        """Record a batch of committed puts as one commit group."""
        self.append_many(
            {"op": "put", "queue": queue_name, "message": encode_message(message)}
            for queue_name, message in puts
        )

    def log_get(self, queue_name: str, message_id: str) -> None:
        """Record a committed destructive get of a persistent message."""
        self.append({"op": "get", "queue": queue_name, "message_id": message_id})

    def log_queue_defined(self, queue_name: str) -> None:
        """Record that a queue was defined (so recovery recreates it)."""
        self.append({"op": "define", "queue": queue_name})

    def log_queue_deleted(self, queue_name: str) -> None:
        """Record that a queue was deleted."""
        self.append({"op": "delete", "queue": queue_name})

    def checkpoint(self, queues: Dict[str, List[Message]]) -> None:
        """Compact the log to a single snapshot of current persistent state."""
        records: List[Dict[str, Any]] = [{"op": "snapshot-begin"}]
        for queue_name in sorted(queues):
            records.append({"op": "define", "queue": queue_name})
            for message in queues[queue_name]:
                if message.is_persistent():
                    records.append(
                        {
                            "op": "put",
                            "queue": queue_name,
                            "message": encode_message(message),
                        }
                    )
        records.append({"op": "snapshot-end"})
        self.rewrite(records)
        self.rewrites += 1
        if self.metrics is not None:
            self.metrics.incr("journal.checkpoints")

    def recover(self) -> Tuple[List[str], Dict[str, List[Message]]]:
        """Fold the log into (defined queue names, live messages per queue).

        Replay semantics: ``put`` adds a message, ``get`` removes it,
        ``define``/``delete`` maintain the queue set.  Unknown record types
        raise :class:`PersistenceError` (a corrupt journal must not be
        silently half-recovered).  A corrupt **trailing** record — the
        partial line a crash mid-append leaves behind — is skipped but
        never silently: it is logged and counted in
        :attr:`skipped_trailing_records`, which this method refreshes.
        """
        queue_names: List[str] = []
        live: Dict[str, Dict[str, Message]] = {}
        for record in self.read_all():
            op = record.get("op")
            if op in ("snapshot-begin", "snapshot-end"):
                continue
            queue_name = record.get("queue")
            if op == "define":
                if queue_name not in live:
                    queue_names.append(queue_name)
                    live[queue_name] = {}
            elif op == "delete":
                if queue_name in live:
                    queue_names.remove(queue_name)
                    del live[queue_name]
            elif op == "put":
                message = decode_message(record["message"])
                live.setdefault(queue_name, {})
                if queue_name not in queue_names:
                    queue_names.append(queue_name)
                live[queue_name][message.message_id] = message
            elif op == "get":
                live.get(queue_name, {}).pop(record.get("message_id"), None)
            else:
                raise PersistenceError(f"unknown journal op {op!r}")
        return queue_names, {
            name: list(messages.values()) for name, messages in live.items()
        }


class MemoryJournal(Journal):
    """Journal kept in memory; survives simulated crashes of the manager.

    Tests model a crash by discarding the :class:`QueueManager` object and
    constructing a fresh one over the same journal instance — exactly the
    state a restarted process would see on disk.  Flush accounting matches
    the file journal's (one commit group per append / append_many /
    batch), so group-commit benchmarks run without touching a disk.
    """

    def __init__(
        self,
        sync: str = "always",
        compaction_threshold: Optional[int] = None,
    ) -> None:
        super().__init__(sync=sync, compaction_threshold=compaction_threshold)
        self._records: List[str] = []
        self._record_count = 0

    def _write_serialized(self, lines: List[str], record_count: int) -> int:
        # Records arrive pre-serialized (bodies were validated journalable
        # at append time, matching the file journal's failure behaviour).
        self._records.extend(lines)
        self._record_count += record_count
        return sum(len(line) + 1 for line in lines)

    def read_all(self) -> List[Dict[str, Any]]:
        self.skipped_trailing_records = 0
        records: List[Dict[str, Any]] = []
        for line in self._records:
            _expand_record(json.loads(line), records)
        return records

    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        self._records = [json.dumps(record) for record in records]
        self._record_count = len(self._records)

    def size(self) -> int:
        """Number of logical records currently in the log."""
        return self._record_count


class FileJournal(Journal):
    """JSON-lines journal on disk with atomic checkpoint rewrite.

    The append handle stays open for the journal's lifetime (no
    per-append open/close); :meth:`rewrite` swaps the file atomically and
    reopens it.  Opening an existing log **heals** a torn final line (the
    artifact of a crash mid-append) by truncating it — counted in
    :attr:`skipped_trailing_records` — so later appends can never
    concatenate onto torn text.  The sync policy decides when
    ``os.fsync`` runs:

    * ``always`` — after every commit group (a group-committed batch still
      costs one fsync, which is the point of batching);
    * ``batch`` — only on explicit :meth:`sync` and on checkpoints;
    * ``none`` — never (page cache only; cheapest, weakest).
    """

    def __init__(
        self,
        path: str,
        sync: str = "always",
        compaction_threshold: Optional[int] = None,
    ) -> None:
        super().__init__(sync=sync, compaction_threshold=compaction_threshold)
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(directory, exist_ok=True)
            # A crash can tear the final append mid-line; appending after
            # it would concatenate the next record onto the torn text,
            # turning an ignorable torn tail into mid-file corruption
            # that recovery refuses.  Heal before opening the append
            # handle: the torn tail was never acknowledged durable (every
            # committed write ends with a newline before fsync returns),
            # so truncating it is exactly crash semantics.
            self._healed_trailing_records = self._heal_torn_tail()
            # "a+" creates the file if missing, so recover() on a fresh
            # journal succeeds; count any pre-existing records once.
            self._fh = open(path, "a+", encoding="utf-8")
            self._records_in_log = self._count_records()
        except OSError as exc:
            raise PersistenceError(f"journal open failed: {exc}") from exc
        self.skipped_trailing_records = self._healed_trailing_records

    def _heal_torn_tail(self) -> int:
        """Truncate an unterminated final line left by a crash mid-append.

        Returns the number of torn records removed (0 or 1).
        """
        try:
            fh = open(self.path, "rb+")
        except FileNotFoundError:
            return 0
        with fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return 0
            keep = data.rfind(b"\n") + 1
            fh.truncate(keep)
        logger.warning(
            "journal %s: truncated torn trailing record (%d bytes) left by"
            " a crash mid-append",
            self.path,
            len(data) - keep,
        )
        return 1

    def _count_records(self) -> int:
        """Logical records in the file (group members counted individually).

        Runs once at open, after torn-tail healing, so the count reflects
        only intact record lines.  An unparseable line counts as one —
        :meth:`read_all` will reject mid-file corruption properly.
        """
        count = 0
        with open(self.path, "r", encoding="utf-8") as f:
            for line in f:
                stripped = line.strip()
                if not stripped:
                    continue
                if stripped.startswith('{"op": "group"'):
                    try:
                        expanded: List[Dict[str, Any]] = []
                        _expand_record(json.loads(stripped), expanded)
                        count += len(expanded)
                        continue
                    except json.JSONDecodeError:
                        pass
                count += 1
        return count

    def _write_serialized(self, lines: List[str], record_count: int) -> int:
        buf = "\n".join(lines) + "\n"
        try:
            self._fh.write(buf)
            self._fh.flush()
            if self.sync_policy == "always":
                os.fsync(self._fh.fileno())
        except (OSError, ValueError) as exc:
            raise PersistenceError(f"journal append failed: {exc}") from exc
        self._records_in_log += record_count
        return len(buf.encode("utf-8"))

    def sync(self) -> None:
        """Force everything written so far to stable storage."""
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, ValueError) as exc:
            raise PersistenceError(f"journal sync failed: {exc}") from exc

    def close(self) -> None:
        """Flush, force out, and release the append handle."""
        if self._fh.closed:
            return
        self._fh.flush()
        if self.sync_policy != "none":
            os.fsync(self._fh.fileno())
        self._fh.close()

    def read_all(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        # Torn records healed away when the file was opened stay counted:
        # they are part of what recovery skipped for this log.
        self.skipped_trailing_records = self._healed_trailing_records
        try:
            if not self._fh.closed:
                self._fh.flush()
            with open(self.path, "r", encoding="utf-8") as f:
                lines = f.readlines()
        except OSError as exc:
            raise PersistenceError(f"journal read failed: {exc}") from exc
        last_content = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1
        )
        for line_no, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                _expand_record(json.loads(stripped), records)
            except json.JSONDecodeError as exc:
                if line_no - 1 == last_content:
                    # A torn final line is the normal signature of a crash
                    # mid-append: the records before it are intact, the
                    # torn one was never acknowledged durable.  Skip it,
                    # but leave an audit trail.
                    self.skipped_trailing_records += 1
                    logger.warning(
                        "journal %s: skipped corrupt trailing record at line %d",
                        self.path,
                        line_no,
                    )
                    break
                # Corruption *before* intact records is not a crash
                # artefact; refuse to half-recover.
                raise PersistenceError(
                    f"corrupt journal line {line_no} in {self.path}"
                ) from exc
        return records

    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        tmp_path = self.path + ".tmp"
        lines = [json.dumps(record) for record in records]
        try:
            with open(tmp_path, "w", encoding="utf-8") as f:
                for line in lines:
                    f.write(line)
                    f.write("\n")
                f.flush()
                if self.sync_policy != "none":
                    os.fsync(f.fileno())
            if not self._fh.closed:
                self._fh.close()
            os.replace(tmp_path, self.path)
            self._fh = open(self.path, "a+", encoding="utf-8")
        except OSError as exc:
            raise PersistenceError(f"journal rewrite failed: {exc}") from exc
        self._records_in_log = len(lines)
        # The rewritten log no longer contains the healed torn tail.
        self._healed_trailing_records = 0

    def size(self) -> int:
        """Number of logical records currently in the live log."""
        return self._records_in_log


class SQLiteJournal(Journal):
    """Journal stored in one SQLite database in WAL mode.

    Torn-write atomicity comes from the storage engine instead of the
    file journal's one-physical-line group trick: ``wraps_groups`` is
    false, so a multi-record commit group arrives as individual member
    records and is inserted inside a single SQL transaction — the engine
    guarantees the whole group is durable or none of it is, even across
    a crash mid-commit.  The crash-point hooks fire at the same
    boundaries as the other stores (pre-flush before ``BEGIN``,
    post-flush after ``COMMIT``), so the chaos explorer can kill the
    manager mid-commit and recovery sees exactly the engine's view.

    The sync policy maps onto ``PRAGMA synchronous``:

    * ``always``  → ``FULL``   (every commit group reaches stable storage
      before the put returns — the paper's reliability stance);
    * ``batch``   → ``NORMAL`` (WAL syncs on checkpoints; an OS crash can
      lose the tail of recent commit groups, never corrupt older ones —
      the file journal's ``batch`` semantics);
    * ``none``    → ``OFF``    (the OS decides; cheapest, weakest).

    Checkpoint compaction (:meth:`rewrite`) is a snapshot **table swap**:
    the snapshot is written to a fresh table inside one transaction that
    then drops the live table and renames the snapshot into place, so a
    crash mid-checkpoint leaves either the old log or the new snapshot,
    never a mixture.  ``skipped_trailing_records`` is always 0 — the
    engine has no torn tails to heal.
    """

    wraps_groups = False

    _SYNCHRONOUS = {"always": "FULL", "batch": "NORMAL", "none": "OFF"}

    def __init__(
        self,
        path: str,
        sync: str = "always",
        compaction_threshold: Optional[int] = None,
    ) -> None:
        super().__init__(sync=sync, compaction_threshold=compaction_threshold)
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(directory, exist_ok=True)
            self._con = sqlite3.connect(path, isolation_level=None)
            self._con.execute("PRAGMA journal_mode=WAL")
            self._con.execute(
                f"PRAGMA synchronous={self._SYNCHRONOUS[self.sync_policy]}"
            )
            self._con.execute(
                "CREATE TABLE IF NOT EXISTS log ("
                " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                " record TEXT NOT NULL)"
            )
            row = self._con.execute("SELECT COUNT(*) FROM log").fetchone()
            self._record_count = int(row[0])
        except (sqlite3.Error, OSError) as exc:
            raise PersistenceError(f"sqlite journal open failed: {exc}") from exc

    def _write_serialized(self, lines: List[str], record_count: int) -> int:
        """One commit group = one SQL transaction (engine atomicity)."""
        try:
            self._con.execute("BEGIN IMMEDIATE")
            try:
                self._con.executemany(
                    "INSERT INTO log(record) VALUES (?)",
                    [(line,) for line in lines],
                )
            except BaseException:
                self._con.execute("ROLLBACK")
                raise
            self._con.execute("COMMIT")
        except sqlite3.Error as exc:
            raise PersistenceError(f"sqlite journal append failed: {exc}") from exc
        self._record_count += record_count
        return sum(len(line.encode("utf-8")) + 1 for line in lines)

    def read_all(self) -> List[Dict[str, Any]]:
        self.skipped_trailing_records = 0  # the engine has no torn tails
        records: List[Dict[str, Any]] = []
        try:
            rows = self._con.execute(
                "SELECT seq, record FROM log ORDER BY seq"
            ).fetchall()
        except sqlite3.Error as exc:
            raise PersistenceError(f"sqlite journal read failed: {exc}") from exc
        for seq, text in rows:
            try:
                _expand_record(json.loads(text), records)
            except json.JSONDecodeError as exc:
                # Unlike a line file, a committed row cannot be a crash
                # artifact: any corruption is real and recovery refuses.
                raise PersistenceError(
                    f"corrupt journal row seq={seq} in {self.path}"
                ) from exc
        return records

    def rewrite(self, records: Iterable[Dict[str, Any]]) -> None:
        lines = [json.dumps(record) for record in records]
        try:
            self._con.execute("BEGIN IMMEDIATE")
            try:
                self._con.execute("DROP TABLE IF EXISTS log_snapshot")
                self._con.execute(
                    "CREATE TABLE log_snapshot ("
                    " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                    " record TEXT NOT NULL)"
                )
                self._con.executemany(
                    "INSERT INTO log_snapshot(record) VALUES (?)",
                    [(line,) for line in lines],
                )
                self._con.execute("DROP TABLE log")
                self._con.execute("ALTER TABLE log_snapshot RENAME TO log")
            except BaseException:
                self._con.execute("ROLLBACK")
                raise
            self._con.execute("COMMIT")
            if self.sync_policy != "none":
                # Match FileJournal.rewrite forcing the snapshot out: fold
                # the WAL into the main database and fsync it.
                self._con.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error as exc:
            raise PersistenceError(f"sqlite journal rewrite failed: {exc}") from exc
        self._record_count = len(lines)

    def sync(self) -> None:
        """Force everything committed so far to stable storage."""
        try:
            self._con.execute("PRAGMA wal_checkpoint(FULL)")
        except sqlite3.Error as exc:
            raise PersistenceError(f"sqlite journal sync failed: {exc}") from exc

    def close(self) -> None:
        """Checkpoint the WAL (per the sync policy) and close the handle."""
        try:
            if self.sync_policy != "none":
                self._con.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error:
            pass  # closing must succeed even over a checkpoint hiccup
        self._con.close()

    def size(self) -> int:
        """Number of logical records currently in the live log."""
        return self._record_count


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

#: scheme -> factory(path, sync=..., compaction_threshold=...) -> Journal
JOURNAL_BACKENDS: Dict[str, Callable[..., Journal]] = {}

#: Journal filename suffix per backend (used by :func:`journal_factory_for`).
JOURNAL_SUFFIXES: Dict[str, str] = {}

#: Backends that need no path (the URL's path part is ignored).
_PATHLESS_BACKENDS = {"memory"}


def register_journal_backend(
    scheme: str, factory: Callable[..., Journal], suffix: str = ".journal"
) -> None:
    """Register a journal backend under a URL scheme.

    ``factory(path, sync=..., compaction_threshold=...)`` must return a
    :class:`Journal`.  Registering an existing scheme replaces it, so
    tests can shadow a backend with an instrumented one.
    """
    if not scheme or not scheme.isalnum():
        raise PersistenceError(f"bad journal backend scheme {scheme!r}")
    JOURNAL_BACKENDS[scheme.lower()] = factory
    JOURNAL_SUFFIXES[scheme.lower()] = suffix


register_journal_backend(
    "memory",
    lambda path, **kwargs: MemoryJournal(**kwargs),
)
register_journal_backend("file", FileJournal)
register_journal_backend("sqlite", SQLiteJournal, suffix=".db")


def journal_for(
    url_or_path: str,
    sync: str = "always",
    compaction_threshold: Optional[int] = None,
) -> Journal:
    """Construct a journal from a backend URL (or bare file path).

    ``memory:`` ignores any path; ``file:<path>`` and ``sqlite:<path>``
    open (creating if needed) the named store; a bare path with no
    scheme means ``file:``.  Unknown schemes raise
    :class:`PersistenceError` naming the registered backends.
    """
    scheme, sep, path = url_or_path.partition(":")
    if not sep:
        scheme, path = "file", url_or_path
    scheme = scheme.lower()
    factory = JOURNAL_BACKENDS.get(scheme)
    if factory is None:
        raise PersistenceError(
            f"unknown journal backend {scheme!r}; registered:"
            f" {sorted(JOURNAL_BACKENDS)}"
        )
    if not path and scheme not in _PATHLESS_BACKENDS:
        raise PersistenceError(f"journal backend {scheme!r} needs a path")
    return factory(path, sync=sync, compaction_threshold=compaction_threshold)


def journal_factory_for(
    backend: str,
    directory: Optional[str] = None,
    sync: str = "always",
    compaction_threshold: Optional[int] = None,
) -> Callable[[str], Journal]:
    """Per-manager journal factory for testbed-style deployments.

    Returns a ``factory(manager_name) -> Journal`` that places each
    manager's store under ``directory`` as ``<name>.journal`` /
    ``<name>.db`` (dots in the manager name become underscores), so one
    call configures a whole multi-manager deployment:

        Testbed(names, journaled=True,
                journal_factory=journal_factory_for("sqlite", tmpdir))

    ``memory`` needs no directory; every other backend requires one.
    """
    backend = backend.lower()
    if backend not in JOURNAL_BACKENDS:
        raise PersistenceError(
            f"unknown journal backend {backend!r}; registered:"
            f" {sorted(JOURNAL_BACKENDS)}"
        )
    if backend in _PATHLESS_BACKENDS:
        return lambda name: journal_for(
            f"{backend}:", sync=sync, compaction_threshold=compaction_threshold
        )
    if directory is None:
        raise PersistenceError(f"journal backend {backend!r} needs a directory")
    suffix = JOURNAL_SUFFIXES.get(backend, ".journal")
    def factory(name: str) -> Journal:
        filename = name.replace(".", "_") + suffix
        return journal_for(
            f"{backend}:{os.path.join(directory, filename)}",
            sync=sync,
            compaction_threshold=compaction_threshold,
        )
    return factory
