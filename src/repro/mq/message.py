"""Message records: headers, typed properties, priority, persistence, expiry.

A :class:`Message` is the unit moved by the MOM substrate.  It mirrors the
JMS/MQSeries split between

* **headers** — fields the middleware itself reads and writes (message id,
  correlation id, priority, delivery mode, expiry, reply-to routing,
  timestamps, backout count), and
* **properties** — an application/extension key-value area.  The
  conditional messaging layer stores all of its control information
  (conditional message id, processing-required flag, ack routing) in
  properties, exactly as the paper attaches control information to the
  generated standard messages (paper section 2.3).

Property values are restricted to JMS-like primitive types so that
messages journal cleanly and selectors have well-defined comparisons.
"""

from __future__ import annotations

import itertools
import os
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.errors import MQError

PropertyValue = Union[str, int, float, bool]

_ALLOWED_PROPERTY_TYPES = (str, int, float, bool)

#: Priorities follow JMS: 0 (lowest) .. 9 (highest), default 4.
MIN_PRIORITY = 0
MAX_PRIORITY = 9
DEFAULT_PRIORITY = 4

_msg_seq = itertools.count(1)


class DeliveryMode(Enum):
    """Persistence of a message across queue-manager restarts."""

    NON_PERSISTENT = "non_persistent"
    PERSISTENT = "persistent"


def _default_message_id() -> str:
    return f"MSG-{next(_msg_seq):08d}-{os.urandom(6).hex()}"


#: The active generator; swapped by :func:`deterministic_message_ids`.
_id_generator: Callable[[], str] = _default_message_id


def new_message_id() -> str:
    """Return a unique message id (``MSG-<seq>-<uuid fragment>``).

    The monotonic sequence component makes interleaved ids sort in creation
    order, which keeps journals and test output readable; the random
    fragment (48 bits straight from the OS — ids are a hot path, and a
    full UUID object is overhead for a hex fragment) guarantees global
    uniqueness across queue managers.
    """
    return _id_generator()


@contextmanager
def deterministic_message_ids(seed: int) -> Iterator[None]:
    """Allocate seed-derived message ids inside the block.

    Sequence restarts at 1, random fragment drawn from
    ``random.Random(seed)`` — the same (deterministic) workload under the
    same seed allocates identical message ids in any process.  Needed by
    chaos replay and the bounded model checker, whose canonical state
    hashes contain message ids.  Scopes nest; not thread-safe.
    """
    global _id_generator
    rng = random.Random(seed ^ 0x5EED_3564)
    seq = itertools.count(1)

    def _deterministic() -> str:
        return f"MSG-{next(seq):08d}-{rng.getrandbits(48):012x}"

    previous = _id_generator
    _id_generator = _deterministic
    try:
        yield
    finally:
        _id_generator = previous


def validate_properties(properties: Mapping[str, Any]) -> Dict[str, PropertyValue]:
    """Validate and copy a property mapping.

    Raises :class:`MQError` for non-string keys or values outside the
    JMS-like primitive types.
    """
    if not properties:
        return {}
    validated: Dict[str, PropertyValue] = {}
    for key, value in properties.items():
        if not isinstance(key, str) or not key:
            raise MQError(f"property keys must be non-empty strings, got {key!r}")
        if not isinstance(value, _ALLOWED_PROPERTY_TYPES):
            raise MQError(
                f"property {key!r} has unsupported type {type(value).__name__};"
                " allowed: str, int, float, bool"
            )
        validated[key] = value
    return validated


@dataclass
class Message:
    """A MOM message.

    Messages are treated as immutable once put: the queue stores the object
    and hands it back on get.  Code that needs a variant (e.g. the network
    layer stamping hop information) uses :meth:`copy`.

    Attributes:
        message_id: Middleware-assigned unique id.
        correlation_id: Application correlation key (e.g. links a reply or
            an acknowledgment to the message it answers).
        body: Application payload.  Any Python object; persistent messages
            must have journal-serializable bodies (see ``repro.mq.persistence``).
        properties: Typed application/extension key-value pairs.
        priority: 0..9, higher first (JMS ordering).
        delivery_mode: persistent or non-persistent.
        expiry_ms: Absolute virtual time after which the message is dead,
            or ``None`` for no expiry.
        reply_to_manager / reply_to_queue: Routing hint for replies/acks.
        put_time_ms: Stamped by the queue at put time.
        backout_count: Number of times a transactional get of this message
            was rolled back (MQSeries "backout count").
        source_manager: Name of the queue manager that originated the
            message (stamped by the network layer on remote puts).
    """

    body: Any
    message_id: str = field(default_factory=new_message_id)
    correlation_id: Optional[str] = None
    properties: Dict[str, PropertyValue] = field(default_factory=dict)
    priority: int = DEFAULT_PRIORITY
    delivery_mode: DeliveryMode = DeliveryMode.PERSISTENT
    expiry_ms: Optional[int] = None
    reply_to_manager: Optional[str] = None
    reply_to_queue: Optional[str] = None
    put_time_ms: Optional[int] = None
    backout_count: int = 0
    source_manager: Optional[str] = None

    def __post_init__(self) -> None:
        if not MIN_PRIORITY <= self.priority <= MAX_PRIORITY:
            raise MQError(
                f"priority {self.priority} outside {MIN_PRIORITY}..{MAX_PRIORITY}"
            )
        self.properties = validate_properties(self.properties)
        if self.expiry_ms is not None and self.expiry_ms < 0:
            raise MQError("expiry_ms must be >= 0 or None")

    # -- property helpers ---------------------------------------------------

    def get_property(self, key: str, default: Optional[PropertyValue] = None) -> Optional[PropertyValue]:
        """Return a property value or ``default``."""
        return self.properties.get(key, default)

    def has_property(self, key: str) -> bool:
        """True if the property is present."""
        return key in self.properties

    def with_properties(self, **updates: PropertyValue) -> "Message":
        """Return a copy with additional/overridden properties."""
        merged = dict(self.properties)
        merged.update(validate_properties(updates))
        clone = self.copy()
        # Both halves of the merge were validated (existing properties at
        # construction, updates just now) — skip re-validating the union.
        clone.properties = merged
        return clone

    # -- lifecycle helpers ---------------------------------------------------

    def is_expired(self, now_ms: int) -> bool:
        """True if the message is past its expiry at virtual time ``now_ms``."""
        return self.expiry_ms is not None and now_ms > self.expiry_ms

    def is_persistent(self) -> bool:
        """True if the message survives queue-manager restart."""
        return self.delivery_mode is DeliveryMode.PERSISTENT

    def copy(self, **overrides: Any) -> "Message":
        """Return a field-wise copy with ``overrides`` applied.

        The copy keeps the same ``message_id`` unless overridden — it is
        the same logical message (used when a message crosses a channel).

        Copies are a hot path (every channel hop and queue put makes
        one), so unchanged fields skip re-validation — they were
        validated when this message was constructed.  Overridden fields
        get the same checks ``__post_init__`` would apply.  The
        properties dict is shared with the source: messages are
        immutable once built (every property change goes through
        :meth:`with_properties`, which builds a fresh dict).
        """
        clone = object.__new__(Message)
        clone.__dict__.update(self.__dict__)
        if overrides:
            clone.__dict__.update(overrides)
            if "priority" in overrides and not (
                MIN_PRIORITY <= clone.priority <= MAX_PRIORITY
            ):
                raise MQError(
                    f"priority {clone.priority} outside"
                    f" {MIN_PRIORITY}..{MAX_PRIORITY}"
                )
            if "properties" in overrides:
                clone.properties = validate_properties(clone.properties)
            if "expiry_ms" in overrides and (
                clone.expiry_ms is not None and clone.expiry_ms < 0
            ):
                raise MQError("expiry_ms must be >= 0 or None")
        return clone

    def __repr__(self) -> str:  # keep logs short
        return (
            f"Message(id={self.message_id}, prio={self.priority}, "
            f"mode={self.delivery_mode.value}, props={len(self.properties)})"
        )


class MessageBuilder:
    """Fluent construction of :class:`Message` instances.

    Example::

        msg = (
            MessageBuilder("meeting notice")
            .priority(7)
            .persistent()
            .property("APP", "calendar")
            .reply_to("QM.SENDER", "DS.ACK.Q")
            .build()
        )
    """

    def __init__(self, body: Any) -> None:
        self._body = body
        self._correlation_id: Optional[str] = None
        self._properties: Dict[str, PropertyValue] = {}
        self._priority = DEFAULT_PRIORITY
        self._delivery_mode = DeliveryMode.PERSISTENT
        self._expiry_ms: Optional[int] = None
        self._reply_to: Tuple[Optional[str], Optional[str]] = (None, None)

    def correlation(self, correlation_id: str) -> "MessageBuilder":
        """Set the correlation id."""
        self._correlation_id = correlation_id
        return self

    def property(self, key: str, value: PropertyValue) -> "MessageBuilder":
        """Add one application property."""
        self._properties.update(validate_properties({key: value}))
        return self

    def properties(self, mapping: Mapping[str, PropertyValue]) -> "MessageBuilder":
        """Add several application properties."""
        self._properties.update(validate_properties(mapping))
        return self

    def priority(self, priority: int) -> "MessageBuilder":
        """Set the JMS priority (0..9)."""
        self._priority = priority
        return self

    def persistent(self) -> "MessageBuilder":
        """Mark the message persistent (the default)."""
        self._delivery_mode = DeliveryMode.PERSISTENT
        return self

    def non_persistent(self) -> "MessageBuilder":
        """Mark the message non-persistent."""
        self._delivery_mode = DeliveryMode.NON_PERSISTENT
        return self

    def expires_at(self, expiry_ms: int) -> "MessageBuilder":
        """Set an absolute expiry time in virtual milliseconds."""
        self._expiry_ms = expiry_ms
        return self

    def reply_to(self, manager: str, queue: str) -> "MessageBuilder":
        """Route replies/acknowledgments to ``queue`` on ``manager``."""
        self._reply_to = (manager, queue)
        return self

    def build(self) -> Message:
        """Construct the message (validates priority and properties)."""
        manager, queue = self._reply_to
        return Message(
            body=self._body,
            correlation_id=self._correlation_id,
            properties=dict(self._properties),
            priority=self._priority,
            delivery_mode=self._delivery_mode,
            expiry_ms=self._expiry_ms,
            reply_to_manager=manager,
            reply_to_queue=queue,
        )
