"""Publish/subscribe on top of the queue substrate: topics and subscriptions.

The paper names publish/subscribe as the other messaging model that
conditional messaging applies to (section 2) and as future work
(section 4.2).  This module provides the substrate:

* a :class:`TopicBroker` owns hierarchical topics on one queue manager;
* a :class:`Subscription` binds a topic pattern (with MQTT-style
  wildcards: ``*`` matches one segment, ``#`` matches the rest) and an
  optional JMS selector to a per-subscription queue, from which the
  subscriber consumes with ordinary (or conditional) receive calls;
* publishing delivers an independent *copy* of the message to every
  matching subscription's queue.

Integration with the rest of the stack is queue-shaped: every topic is
backed by an **ingress queue** named ``TOPIC/<topic>``.  Anything put on
that queue — locally, over a channel from a remote queue manager, or by
the conditional messaging sender — is immediately fanned out by the
broker.  That makes a topic addressable exactly like a queue, which is
what lets a condition's :class:`~repro.core.conditions.Destination` point
at a topic without special-casing the send path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MQError
from repro.mq.manager import QueueManager
from repro.mq.message import Message
from repro.mq.selectors import Selector, compile_selector

#: Prefix of the ingress queue backing each topic.
TOPIC_QUEUE_PREFIX = "TOPIC/"

#: Prefix of auto-created per-subscription queues.
SUBSCRIPTION_QUEUE_PREFIX = "SYSTEM.SUB."


def topic_queue_name(topic: str) -> str:
    """The ingress queue backing ``topic`` (how senders address it)."""
    return TOPIC_QUEUE_PREFIX + topic


def is_topic_destination(queue_name: str) -> bool:
    """True if a queue name addresses a topic ingress queue."""
    return queue_name.startswith(TOPIC_QUEUE_PREFIX)


def _validate_topic(topic: str) -> List[str]:
    if not topic or topic.startswith(".") or topic.endswith("."):
        raise MQError(f"bad topic name {topic!r}")
    segments = topic.split(".")
    if any(not s for s in segments):
        raise MQError(f"bad topic name {topic!r}")
    return segments


def validate_pattern(pattern: str) -> List[str]:
    """Validate a subscription pattern; returns its segments.

    Raises :class:`MQError` for malformed topic syntax or a ``#``
    anywhere but the final segment.  :meth:`TopicBroker.subscribe` calls
    this so a bad pattern fails fast at subscription time instead of
    poisoning every subsequent publish on the broker.
    """
    segments = _validate_topic(pattern)
    if "#" in segments[:-1]:
        raise MQError("'#' is only valid as the final topic segment")
    return segments


def _segments_match(
    pattern_segments: List[str], topic_segments: List[str]
) -> bool:
    """Match pre-split topic segments against pre-split pattern segments.

    The hot-path core of :func:`topic_matches`: the broker tokenizes each
    subscription's pattern once at subscribe time and each published
    topic once per publish, so fan-out matching never re-splits strings.
    """
    for index, pattern_segment in enumerate(pattern_segments):
        if pattern_segment == "#":
            return len(topic_segments) > index
        if index >= len(topic_segments):
            return False
        if pattern_segment == "*":
            continue
        if pattern_segment != topic_segments[index]:
            return False
    return len(topic_segments) == len(pattern_segments)


def topic_matches(pattern: str, topic: str) -> bool:
    """Match ``topic`` against a subscription ``pattern``.

    ``*`` matches exactly one segment; ``#`` (only as the final segment)
    matches one or more remaining segments::

        topic_matches("px.nyse.*", "px.nyse.ibm")   -> True
        topic_matches("px.#", "px.nyse.ibm")        -> True
        topic_matches("px.*", "px.nyse.ibm")        -> False

    The pattern is validated up front (:func:`validate_pattern`), so a
    mid-pattern ``#`` raises :class:`MQError` regardless of the topic —
    it cannot hide behind an early segment mismatch.
    """
    return _segments_match(validate_pattern(pattern), _validate_topic(topic))


@dataclass
class Subscription:
    """One subscriber binding on the broker."""

    name: str
    pattern: str
    queue_name: str
    selector: Optional[Selector] = None
    durable: bool = True
    delivered: int = 0
    #: ``pattern`` pre-split at subscribe time (where the pattern is
    #: validated anyway), so publishing matches against cached segments
    #: instead of re-splitting the pattern per publish.
    pattern_segments: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.pattern_segments:
            self.pattern_segments = validate_pattern(self.pattern)


@dataclass
class BrokerStats:
    """Broker-wide counters."""

    published: int = 0
    deliveries: int = 0
    unmatched: int = 0


class TopicBroker:
    """Hierarchical-topic publish/subscribe over one queue manager."""

    def __init__(self, manager: QueueManager) -> None:
        self.manager = manager
        self._topics: Dict[str, bool] = {}
        self._subscriptions: Dict[str, Subscription] = {}
        self.stats = BrokerStats()

    # -- administration -----------------------------------------------------

    def define_topic(self, topic: str) -> str:
        """Define a topic; returns its ingress queue name.

        The ingress queue is subscribed by the broker: any message landing
        there (local put or channel delivery) fans out immediately.
        """
        _validate_topic(topic)
        if topic in self._topics:
            return topic_queue_name(topic)
        ingress = topic_queue_name(topic)
        queue = self.manager.ensure_queue(ingress)
        queue.subscribe(lambda message: self._drain_ingress(topic))
        self._topics[topic] = True
        return ingress

    def topics(self) -> List[str]:
        """Defined topic names."""
        return list(self._topics)

    def subscribe(
        self,
        pattern: str,
        subscription_name: str,
        selector: Optional[str] = None,
        queue_name: Optional[str] = None,
        durable: bool = True,
    ) -> Subscription:
        """Create a subscription on a topic pattern.

        Args:
            pattern: Topic pattern, possibly with ``*``/``#`` wildcards.
            subscription_name: Unique name (used for unsubscribe and as
                the default queue suffix).
            selector: Optional JMS selector filtering delivered messages.
            queue_name: Destination queue; default
                ``SYSTEM.SUB.<subscription_name>``.
            durable: Non-durable subscriptions are dropped by
                :meth:`drop_nondurable` (modeling subscriber disconnect).

        The pattern is validated here (:func:`validate_pattern`) so a
        malformed one — e.g. a mid-pattern ``#`` — is rejected before it
        is stored, instead of raising out of every later publish whose
        topic reaches it.
        """
        pattern_segments = validate_pattern(pattern)
        if subscription_name in self._subscriptions:
            raise MQError(f"subscription exists: {subscription_name!r}")
        queue_name = queue_name or SUBSCRIPTION_QUEUE_PREFIX + subscription_name
        if is_topic_destination(queue_name):
            raise MQError(
                "subscription queues must be plain queues, not topic"
                " ingress queues (topic-to-topic chaining would recurse)"
            )
        self.manager.ensure_queue(queue_name)
        subscription = Subscription(
            name=subscription_name,
            pattern=pattern,
            queue_name=queue_name,
            selector=compile_selector(selector),
            durable=durable,
            pattern_segments=pattern_segments,
        )
        self._subscriptions[subscription_name] = subscription
        return subscription

    def unsubscribe(self, subscription_name: str) -> None:
        """Remove a subscription (its queue and content remain)."""
        self._subscriptions.pop(subscription_name, None)

    def subscription(self, subscription_name: str) -> Subscription:
        """Look up a subscription."""
        try:
            return self._subscriptions[subscription_name]
        except KeyError:
            raise MQError(f"no such subscription: {subscription_name!r}") from None

    def subscriptions_for(self, topic: str) -> List[Subscription]:
        """Subscriptions whose pattern matches ``topic``.

        The topic is split once; each subscription matches against the
        segments it cached at subscribe time.
        """
        topic_segments = _validate_topic(topic)
        return [
            s for s in self._subscriptions.values()
            if _segments_match(s.pattern_segments, topic_segments)
        ]

    def drop_nondurable(self) -> int:
        """Drop every non-durable subscription (subscriber disconnect)."""
        doomed = [n for n, s in self._subscriptions.items() if not s.durable]
        for name in doomed:
            del self._subscriptions[name]
        return len(doomed)

    # -- publication -----------------------------------------------------------

    def publish(self, topic: str, message: Message) -> int:
        """Deliver a copy of ``message`` to each matching subscription.

        Returns the number of copies delivered.  Each copy is an
        independent message (fresh message id) so subscribers consume
        independently; the original's correlation id and properties are
        preserved.
        """
        if topic not in self._topics:
            self.define_topic(topic)
        self.stats.published += 1
        delivered = 0
        for subscription in self.subscriptions_for(topic):
            if subscription.selector is not None and not subscription.selector(
                message
            ):
                continue
            from repro.mq.message import new_message_id

            copy = message.copy(message_id=new_message_id())
            self.manager.put(subscription.queue_name, copy)
            subscription.delivered += 1
            delivered += 1
        if delivered == 0:
            self.stats.unmatched += 1
        self.stats.deliveries += delivered
        return delivered

    # -- internals ---------------------------------------------------------------

    def _drain_ingress(self, topic: str) -> None:
        """Fan out everything currently parked on a topic's ingress queue."""
        ingress = self.manager.queue(topic_queue_name(topic))
        while True:
            try:
                message = ingress.get()
            except MQError:
                return
            self.publish(topic, message)
