"""Publish/subscribe on top of the queue substrate: topics and subscriptions.

The paper names publish/subscribe as the other messaging model that
conditional messaging applies to (section 2) and as future work
(section 4.2).  This module provides the substrate:

* a :class:`TopicBroker` owns hierarchical topics on one queue manager;
* a :class:`Subscription` binds a topic pattern (with MQTT-style
  wildcards: ``*`` or ``+`` matches one segment, ``#`` matches the rest)
  and an optional JMS selector to a per-subscription queue, from which
  the subscriber consumes with ordinary (or conditional) receive calls;
* publishing delivers an independent *copy* of the message to every
  matching subscription's queue.

Integration with the rest of the stack is queue-shaped: every topic is
backed by an **ingress queue** named ``TOPIC/<topic>``.  Anything put on
that queue — locally, over a channel from a remote queue manager, or by
the conditional messaging sender — is immediately fanned out by the
broker.  That makes a topic addressable exactly like a queue, which is
what lets a condition's :class:`~repro.core.conditions.Destination` point
at a topic without special-casing the send path.

Matching at scale
-----------------

Fan-out matching is the broker hot path: with S subscriptions a naive
broker evaluates every pattern against every published topic.  The
broker instead indexes patterns in a :class:`SubscriptionTrie` — one
node per pattern segment, with dedicated edges for the single-segment
wildcard (``*``/``+``) and subscriptions parked at their ``#`` node — so
a publish walks at most the topic's segments times the live wildcard
branches, independent of how many subscriptions share a prefix.  Match
results are memoized per topic (``match_cache_size`` entries, FIFO
eviction) and the cache is invalidated wholesale on any subscription
churn (subscribe / unsubscribe / dropped non-durables).  The original
linear scan survives as :meth:`TopicBroker.subscriptions_for_linear` —
the differential-test reference the property suite checks the trie
against — and :func:`topic_matches` remains the single-pattern
reference predicate.

Device-fleet extras (mirroring MQTT broker behaviour):

* **retained last-value state** (``retain_last=True``): the broker keeps
  the last message published on each topic and delivers a copy to every
  newly matching subscription at subscribe time, so a monitor joining
  late immediately sees the fleet's current state;
* **unknown-topic auto-registration**: publishing on an undefined topic
  defines it on the fly (device auto-discovery) and counts it
  (``BrokerStats.auto_registered`` / ``pubsub.auto_registered``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import MQError, QueueFullError
from repro.mq.manager import QueueManager
from repro.mq.message import Message, new_message_id
from repro.mq.selectors import Selector, compile_selector
from repro.obs.registry import MetricsRegistry

#: Prefix of the ingress queue backing each topic.
TOPIC_QUEUE_PREFIX = "TOPIC/"

#: Prefix of auto-created per-subscription queues.
SUBSCRIPTION_QUEUE_PREFIX = "SYSTEM.SUB."

#: Segments matching exactly one topic segment.  ``*`` is this repo's
#: historical spelling, ``+`` the MQTT one; both are accepted and mean
#: the same edge in the trie.
SINGLE_WILDCARDS = ("*", "+")

#: Default number of per-topic match sets the broker memoizes.
DEFAULT_MATCH_CACHE_SIZE = 4096


def topic_queue_name(topic: str) -> str:
    """The ingress queue backing ``topic`` (how senders address it)."""
    return TOPIC_QUEUE_PREFIX + topic


def is_topic_destination(queue_name: str) -> bool:
    """True if a queue name addresses a topic ingress queue."""
    return queue_name.startswith(TOPIC_QUEUE_PREFIX)


def _validate_topic(topic: str) -> List[str]:
    if not topic or topic.startswith(".") or topic.endswith("."):
        raise MQError(f"bad topic name {topic!r}")
    segments = topic.split(".")
    if any(not s for s in segments):
        raise MQError(f"bad topic name {topic!r}")
    return segments


def validate_pattern(pattern: str) -> List[str]:
    """Validate a subscription pattern; returns its segments.

    Raises :class:`MQError` for malformed topic syntax or a ``#``
    anywhere but the final segment.  :meth:`TopicBroker.subscribe` calls
    this so a bad pattern fails fast at subscription time instead of
    poisoning every subsequent publish on the broker.
    """
    segments = _validate_topic(pattern)
    if "#" in segments[:-1]:
        raise MQError("'#' is only valid as the final topic segment")
    return segments


def _segments_match(
    pattern_segments: List[str], topic_segments: List[str]
) -> bool:
    """Match pre-split topic segments against pre-split pattern segments.

    The reference matcher behind :func:`topic_matches` and the linear
    scan (:meth:`TopicBroker.subscriptions_for_linear`); the trie is
    differential-tested against it.
    """
    for index, pattern_segment in enumerate(pattern_segments):
        if pattern_segment == "#":
            return len(topic_segments) > index
        if index >= len(topic_segments):
            return False
        if pattern_segment in SINGLE_WILDCARDS:
            continue
        if pattern_segment != topic_segments[index]:
            return False
    return len(topic_segments) == len(pattern_segments)


def topic_matches(pattern: str, topic: str) -> bool:
    """Match ``topic`` against a subscription ``pattern``.

    ``*`` (or the MQTT-style ``+``) matches exactly one segment; ``#``
    (only as the final segment) matches one or more remaining segments::

        topic_matches("px.nyse.*", "px.nyse.ibm")   -> True
        topic_matches("px.+.ibm", "px.nyse.ibm")    -> True
        topic_matches("px.#", "px.nyse.ibm")        -> True
        topic_matches("px.*", "px.nyse.ibm")        -> False

    The pattern is validated up front (:func:`validate_pattern`), so a
    mid-pattern ``#`` raises :class:`MQError` regardless of the topic —
    it cannot hide behind an early segment mismatch.
    """
    return _segments_match(validate_pattern(pattern), _validate_topic(topic))


@dataclass
class Subscription:
    """One subscriber binding on the broker."""

    name: str
    pattern: str
    queue_name: str
    selector: Optional[Selector] = None
    durable: bool = True
    delivered: int = 0
    #: ``pattern`` pre-split at subscribe time (where the pattern is
    #: validated anyway), so publishing matches against cached segments
    #: instead of re-splitting the pattern per publish.
    pattern_segments: List[str] = field(default_factory=list)
    #: Subscribe-order rank; trie matches are re-sorted by it so fan-out
    #: delivery order stays the subscription creation order the linear
    #: scan produced.
    order: int = 0

    def __post_init__(self) -> None:
        if not self.pattern_segments:
            self.pattern_segments = validate_pattern(self.pattern)


class _TrieNode:
    """One pattern segment position in the subscription trie."""

    __slots__ = ("children", "single", "terminal", "multi")

    def __init__(self) -> None:
        #: literal segment -> child node
        self.children: Dict[str, "_TrieNode"] = {}
        #: the ``*``/``+`` edge (matches exactly one topic segment)
        self.single: Optional["_TrieNode"] = None
        #: subscriptions whose pattern ends exactly at this node
        self.terminal: Dict[str, Subscription] = {}
        #: subscriptions with ``#`` at this depth (match one-or-more
        #: remaining segments, mirroring :func:`_segments_match`)
        self.multi: Dict[str, Subscription] = {}

    def is_empty(self) -> bool:
        return (
            not self.children
            and self.single is None
            and not self.terminal
            and not self.multi
        )


class SubscriptionTrie:
    """Segment-indexed pattern store with incremental add/remove.

    Literal segments are dict edges; ``*``/``+`` share one wildcard edge
    per node; a trailing ``#`` parks the subscription on the node its
    prefix reaches (it matches any topic that continues past that node).
    Matching a topic of L segments visits at most the nodes along the
    literal path plus one branch per wildcard edge crossed — it never
    touches the other subscriptions, which is what makes 10k-subscription
    fan-out cheap.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, subscription: Subscription) -> None:
        """Index a subscription under its pre-split pattern segments."""
        node = self._root
        segments = subscription.pattern_segments
        for index, segment in enumerate(segments):
            if segment == "#":
                if index != len(segments) - 1:  # pre-validated; belt+braces
                    raise MQError("'#' is only valid as the final topic segment")
                node.multi[subscription.name] = subscription
                self._size += 1
                return
            if segment in SINGLE_WILDCARDS:
                if node.single is None:
                    node.single = _TrieNode()
                node = node.single
            else:
                node = node.children.setdefault(segment, _TrieNode())
        node.terminal[subscription.name] = subscription
        self._size += 1

    def remove(self, subscription: Subscription) -> bool:
        """Un-index a subscription; prunes now-empty nodes.  True if found."""
        path: List[Tuple[_TrieNode, str]] = []
        node = self._root
        segments = subscription.pattern_segments
        bucket: Optional[Dict[str, Subscription]] = None
        for index, segment in enumerate(segments):
            if segment == "#":
                bucket = node.multi
                break
            if segment in SINGLE_WILDCARDS:
                if node.single is None:
                    return False
                path.append((node, "*"))
                node = node.single
            else:
                child = node.children.get(segment)
                if child is None:
                    return False
                path.append((node, segment))
                node = child
        else:
            bucket = node.terminal
        if bucket is None or bucket.pop(subscription.name, None) is None:
            return False
        self._size -= 1
        # Prune empty nodes bottom-up so long-dead device patterns do not
        # accumulate as memory under churn.
        while path and node.is_empty():
            parent, edge = path.pop()
            if edge == "*":
                parent.single = None
            else:
                del parent.children[edge]
            node = parent
        return True

    def match(self, topic_segments: List[str]) -> List[Subscription]:
        """All subscriptions matching the pre-split topic, subscribe-ordered."""
        found: List[Subscription] = []
        length = len(topic_segments)
        stack: List[Tuple[_TrieNode, int]] = [(self._root, 0)]
        while stack:
            node, index = stack.pop()
            if index < length:
                # '#' at this depth matches iff at least one segment remains.
                if node.multi:
                    found.extend(node.multi.values())
                child = node.children.get(topic_segments[index])
                if child is not None:
                    stack.append((child, index + 1))
                if node.single is not None:
                    stack.append((node.single, index + 1))
            elif node.terminal:
                found.extend(node.terminal.values())
        found.sort(key=lambda subscription: subscription.order)
        return found


@dataclass
class BrokerStats:
    """Broker-wide counters."""

    published: int = 0
    deliveries: int = 0
    unmatched: int = 0
    #: topics defined on the fly by a publish (device auto-discovery)
    auto_registered: int = 0
    #: retained-message copies delivered to late subscribers
    retained_deliveries: int = 0


class TopicBroker:
    """Hierarchical-topic publish/subscribe over one queue manager.

    Args:
        manager: The queue manager hosting ingress and subscription
            queues.
        retain_last: Keep the last message published per topic and
            deliver a copy to each newly matching subscription at
            subscribe time (MQTT-style retained messages).
        match_cache_size: Per-topic match-set memo capacity (FIFO
            eviction); ``0`` disables memoization (every publish walks
            the trie — the configuration the matching benchmark times).
        metrics: Counter/gauge sink; defaults to the manager's registry,
            so broker behaviour shows up in the existing obs renderers
            (``pubsub.published`` / ``pubsub.deliveries`` /
            ``pubsub.unmatched`` / ``pubsub.auto_registered`` /
            ``pubsub.retained_deliveries`` counters and the
            ``pubsub.subscriptions`` gauge).
    """

    def __init__(
        self,
        manager: QueueManager,
        retain_last: bool = False,
        match_cache_size: int = DEFAULT_MATCH_CACHE_SIZE,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if match_cache_size < 0:
            raise MQError("match_cache_size must be >= 0")
        self.manager = manager
        self.retain_last = retain_last
        self.metrics = metrics if metrics is not None else manager.metrics
        self._topics: Dict[str, bool] = {}
        self._subscriptions: Dict[str, Subscription] = {}
        self._trie = SubscriptionTrie()
        self._order = 0
        self._match_cache: "OrderedDict[str, Tuple[Subscription, ...]]" = (
            OrderedDict()
        )
        self._match_cache_size = match_cache_size
        self._retained: Dict[str, Message] = {}
        self.stats = BrokerStats()

    # -- administration -----------------------------------------------------

    def define_topic(self, topic: str) -> str:
        """Define a topic; returns its ingress queue name.

        The ingress queue is subscribed by the broker: any message landing
        there (local put or channel delivery) fans out immediately.
        """
        _validate_topic(topic)
        if topic in self._topics:
            return topic_queue_name(topic)
        ingress = topic_queue_name(topic)
        queue = self.manager.ensure_queue(ingress)
        queue.subscribe(lambda message: self._drain_ingress(topic))
        self._topics[topic] = True
        return ingress

    def topics(self) -> List[str]:
        """Defined topic names."""
        return list(self._topics)

    def subscribe(
        self,
        pattern: str,
        subscription_name: str,
        selector: Optional[str] = None,
        queue_name: Optional[str] = None,
        durable: bool = True,
    ) -> Subscription:
        """Create a subscription on a topic pattern.

        Args:
            pattern: Topic pattern, possibly with ``*``/``+``/``#``
                wildcards.
            subscription_name: Unique name (used for unsubscribe and as
                the default queue suffix).
            selector: Optional JMS selector filtering delivered messages.
            queue_name: Destination queue; default
                ``SYSTEM.SUB.<subscription_name>``.
            durable: Non-durable subscriptions are dropped by
                :meth:`drop_nondurable` (modeling subscriber disconnect).

        The pattern is validated here (:func:`validate_pattern`) so a
        malformed one — e.g. a mid-pattern ``#`` — is rejected before it
        is stored, instead of raising out of every later publish whose
        topic reaches it.  With ``retain_last`` enabled, the retained
        message of every already-known matching topic is delivered to
        the new subscription immediately (selector applied as usual).
        """
        pattern_segments = validate_pattern(pattern)
        if subscription_name in self._subscriptions:
            raise MQError(f"subscription exists: {subscription_name!r}")
        queue_name = queue_name or SUBSCRIPTION_QUEUE_PREFIX + subscription_name
        if is_topic_destination(queue_name):
            raise MQError(
                "subscription queues must be plain queues, not topic"
                " ingress queues (topic-to-topic chaining would recurse)"
            )
        self.manager.ensure_queue(queue_name)
        self._order += 1
        subscription = Subscription(
            name=subscription_name,
            pattern=pattern,
            queue_name=queue_name,
            selector=compile_selector(selector),
            durable=durable,
            pattern_segments=pattern_segments,
            order=self._order,
        )
        self._subscriptions[subscription_name] = subscription
        self._trie.add(subscription)
        self._note_churn()
        if self.retain_last and self._retained:
            self._deliver_retained(subscription)
        return subscription

    def unsubscribe(self, subscription_name: str) -> None:
        """Remove a subscription (its queue and content remain)."""
        subscription = self._subscriptions.pop(subscription_name, None)
        if subscription is not None:
            self._trie.remove(subscription)
            self._note_churn()

    def subscription(self, subscription_name: str) -> Subscription:
        """Look up a subscription."""
        try:
            return self._subscriptions[subscription_name]
        except KeyError:
            raise MQError(f"no such subscription: {subscription_name!r}") from None

    def subscription_count(self) -> int:
        """Live subscriptions on the broker."""
        return len(self._subscriptions)

    def subscriptions_for(self, topic: str) -> List[Subscription]:
        """Subscriptions whose pattern matches ``topic`` (trie-matched).

        The per-topic result is memoized until the next subscription
        churn; repeat publishes on a hot topic (a chatty device sensor)
        match in one dict lookup.
        """
        cached = self._match_cache.get(topic)
        if cached is not None:
            return list(cached)
        matches = self._trie.match(_validate_topic(topic))
        if self._match_cache_size:
            if len(self._match_cache) >= self._match_cache_size:
                self._match_cache.popitem(last=False)
            self._match_cache[topic] = tuple(matches)
        return matches

    def subscriptions_for_linear(self, topic: str) -> List[Subscription]:
        """The pre-trie linear scan, kept as the differential reference.

        Property tests (and the matching benchmark's baseline) compare
        the trie's answer against this per-subscription
        :func:`_segments_match` walk.
        """
        topic_segments = _validate_topic(topic)
        return [
            s for s in self._subscriptions.values()
            if _segments_match(s.pattern_segments, topic_segments)
        ]

    def drop_nondurable(self) -> int:
        """Drop every non-durable subscription (subscriber disconnect)."""
        doomed = [n for n, s in self._subscriptions.items() if not s.durable]
        for name in doomed:
            self._trie.remove(self._subscriptions.pop(name))
        if doomed:
            self._note_churn()
        return len(doomed)

    # -- retained state -----------------------------------------------------

    def retained(self, topic: str) -> Optional[Message]:
        """The retained (last-value) message of a topic, if any."""
        return self._retained.get(topic)

    def retained_topics(self) -> List[str]:
        """Topics currently holding retained state."""
        return list(self._retained)

    def clear_retained(self, topic: str) -> None:
        """Drop a topic's retained message."""
        self._retained.pop(topic, None)

    def _deliver_retained(self, subscription: Subscription) -> None:
        """Hand the new subscription every matching topic's last value."""
        pattern_segments = subscription.pattern_segments
        deliveries: List[Message] = []
        for topic, message in self._retained.items():
            if not _segments_match(pattern_segments, topic.split(".")):
                continue
            if subscription.selector is not None and not subscription.selector(
                message
            ):
                continue
            deliveries.append(message.copy(message_id=new_message_id()))
        if not deliveries:
            return
        self.manager.put_many(subscription.queue_name, deliveries)
        subscription.delivered += len(deliveries)
        self.stats.retained_deliveries += len(deliveries)
        self.stats.deliveries += len(deliveries)
        if self.metrics is not None:
            self.metrics.incr("pubsub.retained_deliveries", len(deliveries))
            self.metrics.incr("pubsub.deliveries", len(deliveries))

    # -- publication -----------------------------------------------------------

    def publish(self, topic: str, message: Message) -> int:
        """Deliver a copy of ``message`` to each matching subscription.

        Returns the number of copies delivered.  Each copy is an
        independent message (fresh message id) so subscribers consume
        independently; the original's correlation id and properties are
        preserved.

        The fan-out is **atomic**: copies are batched per subscription
        queue (:meth:`QueueManager.put_many`) inside one commit group, so
        the whole publish costs a single journal flush, and capacity is
        pre-checked across every target queue — a full queue raises
        :class:`~repro.errors.QueueFullError` *before* anything is
        delivered or counted, never mid-fan-out.
        """
        if topic not in self._topics:
            self.define_topic(topic)
            self.stats.auto_registered += 1
            if self.metrics is not None:
                self.metrics.incr("pubsub.auto_registered")
        self.stats.published += 1
        if self.metrics is not None:
            self.metrics.incr("pubsub.published")
        matched = self.subscriptions_for(topic)
        deliveries: List[Tuple[Subscription, Message]] = []
        for subscription in matched:
            if subscription.selector is not None and not subscription.selector(
                message
            ):
                continue
            deliveries.append(
                (subscription, message.copy(message_id=new_message_id()))
            )
        if self.retain_last:
            self._retained[topic] = message
        if deliveries:
            self._deliver_batch(deliveries)
        delivered = len(deliveries)
        if delivered == 0:
            self.stats.unmatched += 1
            if self.metrics is not None:
                self.metrics.incr("pubsub.unmatched")
        self.stats.deliveries += delivered
        if self.metrics is not None and delivered:
            self.metrics.incr("pubsub.deliveries", delivered)
        return delivered

    def _deliver_batch(
        self, deliveries: Iterable[Tuple[Subscription, Message]]
    ) -> None:
        """Store every copy, one commit group, all-or-nothing capacity."""
        by_queue: "OrderedDict[str, List[Message]]" = OrderedDict()
        for subscription, copy in deliveries:
            by_queue.setdefault(subscription.queue_name, []).append(copy)
        # Pre-flight: every target queue must fit its share of the batch
        # before anything is stored, so a full queue cannot interrupt the
        # fan-out halfway (QueueFullError used to leave earlier
        # subscribers delivered and counted, later ones not).
        for queue_name, copies in by_queue.items():
            queue = self.manager.queue(queue_name)
            if queue.capacity_remaining() < len(copies):
                raise QueueFullError(queue_name, queue.max_depth)
        with self.manager.group_commit():
            for queue_name, copies in by_queue.items():
                self.manager.put_many(queue_name, copies)
        # Per-subscription tallies move only after the whole batch is in.
        for subscription, _copy in deliveries:
            subscription.delivered += 1

    # -- internals ---------------------------------------------------------------

    def _note_churn(self) -> None:
        """Subscription set changed: drop memoized matches, update gauge."""
        self._match_cache.clear()
        if self.metrics is not None:
            self.metrics.set_gauge(
                "pubsub.subscriptions", len(self._subscriptions)
            )

    def _drain_ingress(self, topic: str) -> None:
        """Fan out everything currently parked on a topic's ingress queue."""
        ingress = self.manager.queue(topic_queue_name(topic))
        while True:
            try:
                message = ingress.get()
            except MQError:
                return
            self.publish(topic, message)
