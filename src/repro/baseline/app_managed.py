"""Application-managed condition tracking over the raw MOM API.

This is the paper's *anti-pattern*, implemented honestly: the sender
application hand-rolls its own acknowledgment protocol, timeout tracking,
and outcome bookkeeping for one fixed condition shape — "all N recipients
must acknowledge receipt within T milliseconds" (a flat subset of what
the middleware's condition trees express).  The receiver application must
know the sender's ad-hoc protocol and send explicit acknowledgments
itself.

Deliberate limitations (they ARE the point of the comparison):

* only flat all-of-N / k-of-N pick-up deadlines — no nesting, no
  per-destination processing deadlines, no anonymous counts;
* no transactional-processing acknowledgments — the receiver acks at
  read time whether or not its processing later fails;
* no staged compensation — on failure the sender synthesizes cancel
  messages *after the fact*, so a sender crash loses the ability to
  compensate;
* no logging queues, so nothing is recoverable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from repro.mq.manager import QueueManager
from repro.mq.message import Message

_baseline_seq = itertools.count(1)

#: Ad-hoc property names this application invented for its protocol.
PROP_APP_MSG_ID = "APP_MSG_ID"
PROP_APP_ACK_TO_MANAGER = "APP_ACK_TO_MANAGER"
PROP_APP_ACK_TO_QUEUE = "APP_ACK_TO_QUEUE"
PROP_APP_IS_ACK = "APP_IS_ACK"
PROP_APP_IS_CANCEL = "APP_IS_CANCEL"


class AppOutcome(Enum):
    """Outcome of a tracked send."""

    SUCCESS = "success"
    FAILURE = "failure"
    PENDING = "pending"


@dataclass
class _Tracked:
    """Sender-side bookkeeping for one fan-out send."""

    app_msg_id: str
    destinations: List[Tuple[str, str]]
    deadline_ms: int
    min_acks: int
    acked_by: List[str] = field(default_factory=list)
    outcome: AppOutcome = AppOutcome.PENDING
    cancels_sent: bool = False


class AppManagedSender:
    """A sender application tracking acknowledgments by hand."""

    ACK_QUEUE = "APP.ACK.Q"

    def __init__(self, manager: QueueManager) -> None:
        self.manager = manager
        manager.ensure_queue(self.ACK_QUEUE)
        self._tracked: Dict[str, _Tracked] = {}

    def send_tracked(
        self,
        body: Any,
        destinations: List[Tuple[str, str]],
        deadline_ms: int,
        min_acks: Optional[int] = None,
    ) -> str:
        """Fan a message out and start tracking acknowledgments.

        Args:
            destinations: (manager, queue) pairs.
            deadline_ms: Relative pick-up deadline.
            min_acks: Required acknowledgment count (default: all).
        """
        app_msg_id = f"APP-{next(_baseline_seq):08d}"
        now = self.manager.clock.now_ms()
        for manager_name, queue_name in destinations:
            message = Message(
                body=body,
                correlation_id=app_msg_id,
                properties={
                    PROP_APP_MSG_ID: app_msg_id,
                    PROP_APP_ACK_TO_MANAGER: self.manager.name,
                    PROP_APP_ACK_TO_QUEUE: self.ACK_QUEUE,
                },
            )
            self.manager.put_remote(manager_name, queue_name, message)
        self._tracked[app_msg_id] = _Tracked(
            app_msg_id=app_msg_id,
            destinations=list(destinations),
            deadline_ms=now + deadline_ms,
            min_acks=min_acks if min_acks is not None else len(destinations),
        )
        return app_msg_id

    def poll(self) -> None:
        """Drain acknowledgments and time out overdue sends.

        The application must remember to call this regularly — one of the
        burdens the middleware removes.
        """
        while True:
            ack = self.manager.get_wait(self.ACK_QUEUE)
            if ack is None:
                break
            body = ack.body
            tracked = self._tracked.get(body.get("app_msg_id", ""))
            if tracked is None or tracked.outcome is not AppOutcome.PENDING:
                continue
            if body.get("read_time_ms", 0) <= tracked.deadline_ms:
                tracked.acked_by.append(body.get("recipient", "?"))
                if len(tracked.acked_by) >= tracked.min_acks:
                    tracked.outcome = AppOutcome.SUCCESS
        now = self.manager.clock.now_ms()
        for tracked in self._tracked.values():
            if tracked.outcome is AppOutcome.PENDING and now > tracked.deadline_ms:
                tracked.outcome = AppOutcome.FAILURE
                self._send_cancels(tracked)

    def outcome(self, app_msg_id: str) -> AppOutcome:
        """Current outcome of a tracked send."""
        tracked = self._tracked.get(app_msg_id)
        return tracked.outcome if tracked else AppOutcome.FAILURE

    def _send_cancels(self, tracked: _Tracked) -> None:
        # Synthesized at failure time — if this process had crashed, no
        # cancel would ever be sent (contrast: DS.COMP.Q staging).
        if tracked.cancels_sent:
            return
        tracked.cancels_sent = True
        for manager_name, queue_name in tracked.destinations:
            self.manager.put_remote(
                manager_name,
                queue_name,
                Message(
                    body=None,
                    correlation_id=tracked.app_msg_id,
                    properties={
                        PROP_APP_MSG_ID: tracked.app_msg_id,
                        PROP_APP_IS_CANCEL: True,
                    },
                ),
            )


class AppManagedReceiver:
    """A receiver application speaking the sender's ad-hoc ack protocol."""

    def __init__(self, manager: QueueManager, recipient_id: str) -> None:
        self.manager = manager
        self.recipient_id = recipient_id

    def read_and_ack(self, queue_name: str) -> Optional[Message]:
        """Read the next message; manually acknowledge tracked ones.

        Cancel messages are returned to the application, which must know
        how to undo whatever it did — there is no middleware pairing of
        originals and cancels here.
        """
        self.manager.ensure_queue(queue_name)
        message = self.manager.get_wait(queue_name)
        if message is None:
            return None
        if message.has_property(PROP_APP_MSG_ID) and not message.get_property(
            PROP_APP_IS_CANCEL, False
        ):
            ack_manager = str(message.get_property(PROP_APP_ACK_TO_MANAGER))
            ack_queue = str(message.get_property(PROP_APP_ACK_TO_QUEUE))
            self.manager.put_remote(
                ack_manager,
                ack_queue,
                Message(
                    body={
                        "app_msg_id": message.get_property(PROP_APP_MSG_ID),
                        "recipient": self.recipient_id,
                        "read_time_ms": self.manager.clock.now_ms(),
                    },
                    properties={PROP_APP_IS_ACK: True},
                ),
            )
        return message
