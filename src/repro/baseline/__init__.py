"""Baselines: what applications build without conditional messaging.

The paper's motivating claim is that "with current middleware,
applications themselves are forced to implement the management of such
conditions on messages as part of the application" (section 1).  This
package implements that status quo — the same Example-1/Example-2
conditions hand-coded over the raw MOM API — so the benchmarks can
compare the middleware solution against the application-managed one on
performance, code burden, and feature coverage.
"""

from repro.baseline.app_managed import (
    AppManagedReceiver,
    AppManagedSender,
    AppOutcome,
)

__all__ = ["AppManagedSender", "AppManagedReceiver", "AppOutcome"]
