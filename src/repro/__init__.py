"""Conditional messaging: reliable messaging extended with application conditions.

A faithful, from-scratch reproduction of *"Extending Reliable Messaging
with Application Conditions"* (Tai, Mikalsen, Rouvellou, Sutton -- IBM
T.J. Watson Research Center, ICDCS 2002), together with every substrate
the paper's system depends on:

* :mod:`repro.mq` -- a message-oriented middleware (mini MQSeries/JMS):
  queue managers, persistent priority queues, syncpoint transactions,
  selectors, store-and-forward channels;
* :mod:`repro.objects` -- distributed object transactions (mini OTS/JTS):
  two-phase commit, transactional resources, a transactional KV store;
* :mod:`repro.core` -- **the paper's contribution**: condition object
  model, conditional send, implicit acknowledgments, evaluation manager,
  compensation and success notifications;
* :mod:`repro.dsphere` -- Dependency-Spheres: atomic groups of
  conditional messages and object transactions;
* :mod:`repro.baseline` -- the application-managed status quo, for
  comparison;
* :mod:`repro.workloads` / :mod:`repro.harness` -- testbeds, scripted
  receivers, workload generators, metrics, and experiment runners;
* :mod:`repro.obs` -- message-lifecycle observability: a flight-recorder
  tracer that stamps every hop of a conditional message, plus a
  counters/gauges/histograms registry;
* :mod:`repro.sim` -- the deterministic virtual clock everything runs on.

Quickstart::

    from repro.workloads import Testbed
    from repro.core import destination, destination_set

    bed = Testbed(["ALICE", "BOB"], latency_ms=10)
    cond = destination_set(
        destination("Q.ALICE", manager="QM.ALICE", recipient="ALICE"),
        destination("Q.BOB", manager="QM.BOB", recipient="BOB"),
        msg_pick_up_time=5_000,
    )
    cmid = bed.service.send_message("hello", cond)
    bed.at(1_000, lambda: bed.receiver("ALICE").read_message("Q.ALICE"))
    bed.at(2_000, lambda: bed.receiver("BOB").read_message("Q.BOB"))
    bed.run_all()
    print(bed.service.outcome(cmid).outcome)   # MessageOutcome.SUCCESS
"""

from repro.core import (
    Condition,
    ConditionalMessagingReceiver,
    ConditionalMessagingService,
    Destination,
    DestinationSet,
    MessageOutcome,
    OutcomeRecord,
    destination,
    destination_set,
)
from repro.dsphere import DSphereOutcome, DSphereService
from repro.errors import ReproError
from repro.obs import FlightRecorder, MetricsRegistry

__version__ = "1.0.0"

__all__ = [
    "Condition",
    "Destination",
    "DestinationSet",
    "destination",
    "destination_set",
    "ConditionalMessagingService",
    "ConditionalMessagingReceiver",
    "MessageOutcome",
    "OutcomeRecord",
    "DSphereService",
    "DSphereOutcome",
    "FlightRecorder",
    "MetricsRegistry",
    "ReproError",
    "__version__",
]
