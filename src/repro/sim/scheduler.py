"""Event scheduler driving timed callbacks against a :class:`SimulatedClock`.

The scheduler is a priority queue of ``(due_ms, sequence, callback)``
entries.  Components register work due at a future virtual time (channel
deliveries, condition deadlines, evaluation timeouts); the harness then
calls :meth:`EventScheduler.run_until` / :meth:`run_all` to advance the
clock and fire events in timestamp order.  Ties break by registration
order, which keeps runs reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.clock import SimulatedClock


@dataclass(order=True)
class ScheduledEvent:
    """A callback due at a specific virtual time.

    Instances order by ``(due_ms, seq)`` so that heap operations never
    compare callbacks.  ``cancelled`` events stay in the heap but are
    skipped when popped (lazy deletion).
    """

    due_ms: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it will be skipped when its time comes."""
        self.cancelled = True


class EventScheduler:
    """Priority-ordered scheduler of virtual-time callbacks.

    A single scheduler is shared by all simulated components (queue
    managers, channels, evaluation managers).  Callbacks may schedule
    further events, including events due at the current instant; those run
    in the same pass.
    """

    def __init__(self, clock: SimulatedClock) -> None:
        self.clock = clock
        self._heap: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self._events_fired = 0

    # -- registration ------------------------------------------------------

    def call_at(
        self, due_ms: int, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``due_ms``.

        Scheduling in the past is clamped to "now": the event fires on the
        next run, mirroring how an overdue OS timer fires immediately.
        """
        due_ms = max(int(due_ms), self.clock.now_ms())
        event = ScheduledEvent(due_ms, next(self._seq), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def call_later(
        self, delay_ms: int, callback: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay_ms`` of virtual time."""
        if delay_ms < 0:
            raise ValueError("delay_ms must be >= 0")
        return self.call_at(self.clock.now_ms() + delay_ms, callback, label)

    # -- inspection --------------------------------------------------------

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def cancel_matching(self, predicate: Callable[[str], bool]) -> int:
        """Cancel every pending event whose label satisfies ``predicate``.

        Returns the number of events cancelled.  Used after a simulated
        crash to kill events that capture the dead component's objects
        (e.g. a restarted sender cancels ``eval-timeout ...`` events so
        the zombie evaluation manager never fires against stale state).
        """
        cancelled = 0
        for event in self._heap:
            if not event.cancelled and predicate(event.label):
                event.cancel()
                cancelled += 1
        return cancelled

    def next_due_ms(self) -> Optional[int]:
        """Virtual time of the earliest live event, or ``None`` if idle."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].due_ms

    def frontier(self) -> List[ScheduledEvent]:
        """Live events due at the earliest due time, registration order.

        The *frontier* is the set of events a sequential run would fire
        next in some order: under the default stepping they fire in
        registration order, but any permutation is a legitimate
        concurrent schedule.  The bounded model checker
        (:mod:`repro.chaos.bounded`) enumerates exactly these
        permutations, firing each candidate via :meth:`fire_specific`.
        Deterministic: same scheduler history, same frontier list.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return []
        due = self._heap[0].due_ms
        events = [
            e for e in self._heap if not e.cancelled and e.due_ms == due
        ]
        events.sort(key=lambda e: e.seq)
        return events

    def live_events(self) -> List[tuple]:
        """``(due_ms, label)`` of every live event, sorted.

        A canonical snapshot of the scheduler's future, independent of
        registration order — part of the bounded checker's state hash.
        """
        return sorted(
            (e.due_ms, e.label) for e in self._heap if not e.cancelled
        )

    @property
    def events_fired(self) -> int:
        """Total callbacks executed over the scheduler's lifetime."""
        return self._events_fired

    # -- execution ---------------------------------------------------------

    def run_until(self, until_ms: int) -> int:
        """Advance time to ``until_ms``, firing every event due on the way.

        Returns the number of callbacks fired.  The clock ends exactly at
        ``until_ms`` even if no event was due then, so repeated calls
        advance time in precise steps.
        """
        fired = 0
        until_ms = int(until_ms)
        while True:
            self._drop_cancelled_head()
            if not self._heap or self._heap[0].due_ms > until_ms:
                break
            event = heapq.heappop(self._heap)
            if event.due_ms > self.clock.now_ms():
                self.clock.set(event.due_ms)
            event.callback()
            self._events_fired += 1
            fired += 1
        if until_ms > self.clock.now_ms():
            self.clock.set(until_ms)
        return fired

    def run_for(self, delta_ms: int) -> int:
        """Advance time by ``delta_ms``, firing due events; returns count."""
        return self.run_until(self.clock.now_ms() + delta_ms)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Run until no live events remain; returns callbacks fired.

        ``max_events`` guards against event loops that reschedule forever
        (a bug in a component would otherwise hang the simulation).
        """
        fired = 0
        while fired < max_events:
            self._drop_cancelled_head()
            if not self._heap:
                return fired
            event = heapq.heappop(self._heap)
            if event.due_ms > self.clock.now_ms():
                self.clock.set(event.due_ms)
            event.callback()
            self._events_fired += 1
            fired += 1
        raise RuntimeError(
            f"scheduler did not quiesce within {max_events} events"
        )

    def fire_specific(self, event: ScheduledEvent) -> None:
        """Fire one live frontier event out of heap order.

        Fork support for bounded exploration: the caller picks any event
        returned by :meth:`frontier` and fires it ahead of its heap
        position, modelling a concurrent schedule where that callback
        raced ahead of its same-instant peers.  The event is consumed
        (marked cancelled) *before* the callback runs, so a callback
        that crashes the world — e.g. raises
        :class:`~repro.chaos.faults.CrashPoint` — never refires, exactly
        matching :meth:`run_all` semantics where the pop precedes the
        call.
        """
        if event.cancelled:
            raise ValueError(f"event already fired or cancelled: {event.label!r}")
        if event.due_ms < self.clock.now_ms():
            raise ValueError(
                f"event {event.label!r} due at {event.due_ms} is in the past "
                f"(now={self.clock.now_ms()})"
            )
        event.cancelled = True
        if event.due_ms > self.clock.now_ms():
            self.clock.set(event.due_ms)
        event.callback()
        self._events_fired += 1

    def step(self) -> bool:
        """Fire exactly the next live event; ``False`` when idle."""
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        if event.due_ms > self.clock.now_ms():
            self.clock.set(event.due_ms)
        event.callback()
        self._events_fired += 1
        return True

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
