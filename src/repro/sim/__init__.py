"""Deterministic virtual time and event scheduling.

Every component in this library reads time from a :class:`~repro.sim.clock.Clock`
rather than from the operating system.  Two implementations exist:

* :class:`~repro.sim.clock.SimulatedClock` — virtual time that only advances
  when the test or benchmark harness advances it.  All timing behaviour
  (message pick-up deadlines, evaluation timeouts, channel latency) becomes
  deterministic and instantaneous to execute.
* :class:`~repro.sim.clock.WallClock` — real time, for interactive use.

The :class:`~repro.sim.scheduler.EventScheduler` orders timed callbacks and
drives them when the clock advances; it is the heart of the single-process
distributed-system simulation used by the tests and benchmarks.
"""

from repro.sim.clock import Clock, SimulatedClock, WallClock
from repro.sim.scheduler import EventScheduler, ScheduledEvent

__all__ = [
    "Clock",
    "SimulatedClock",
    "WallClock",
    "EventScheduler",
    "ScheduledEvent",
]
