"""Clock abstraction: simulated (virtual) and wall-clock time sources.

The paper's conditions are expressed in *milliseconds relative to the
sender's clock and the timestamp of sending the message* (paper section 2.2).
All code in this library therefore deals in integer milliseconds obtained
from a :class:`Clock`.  Using a shared, explicitly advanced
:class:`SimulatedClock` lets tests exercise deadline races ("the ack arrived
exactly at MsgPickUpTime") deterministically.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Source of the current time in integer milliseconds."""

    @abstractmethod
    def now_ms(self) -> int:
        """Return the current time in milliseconds."""

    def now_s(self) -> float:
        """Return the current time in (float) seconds."""
        return self.now_ms() / 1000.0


class SimulatedClock(Clock):
    """Virtual clock that advances only when told to.

    The clock starts at ``start_ms`` (default 0) and moves forward via
    :meth:`advance` or :meth:`set`.  Moving backwards is rejected: real
    clocks used by middleware are monotonic, and the evaluation logic
    depends on monotonicity.
    """

    def __init__(self, start_ms: int = 0) -> None:
        if start_ms < 0:
            raise ValueError("start_ms must be >= 0")
        self._now_ms = int(start_ms)

    def now_ms(self) -> int:
        return self._now_ms

    def advance(self, delta_ms: int) -> int:
        """Advance the clock by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError("cannot advance a clock by a negative amount")
        self._now_ms += int(delta_ms)
        return self._now_ms

    def set(self, now_ms: int) -> int:
        """Jump the clock forward to the absolute time ``now_ms``."""
        now_ms = int(now_ms)
        if now_ms < self._now_ms:
            raise ValueError(
                f"cannot move clock backwards ({now_ms} < {self._now_ms})"
            )
        self._now_ms = now_ms
        return self._now_ms


class WallClock(Clock):
    """Real time, measured from an epoch captured at construction.

    Reporting time relative to a local epoch keeps wall-clock timestamps in
    the same small-integer regime as simulated ones, which keeps log output
    readable and avoids precision loss in float conversions.
    """

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now_ms(self) -> int:
        return int((time.monotonic() - self._epoch) * 1000)
