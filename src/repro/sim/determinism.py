"""Deterministic-identity scope for reproducible simulations.

The production id generators (:func:`repro.core.ids.new_conditional_message_id`,
:func:`repro.mq.message.new_message_id`) mix process-global sequences with
OS randomness: globally unique, but different on every run.  Replay-exact
simulation — re-running a chaos reproducer in a fresh process, or the
bounded model checker re-executing one interleaving prefix thousands of
times — needs identical runs to allocate identical ids, because flight
recorder timelines and canonical state hashes embed them.

:func:`deterministic_ids` scopes both generators to seeded streams at
once::

    with deterministic_ids(seed=spec.seed):
        result = run_episode(spec)   # byte-identical timeline every run

Scopes nest (innermost wins) and restore the previous generators on exit,
so production uniqueness is untouched outside the block.  Single-threaded
by design, like the simulation itself.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.core.ids import deterministic_cmids
from repro.mq.message import deterministic_message_ids

__all__ = ["deterministic_ids"]


@contextmanager
def deterministic_ids(seed: int) -> Iterator[None]:
    """Seed-derived conditional-message AND message ids inside the block."""
    with deterministic_cmids(seed), deterministic_message_ids(seed):
        yield
