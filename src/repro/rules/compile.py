"""Compiling declarative rules down to the condition object model.

The compiler is a straight structural map — every field of a
:class:`~repro.rules.model.DestinationRule` / ``GroupRule`` lands on the
corresponding attribute of a :class:`~repro.core.conditions.Destination`
/ ``DestinationSet``, built through the same
:mod:`repro.core.builder` helpers application code uses.  Nothing
semantic happens here; the satisfaction algorithm, the sender's fan-out,
and validation all operate on the compiled tree, so a rule decides
exactly like the hand-built condition it denotes (the property suite
asserts this).

Naming conventions mirror the chaos testbed: receiver ``R1`` reads queue
``Q.R1`` on manager ``QM.R1`` under recipient id ``R1``.  Callers with a
different topology pass their own ``queue_of`` / ``manager_of``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.builder import destination, destination_set
from repro.core.conditions import Condition
from repro.rules.model import DestinationRule, GroupRule, MessageRule, RuleNode

__all__ = ["compile_node", "compile_message", "default_queue_of", "default_manager_of"]


def default_queue_of(receiver: str) -> str:
    """Conventional inbox queue of a receiver (testbed convention)."""
    return f"Q.{receiver}"


def default_manager_of(receiver: str) -> str:
    """Conventional queue manager of a receiver (testbed convention)."""
    return f"QM.{receiver}"


def compile_node(
    node: RuleNode,
    queue_of: Callable[[str], str] = default_queue_of,
    manager_of: Callable[[str], str] = default_manager_of,
) -> Condition:
    """Map one rule node to its condition-model equivalent."""
    if isinstance(node, DestinationRule):
        return destination(
            queue_of(node.receiver),
            manager=manager_of(node.receiver),
            recipient=None if node.anonymous else node.receiver,
            copies=node.copies,
            msg_pick_up_time=node.pick_up_within_ms,
            msg_processing_time=node.process_within_ms,
        )
    if isinstance(node, GroupRule):
        return destination_set(
            *(
                compile_node(member, queue_of, manager_of)
                for member in node.members
            ),
            msg_pick_up_time=node.pick_up_within_ms,
            msg_processing_time=node.process_within_ms,
            min_nr_pick_up=node.min_pick_up,
            max_nr_pick_up=node.max_pick_up,
            min_nr_processing=node.min_processing,
            max_nr_processing=node.max_processing,
            anonymous_min_pick_up=node.anonymous_min_pick_up,
            anonymous_max_pick_up=node.anonymous_max_pick_up,
            anonymous_min_processing=node.anonymous_min_processing,
            anonymous_max_processing=node.anonymous_max_processing,
        )
    raise TypeError(f"not a rule node: {node!r}")


def compile_message(
    rule: MessageRule,
    queue_of: Callable[[str], str] = default_queue_of,
    manager_of: Callable[[str], str] = default_manager_of,
) -> Condition:
    """Compile one message rule's condition tree, timeout included.

    The evaluation timeout lives on the root node (the only place the
    service consults it), whether the root is a set or a bare leaf.
    """
    condition = compile_node(rule.condition, queue_of, manager_of)
    if rule.evaluation_timeout_ms is not None:
        condition.evaluation_timeout = int(rule.evaluation_timeout_ms)
    return condition
