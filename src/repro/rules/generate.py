"""Seeded generation of small, valid rule sets.

The bounded model checker needs *tiny* scenarios — at most two
receivers, a handful of messages — because it enumerates every
interleaving; its state count is exponential in concurrent events.  The
generator derives such a scenario from one seed, always valid by
construction (and re-checked through :meth:`RuleSet.validate`), covering
the declarative surface: flat and nested groups, set-level and per-leaf
deadlines, min/max pick-up and processing counts, anonymous tallies,
evaluation timeouts, compensation pairing, late and guarded reactions.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.rules.model import (
    DestinationRule,
    GroupRule,
    MessageRule,
    ReactionRule,
    RuleSet,
)

__all__ = ["RuleSetGenerator"]


class RuleSetGenerator:
    """Derives a small valid :class:`RuleSet` from one seed.

    Bounds are constructor arguments so the bounded checker can tighten
    them further (one message, one receiver) when sweeping many seeds.
    """

    def __init__(
        self,
        seed: int,
        max_receivers: int = 2,
        max_messages: int = 3,
    ) -> None:
        if max_receivers < 1 or max_messages < 1:
            raise ValueError("bounds must be >= 1")
        self.seed = seed
        self.max_receivers = max_receivers
        self.max_messages = max_messages

    def generate(self) -> RuleSet:
        rng = random.Random(self.seed)
        receivers = [
            f"R{i}" for i in range(1, rng.randint(1, self.max_receivers) + 1)
        ]
        window = rng.choice([400, 600, 1000])
        gap = rng.choice([100, 250, 400])
        messages: List[MessageRule] = []
        reactions: List[ReactionRule] = []
        for index in range(rng.randint(1, self.max_messages)):
            send_at = index * gap
            chosen = rng.sample(receivers, rng.randint(1, len(receivers)))
            tag = rng.choice(["a", "b"])
            condition = self._condition(rng, chosen, window)
            messages.append(
                MessageRule(
                    condition=condition,
                    send_at_ms=send_at,
                    body={"kind": "rules", "msg": index, "tag": tag},
                    evaluation_timeout_ms=(
                        window * 3 if rng.random() < 0.5 else None
                    ),
                    compensation=(
                        {"undo": index} if rng.random() < 0.5 else None
                    ),
                )
            )
            for receiver in chosen:
                on_time = rng.random() < 0.8
                offset = (
                    rng.choice([window // 4, window // 2])
                    if on_time
                    else window * 2
                )
                mode = rng.choice(["read", "read", "commit", "abort"])
                reactions.append(
                    ReactionRule(
                        receiver=receiver,
                        at_ms=send_at + offset,
                        mode=mode,
                        process_ms=(
                            rng.choice([0, window // 4])
                            if mode in ("commit", "abort")
                            else 0
                        ),
                        guard=self._guard(rng, tag),
                    )
                )
        ruleset = RuleSet(
            receivers=receivers,
            messages=messages,
            reactions=reactions,
            name=f"generated-{self.seed}",
            seed=self.seed,
        )
        ruleset.validate()
        return ruleset

    def _condition(
        self, rng: random.Random, chosen: List[str], window: int
    ) -> GroupRule:
        shape = rng.choice(["flat", "flat", "leaf-times", "nested", "anonymous"])
        if shape == "leaf-times":
            # Required leaves carrying their own deadlines; the group adds
            # nothing (it exists so every root accepts a timeout).
            return GroupRule(
                members=[
                    DestinationRule(
                        receiver=name,
                        pick_up_within_ms=window,
                        process_within_ms=(
                            window * 2 if rng.random() < 0.3 else None
                        ),
                    )
                    for name in chosen
                ]
            )
        if shape == "nested" and len(chosen) >= 2:
            # First leaf required on its own; the rest under an inner
            # quorum group — the paper's Figure 4 in miniature.
            inner = chosen[1:]
            return GroupRule(
                members=[
                    DestinationRule(
                        receiver=chosen[0], pick_up_within_ms=window
                    ),
                    GroupRule(
                        members=[
                            DestinationRule(receiver=name) for name in inner
                        ],
                        pick_up_within_ms=window,
                        min_pick_up=rng.randint(1, len(inner)),
                    ),
                ]
            )
        if shape == "anonymous":
            # Unnamed readers of a shared leaf, bounded from above.
            return GroupRule(
                members=[
                    DestinationRule(receiver=name, anonymous=True)
                    for name in chosen
                ],
                pick_up_within_ms=window,
                anonymous_min_pick_up=rng.randint(0, 1),
                anonymous_max_pick_up=len(chosen),
            )
        group = GroupRule(
            members=[DestinationRule(receiver=name) for name in chosen],
            pick_up_within_ms=window,
        )
        if rng.random() < 0.5:
            group.min_pick_up = rng.randint(1, len(chosen))
            if rng.random() < 0.5:
                group.max_pick_up = len(chosen)
        if rng.random() < 0.3:
            group.process_within_ms = window * 2
            group.min_processing = rng.randint(0, len(chosen))
        return group

    def _guard(self, rng: random.Random, tag: str) -> Optional[str]:
        roll = rng.random()
        if roll < 0.6:
            return None
        if roll < 0.8:
            return f"tag = '{tag}'"  # matches: the reaction commits
        return "tag = 'never'"  # non-match: the transaction aborts
