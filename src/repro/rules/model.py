"""Declarative conditional-messaging rules (data, not objects).

The core object model (:mod:`repro.core.conditions`) is imperative:
application code constructs ``Destination``/``DestinationSet`` trees and
hands them to the service.  A :class:`RuleSet` is the same information as
*data* — plain dataclasses with a canonical JSON form — describing a
small closed world:

* which receivers exist (``receivers``),
* which conditional messages are sent, when, under what condition tree,
  with what evaluation timeout and compensation pairing (``messages``),
* how each receiver reacts: after what delay, destructively or under a
  transaction, committing or aborting, optionally gated by a JMS
  selector *guard* evaluated against the received message
  (``reactions``).

Rules compile to the existing builder object model
(:func:`repro.rules.compile_message`), so everything downstream — the
sender's fan-out, the satisfaction algorithm, recovery — runs the exact
production code path.  The bounded model checker enumerates all
interleavings of a compiled rule set; the seeded generator
(:class:`repro.rules.RuleSetGenerator`) produces valid rule sets small
enough to explore exhaustively.

Guard semantics: a reaction carrying a ``guard`` always reads under a
transaction and commits only when the selector matches the delivered
message; on a non-match the transaction aborts, leaving the message on
the queue (SQL three-valued logic: absent properties make the guard
unknown, and unknown does not commit).  An ``abort`` reaction rolls back
unconditionally — the guard, if any, is irrelevant.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.errors import SelectorError
from repro.mq.selectors import compile_selector

__all__ = [
    "DestinationRule",
    "GroupRule",
    "MessageRule",
    "ReactionRule",
    "RuleSet",
    "RuleValidationError",
    "node_from_dict",
]

#: Reaction modes: destructive read, transactional read + commit,
#: transactional read + rollback.
REACTION_MODES = ("read", "commit", "abort")


class RuleValidationError(ValueError):
    """A rule set that cannot describe a runnable scenario."""


def _require_scalar_body(name: str, body: Dict[str, Any]) -> None:
    for key, value in body.items():
        if not isinstance(key, str):
            raise RuleValidationError(f"{name} body keys must be strings")
        if not isinstance(value, (str, int, float, bool)):
            raise RuleValidationError(
                f"{name} body[{key!r}] must be a JMS scalar, got {value!r}"
            )


@dataclass
class DestinationRule:
    """Leaf rule: one receiver's inbox, with optional own deadlines.

    ``anonymous=True`` drops the recipient filter when compiling — any
    reader of the queue satisfies the leaf, and such readers count
    toward the enclosing group's ``anonymous_*`` tallies.
    """

    receiver: str
    copies: int = 1
    pick_up_within_ms: Optional[int] = None
    process_within_ms: Optional[int] = None
    anonymous: bool = False

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"type": "destination", "receiver": self.receiver}
        if self.copies != 1:
            data["copies"] = self.copies
        if self.pick_up_within_ms is not None:
            data["pick_up_within_ms"] = self.pick_up_within_ms
        if self.process_within_ms is not None:
            data["process_within_ms"] = self.process_within_ms
        if self.anonymous:
            data["anonymous"] = True
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DestinationRule":
        return cls(
            receiver=str(data["receiver"]),
            copies=int(data.get("copies", 1)),
            pick_up_within_ms=data.get("pick_up_within_ms"),
            process_within_ms=data.get("process_within_ms"),
            anonymous=bool(data.get("anonymous", False)),
        )


#: A node of the declarative condition tree.
RuleNode = Union[DestinationRule, "GroupRule"]


@dataclass
class GroupRule:
    """Composite rule: a destination set over member nodes.

    Field names drop the ``msg_``/``nr_`` prefixes of the object model
    but map one-to-one: ``pick_up_within_ms`` is ``msg_pick_up_time``,
    ``min_pick_up`` is ``min_nr_pick_up``, and so on.
    """

    members: List[RuleNode] = field(default_factory=list)
    pick_up_within_ms: Optional[int] = None
    process_within_ms: Optional[int] = None
    min_pick_up: Optional[int] = None
    max_pick_up: Optional[int] = None
    min_processing: Optional[int] = None
    max_processing: Optional[int] = None
    anonymous_min_pick_up: Optional[int] = None
    anonymous_max_pick_up: Optional[int] = None
    anonymous_min_processing: Optional[int] = None
    anonymous_max_processing: Optional[int] = None

    _OPTIONAL = (
        "pick_up_within_ms",
        "process_within_ms",
        "min_pick_up",
        "max_pick_up",
        "min_processing",
        "max_processing",
        "anonymous_min_pick_up",
        "anonymous_max_pick_up",
        "anonymous_min_processing",
        "anonymous_max_processing",
    )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "type": "group",
            "members": [member.to_dict() for member in self.members],
        }
        for name in self._OPTIONAL:
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GroupRule":
        group = cls(
            members=[node_from_dict(m) for m in data.get("members", [])]
        )
        for name in cls._OPTIONAL:
            setattr(group, name, data.get(name))
        return group


def node_from_dict(data: Dict[str, Any]) -> RuleNode:
    """Decode one condition-tree node by its ``type`` discriminator."""
    kind = data.get("type")
    if kind == "destination":
        return DestinationRule.from_dict(data)
    if kind == "group":
        return GroupRule.from_dict(data)
    raise RuleValidationError(f"unknown rule node type {kind!r}")


@dataclass
class MessageRule:
    """One conditional send: when, what, under which condition."""

    condition: RuleNode
    send_at_ms: int = 0
    body: Dict[str, Any] = field(default_factory=dict)
    evaluation_timeout_ms: Optional[int] = None
    #: Compensation pairing: when set, the send stages this body as the
    #: compensation message released on a FAILURE outcome.
    compensation: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "condition": self.condition.to_dict(),
            "send_at_ms": self.send_at_ms,
            "body": dict(self.body),
        }
        if self.evaluation_timeout_ms is not None:
            data["evaluation_timeout_ms"] = self.evaluation_timeout_ms
        if self.compensation is not None:
            data["compensation"] = dict(self.compensation)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MessageRule":
        return cls(
            condition=node_from_dict(data["condition"]),
            send_at_ms=int(data.get("send_at_ms", 0)),
            body=dict(data.get("body", {})),
            evaluation_timeout_ms=data.get("evaluation_timeout_ms"),
            compensation=(
                dict(data["compensation"])
                if data.get("compensation") is not None
                else None
            ),
        )


@dataclass
class ReactionRule:
    """One receiver's scripted reaction: read its inbox at a set time."""

    receiver: str
    #: Virtual time, relative to scenario start, at which the reaction
    #: attempts to read the receiver's inbox queue.
    at_ms: int
    mode: str = "read"
    #: Transaction hold time between the read and commit/abort (tx modes).
    process_ms: int = 0
    #: JMS selector evaluated against the delivered message; forces a
    #: transactional read that commits only on a match.
    guard: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "receiver": self.receiver,
            "at_ms": self.at_ms,
            "mode": self.mode,
        }
        if self.process_ms:
            data["process_ms"] = self.process_ms
        if self.guard is not None:
            data["guard"] = self.guard
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReactionRule":
        return cls(
            receiver=str(data["receiver"]),
            at_ms=int(data["at_ms"]),
            mode=str(data.get("mode", "read")),
            process_ms=int(data.get("process_ms", 0)),
            guard=data.get("guard"),
        )


@dataclass
class RuleSet:
    """A complete declarative scenario: receivers, sends, reactions."""

    receivers: List[str]
    messages: List[MessageRule] = field(default_factory=list)
    reactions: List[ReactionRule] = field(default_factory=list)
    name: str = "ruleset"
    seed: int = 0

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "receivers": list(self.receivers),
            "messages": [m.to_dict() for m in self.messages],
            "reactions": [r.to_dict() for r in self.reactions],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RuleSet":
        return cls(
            receivers=[str(r) for r in data.get("receivers", [])],
            messages=[MessageRule.from_dict(m) for m in data.get("messages", [])],
            reactions=[
                ReactionRule.from_dict(r) for r in data.get("reactions", [])
            ],
            name=str(data.get("name", "ruleset")),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "RuleSet":
        return cls.from_dict(json.loads(text))

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Full static check; raises :class:`RuleValidationError`.

        Structural shape, receiver references, reaction modes, guard
        selector syntax, and — by compiling every message — the object
        model's own condition validation.
        """
        from repro.rules.compile import compile_message  # circular-safe

        if not self.receivers:
            raise RuleValidationError("a rule set needs at least one receiver")
        if len(set(self.receivers)) != len(self.receivers):
            raise RuleValidationError("duplicate receiver names")
        known = set(self.receivers)
        if not self.messages:
            raise RuleValidationError("a rule set needs at least one message")
        for index, message in enumerate(self.messages):
            if message.send_at_ms < 0:
                raise RuleValidationError(
                    f"messages[{index}].send_at_ms must be >= 0"
                )
            _require_scalar_body(f"messages[{index}]", message.body)
            if message.compensation is not None:
                _require_scalar_body(
                    f"messages[{index}].compensation", message.compensation
                )
            for leaf in _leaves(message.condition):
                if leaf.receiver not in known:
                    raise RuleValidationError(
                        f"messages[{index}] references unknown receiver"
                        f" {leaf.receiver!r}"
                    )
            compiled = compile_message(message)
            compiled.validate()
        for index, reaction in enumerate(self.reactions):
            if reaction.receiver not in known:
                raise RuleValidationError(
                    f"reactions[{index}] references unknown receiver"
                    f" {reaction.receiver!r}"
                )
            if reaction.mode not in REACTION_MODES:
                raise RuleValidationError(
                    f"reactions[{index}].mode must be one of {REACTION_MODES},"
                    f" got {reaction.mode!r}"
                )
            if reaction.at_ms < 0 or reaction.process_ms < 0:
                raise RuleValidationError(
                    f"reactions[{index}] times must be >= 0"
                )
            if reaction.guard is not None:
                try:
                    compile_selector(reaction.guard)
                except SelectorError as exc:
                    raise RuleValidationError(
                        f"reactions[{index}].guard does not parse: {exc}"
                    ) from exc


def _leaves(node: RuleNode) -> List[DestinationRule]:
    if isinstance(node, DestinationRule):
        return [node]
    found: List[DestinationRule] = []
    for member in node.members:
        found.extend(_leaves(member))
    return found
