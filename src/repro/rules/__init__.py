"""Declarative conditional-messaging rules.

Rules are the data form of a complete small scenario — receivers,
conditional sends, scripted reactions — with a canonical JSON encoding,
a compiler to the production condition object model, and a seeded
generator of valid small instances for the bounded model checker.
"""

from repro.rules.compile import (
    compile_message,
    compile_node,
    default_manager_of,
    default_queue_of,
)
from repro.rules.generate import RuleSetGenerator
from repro.rules.model import (
    DestinationRule,
    GroupRule,
    MessageRule,
    ReactionRule,
    RuleSet,
    RuleValidationError,
    node_from_dict,
)

__all__ = [
    "DestinationRule",
    "GroupRule",
    "MessageRule",
    "ReactionRule",
    "RuleSet",
    "RuleSetGenerator",
    "RuleValidationError",
    "compile_message",
    "compile_node",
    "default_manager_of",
    "default_queue_of",
    "node_from_dict",
]
