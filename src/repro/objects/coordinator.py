"""Presumed-abort two-phase commit over registered resources.

The coordinator drives the classic protocol:

* phase 1: ``prepare`` every resource in registration order; a ROLLBACK
  vote or an exception aborts the whole transaction (prepared resources
  are rolled back);
* phase 2: ``commit`` resources that voted COMMIT (READ_ONLY voters are
  skipped).  A commit-phase exception after the decision is recorded as a
  *heuristic hazard* — the decision stands, the failure is reported.

The coordinator keeps an outcome log so late or repeated completion calls
are idempotent, which the Dependency-Sphere layer relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Tuple

from repro.errors import HeuristicMixedError, TransactionError
from repro.objects.resource import TransactionalResource, Vote


class TxOutcome(Enum):
    """Final decision for a coordinated transaction."""

    COMMITTED = "committed"
    ROLLED_BACK = "rolled_back"


@dataclass
class CoordinatorStats:
    """Counters over the coordinator's lifetime."""

    commits: int = 0
    rollbacks: int = 0
    prepares: int = 0
    read_only_optimizations: int = 0
    heuristic_hazards: int = 0


@dataclass
class _TxRecord:
    resources: List[TransactionalResource] = field(default_factory=list)
    outcome: "TxOutcome | None" = None


class TwoPhaseCoordinator:
    """Coordinates atomic outcomes across transactional resources."""

    def __init__(self) -> None:
        self._transactions: Dict[str, _TxRecord] = {}
        self.stats = CoordinatorStats()

    # -- enlistment -----------------------------------------------------------

    def register(self, tx_id: str, resource: TransactionalResource) -> None:
        """Enlist ``resource`` in transaction ``tx_id`` (idempotent)."""
        record = self._transactions.setdefault(tx_id, _TxRecord())
        if record.outcome is not None:
            raise TransactionError(
                f"transaction {tx_id} already {record.outcome.value};"
                " cannot enlist new resources"
            )
        if resource not in record.resources:
            record.resources.append(resource)

    def resources(self, tx_id: str) -> List[TransactionalResource]:
        """Resources enlisted so far for ``tx_id``."""
        record = self._transactions.get(tx_id)
        return list(record.resources) if record else []

    def outcome(self, tx_id: str) -> "TxOutcome | None":
        """Decided outcome, or ``None`` if the transaction is still open."""
        record = self._transactions.get(tx_id)
        return record.outcome if record else None

    # -- completion ------------------------------------------------------------

    def commit(self, tx_id: str) -> TxOutcome:
        """Run two-phase commit; returns the decided outcome.

        A transaction with no enlisted resources commits trivially.
        Re-invoking on a decided transaction returns the recorded outcome
        without touching resources (idempotence).
        """
        record = self._transactions.setdefault(tx_id, _TxRecord())
        if record.outcome is not None:
            return record.outcome

        # Phase 1: collect votes.
        votes: List[Tuple[TransactionalResource, Vote]] = []
        decision = TxOutcome.COMMITTED
        for resource in record.resources:
            try:
                vote = resource.prepare(tx_id)
            except Exception:  # noqa: BLE001 - any prepare failure is a NO vote
                vote = Vote.ROLLBACK
            self.stats.prepares += 1
            votes.append((resource, vote))
            if vote is Vote.ROLLBACK:
                decision = TxOutcome.ROLLED_BACK
                break

        if decision is TxOutcome.ROLLED_BACK:
            # Roll back every enlisted resource: the ones prepared so far,
            # the NO voter, and the ones never reached (presumed abort —
            # they must still discard any staged work).  READ_ONLY voters
            # already dropped out.
            read_only = {
                id(resource) for resource, vote in votes if vote is Vote.READ_ONLY
            }
            hazards = 0
            for resource in record.resources:
                if id(resource) in read_only:
                    continue
                try:
                    resource.rollback(tx_id)
                except Exception:  # noqa: BLE001
                    hazards += 1
            record.outcome = TxOutcome.ROLLED_BACK
            self.stats.rollbacks += 1
            self.stats.heuristic_hazards += hazards
            return record.outcome

        # Decision is COMMIT: it is now irreversible (presumed abort ends).
        record.outcome = TxOutcome.COMMITTED
        self.stats.commits += 1
        hazards = 0
        for resource, vote in votes:
            if vote is Vote.READ_ONLY:
                self.stats.read_only_optimizations += 1
                continue
            try:
                resource.commit(tx_id)
            except Exception:  # noqa: BLE001
                hazards += 1
        if hazards:
            self.stats.heuristic_hazards += hazards
            raise HeuristicMixedError(
                f"transaction {tx_id} committed but {hazards} resource(s)"
                " failed during phase two"
            )
        return record.outcome

    def rollback(self, tx_id: str) -> TxOutcome:
        """Roll back every enlisted resource (idempotent)."""
        record = self._transactions.setdefault(tx_id, _TxRecord())
        if record.outcome is not None:
            if record.outcome is TxOutcome.COMMITTED:
                raise TransactionError(
                    f"transaction {tx_id} already committed; cannot roll back"
                )
            return record.outcome
        hazards = 0
        for resource in record.resources:
            try:
                resource.rollback(tx_id)
            except Exception:  # noqa: BLE001
                hazards += 1
        record.outcome = TxOutcome.ROLLED_BACK
        self.stats.rollbacks += 1
        self.stats.heuristic_hazards += hazards
        return record.outcome

    def forget(self, tx_id: str) -> None:
        """Drop the outcome record for a completed transaction."""
        record = self._transactions.get(tx_id)
        if record is not None and record.outcome is None:
            raise TransactionError(f"transaction {tx_id} is still open")
        self._transactions.pop(tx_id, None)
