"""The transactional-resource protocol (XAResource, in miniature).

A resource participates in two-phase commit for a transaction id:

1. ``prepare(tx_id)`` — durably stage the transaction's effects and return
   a :class:`Vote`;
2. ``commit(tx_id)`` / ``rollback(tx_id)`` — apply or discard them.

``VOTE_READ_ONLY`` lets a resource that saw no writes drop out after phase
one, the standard read-only optimization.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum


class Vote(Enum):
    """A resource's answer to prepare."""

    COMMIT = "commit"
    ROLLBACK = "rollback"
    READ_ONLY = "read_only"


class ResourceState(Enum):
    """Per-transaction resource state, tracked by well-behaved resources."""

    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled_back"


class TransactionalResource(ABC):
    """Protocol implemented by anything that can join two-phase commit."""

    @property
    @abstractmethod
    def resource_name(self) -> str:
        """Human-readable name used in coordinator logs and errors."""

    @abstractmethod
    def prepare(self, tx_id: str) -> Vote:
        """Phase one: stage effects durably; vote on the outcome."""

    @abstractmethod
    def commit(self, tx_id: str) -> None:
        """Phase two: make prepared effects permanent."""

    @abstractmethod
    def rollback(self, tx_id: str) -> None:
        """Discard effects (callable before or after prepare)."""


class FailingResource(TransactionalResource):
    """Test/benchmark resource that votes or behaves as configured.

    Useful for failure injection: vote ROLLBACK at prepare, or raise at
    any phase to exercise coordinator error paths.
    """

    def __init__(
        self,
        name: str = "failing",
        vote: Vote = Vote.ROLLBACK,
        raise_on_prepare: bool = False,
        raise_on_commit: bool = False,
    ) -> None:
        self._name = name
        self._vote = vote
        self._raise_on_prepare = raise_on_prepare
        self._raise_on_commit = raise_on_commit
        self.prepared: list = []
        self.committed: list = []
        self.rolled_back: list = []

    @property
    def resource_name(self) -> str:
        return self._name

    def prepare(self, tx_id: str) -> Vote:
        if self._raise_on_prepare:
            raise RuntimeError(f"{self._name}: injected prepare failure")
        self.prepared.append(tx_id)
        return self._vote

    def commit(self, tx_id: str) -> None:
        if self._raise_on_commit:
            raise RuntimeError(f"{self._name}: injected commit failure")
        self.committed.append(tx_id)

    def rollback(self, tx_id: str) -> None:
        self.rolled_back.append(tx_id)
