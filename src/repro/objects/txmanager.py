"""Transaction manager: demarcation API and current-transaction context.

Mirrors the JTS/OTS ``Current`` interface the paper's applications use:
``begin`` / ``commit`` / ``rollback`` plus implicit context propagation —
transactional objects look up the caller's current transaction from the
manager rather than taking it as a parameter.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.errors import (
    NoTransactionError,
    TransactionActiveError,
    TransactionRolledBackError,
)
from repro.objects.coordinator import TwoPhaseCoordinator, TxOutcome
from repro.objects.resource import TransactionalResource

_obj_tx_seq = itertools.count(1)


class ObjectTransaction:
    """Handle on one coordinated object transaction."""

    def __init__(self, manager: "TransactionManager", tx_id: str) -> None:
        self._manager = manager
        self.tx_id = tx_id
        self.completed: Optional[TxOutcome] = None
        self._rollback_only = False

    # -- enlistment -------------------------------------------------------------

    def enlist(self, resource: TransactionalResource) -> None:
        """Join ``resource`` to this transaction."""
        self._require_open()
        self._manager.coordinator.register(self.tx_id, resource)

    def set_rollback_only(self) -> None:
        """Poison the transaction: commit will roll back instead."""
        self._require_open()
        self._rollback_only = True

    @property
    def rollback_only(self) -> bool:
        """True once the transaction can only roll back."""
        return self._rollback_only

    # -- completion --------------------------------------------------------------

    def commit(self) -> TxOutcome:
        """Attempt two-phase commit; raises if the outcome is rollback.

        Raising on rollback matches JTA's ``RollbackException`` behaviour:
        the caller must learn the unit of work did not happen.
        """
        self._require_open()
        if self._rollback_only:
            outcome = self._manager.coordinator.rollback(self.tx_id)
        else:
            outcome = self._manager.coordinator.commit(self.tx_id)
        self.completed = outcome
        self._manager._on_completed(self)
        if outcome is not TxOutcome.COMMITTED:
            raise TransactionRolledBackError(
                f"transaction {self.tx_id} rolled back"
            )
        return outcome

    def rollback(self) -> TxOutcome:
        """Roll back the transaction."""
        self._require_open()
        outcome = self._manager.coordinator.rollback(self.tx_id)
        self.completed = outcome
        self._manager._on_completed(self)
        return outcome

    @property
    def active(self) -> bool:
        """True until commit/rollback completes."""
        return self.completed is None

    def _require_open(self) -> None:
        if self.completed is not None:
            raise TransactionRolledBackError(
                f"transaction {self.tx_id} already {self.completed.value}"
            )

    def __repr__(self) -> str:
        state = self.completed.value if self.completed else "active"
        return f"ObjectTransaction({self.tx_id}, {state})"


class TransactionManager:
    """Begins transactions and tracks the current one (per manager).

    The library is single-threaded by design (the simulation is
    event-driven), so "current transaction" is a simple stack: nested
    ``begin`` is rejected, matching flat JTA transactions.
    """

    def __init__(self, coordinator: Optional[TwoPhaseCoordinator] = None) -> None:
        self.coordinator = coordinator or TwoPhaseCoordinator()
        self._current: Optional[ObjectTransaction] = None
        self._history: List[ObjectTransaction] = []

    def begin(self) -> ObjectTransaction:
        """Start a transaction and make it current."""
        if self._current is not None and self._current.active:
            raise TransactionActiveError(
                f"transaction {self._current.tx_id} is already active"
            )
        tx = ObjectTransaction(self, f"OTX-{next(_obj_tx_seq):06d}")
        self._current = tx
        return tx

    @property
    def current(self) -> Optional[ObjectTransaction]:
        """The active transaction, or ``None``."""
        if self._current is not None and self._current.active:
            return self._current
        return None

    def require_current(self) -> ObjectTransaction:
        """The active transaction; raises :class:`NoTransactionError`."""
        tx = self.current
        if tx is None:
            raise NoTransactionError("no active object transaction")
        return tx

    def commit(self) -> TxOutcome:
        """Commit the current transaction."""
        return self.require_current().commit()

    def rollback(self) -> TxOutcome:
        """Roll back the current transaction."""
        return self.require_current().rollback()

    @property
    def history(self) -> List[ObjectTransaction]:
        """Completed transactions, oldest first."""
        return list(self._history)

    def _on_completed(self, tx: ObjectTransaction) -> None:
        self._history.append(tx)
        if self._current is tx:
            self._current = None
