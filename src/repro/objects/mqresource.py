"""Adapter enlisting a messaging transaction in two-phase commit.

Reference [15] of the paper ("Strategies for Integrating Messaging and
Distributed Object Transactions") treats the message queue manager as one
more transactional resource.  This adapter wraps a
:class:`~repro.mq.transactions.MQTransaction` as a
:class:`~repro.objects.resource.TransactionalResource` so that a receiver
can consume a message, update a database object, and have both join one
atomic outcome — the "message processing transaction" pattern the
conditional-messaging receiver side builds on.

The queue manager has no separate prepare phase (locks already stage the
gets; buffered puts stage the puts), so prepare only validates that the
unit of work is still active.
"""

from __future__ import annotations

from repro.mq.transactions import MQTransaction
from repro.objects.resource import TransactionalResource, Vote


class MQTransactionResource(TransactionalResource):
    """Makes an MQ syncpoint transaction a 2PC participant."""

    def __init__(self, mq_transaction: MQTransaction) -> None:
        self.mq_transaction = mq_transaction

    @property
    def resource_name(self) -> str:
        return f"mq:{self.mq_transaction.tx_id}"

    def prepare(self, tx_id: str) -> Vote:
        if not self.mq_transaction.active:
            return Vote.ROLLBACK
        return Vote.COMMIT

    def commit(self, tx_id: str) -> None:
        if self.mq_transaction.active:
            self.mq_transaction.commit()

    def rollback(self, tx_id: str) -> None:
        if self.mq_transaction.active:
            self.mq_transaction.rollback()
