"""Naming service and base class for transactional distributed objects.

The paper's D-Sphere senders "invoke transactional resources like
distributed objects ... using the standard invocation mechanism of the
transaction object middleware" (section 3.2).  Here:

* :class:`ObjectRegistry` is the naming service — objects are bound under
  string names and resolved by clients;
* :class:`TransactionalObject` is the server-object base class.  Its
  state lives in a :class:`~repro.objects.kvstore.TransactionalKVStore`,
  and every state access made through :meth:`state_get` / :meth:`state_put`
  automatically enlists the store in the caller's *current* transaction,
  giving the implicit-context propagation of OTS/JTS.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.objects.kvstore import TransactionalKVStore
from repro.objects.txmanager import TransactionManager


class ObjectRegistry:
    """Flat name -> object binding table."""

    def __init__(self) -> None:
        self._bindings: Dict[str, Any] = {}

    def bind(self, name: str, obj: Any) -> None:
        """Bind ``obj`` under ``name``; rebinding an existing name fails."""
        if name in self._bindings:
            raise ReproError(f"name already bound: {name!r}")
        self._bindings[name] = obj

    def rebind(self, name: str, obj: Any) -> None:
        """Bind, replacing any existing binding."""
        self._bindings[name] = obj

    def resolve(self, name: str) -> Any:
        """Look up a bound object."""
        try:
            return self._bindings[name]
        except KeyError:
            raise ReproError(f"name not bound: {name!r}") from None

    def unbind(self, name: str) -> None:
        """Remove a binding."""
        self._bindings.pop(name, None)

    def names(self) -> List[str]:
        """All bound names."""
        return list(self._bindings)


class TransactionalObject:
    """Base class for server objects with transactional state.

    Subclasses implement business methods in terms of
    :meth:`state_get` / :meth:`state_put` / :meth:`state_delete`; if the
    caller has a current object transaction, those accesses join it (the
    backing store is enlisted automatically), otherwise they act
    immediately (auto-commit), as EJB "NotSupported" methods would.
    """

    def __init__(
        self,
        name: str,
        txmanager: TransactionManager,
        store: Optional[TransactionalKVStore] = None,
    ) -> None:
        self.name = name
        self._txmanager = txmanager
        self.store = store or TransactionalKVStore(name=f"{name}.store")

    # -- transactional state access -----------------------------------------

    def state_get(self, key: str, default: Any = None) -> Any:
        """Read object state under the caller's transaction (if any)."""
        tx = self._txmanager.current
        if tx is not None:
            tx.enlist(self.store)
            return self.store.get(key, tx_id=tx.tx_id, default=default)
        return self.store.get(key, default=default)

    def state_put(self, key: str, value: Any) -> None:
        """Write object state under the caller's transaction (if any)."""
        tx = self._txmanager.current
        if tx is not None:
            tx.enlist(self.store)
            self.store.put(key, value, tx_id=tx.tx_id)
        else:
            self.store.put(key, value)

    def state_delete(self, key: str) -> None:
        """Delete object state under the caller's transaction (if any)."""
        tx = self._txmanager.current
        if tx is not None:
            tx.enlist(self.store)
            self.store.delete(key, tx_id=tx.tx_id)
        else:
            self.store.delete(key)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
