"""A transactional key-value store: the "distributed database" resource.

Stands in for the calendar and room-reservation databases of the paper's
Example 1.  Semantics:

* transactional writes collect in a per-transaction write set; reads are
  read-your-writes, falling back to the committed store;
* ``prepare`` performs first-committer-wins conflict validation: if any
  key written by the transaction was committed by someone else since the
  transaction first touched it, the vote is ROLLBACK;
* a transaction that only read votes READ_ONLY;
* ``commit`` applies the write set and bumps per-key versions.

The store is a :class:`~repro.objects.resource.TransactionalResource`, so
it participates in two-phase commit next to other resources (including
the messaging-transaction adapter and Dependency-Spheres).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import TransactionError
from repro.objects.resource import TransactionalResource, Vote

#: Sentinel distinguishing "delete this key" from "write None".
_DELETED = object()


@dataclass
class _TxWorkspace:
    """Private view of the store for one transaction."""

    writes: Dict[str, Any] = field(default_factory=dict)
    #: key -> version observed when the tx first read/wrote it
    snapshots: Dict[str, int] = field(default_factory=dict)
    prepared: bool = False


class TransactionalKVStore(TransactionalResource):
    """In-memory transactional map with 2PC participation."""

    def __init__(self, name: str = "kvstore") -> None:
        self._name = name
        self._data: Dict[str, Any] = {}
        self._versions: Dict[str, int] = {}
        self._workspaces: Dict[str, _TxWorkspace] = {}
        self.commit_count = 0
        self.conflict_count = 0

    @property
    def resource_name(self) -> str:
        return self._name

    # -- application API ----------------------------------------------------

    def get(self, key: str, tx_id: Optional[str] = None, default: Any = None) -> Any:
        """Read a key; inside a transaction, reads-your-writes."""
        if tx_id is not None:
            workspace = self._workspace(tx_id)
            if key in workspace.writes:
                value = workspace.writes[key]
                return default if value is _DELETED else value
            workspace.snapshots.setdefault(key, self._versions.get(key, 0))
        if key in self._data:
            return self._data[key]
        return default

    def put(self, key: str, value: Any, tx_id: Optional[str] = None) -> None:
        """Write a key (transactionally if ``tx_id`` given)."""
        if tx_id is None:
            self._data[key] = value
            self._versions[key] = self._versions.get(key, 0) + 1
            return
        workspace = self._workspace(tx_id)
        workspace.snapshots.setdefault(key, self._versions.get(key, 0))
        workspace.writes[key] = value

    def delete(self, key: str, tx_id: Optional[str] = None) -> None:
        """Delete a key (transactionally if ``tx_id`` given)."""
        if tx_id is None:
            self._data.pop(key, None)
            self._versions[key] = self._versions.get(key, 0) + 1
            return
        workspace = self._workspace(tx_id)
        workspace.snapshots.setdefault(key, self._versions.get(key, 0))
        workspace.writes[key] = _DELETED

    def contains(self, key: str, tx_id: Optional[str] = None) -> bool:
        """Key-presence test with the same visibility rules as :meth:`get`."""
        marker = object()
        return self.get(key, tx_id=tx_id, default=marker) is not marker

    def keys(self) -> List[str]:
        """Committed keys (no transactional view)."""
        return list(self._data)

    def committed_snapshot(self) -> Dict[str, Any]:
        """Copy of the committed state (for assertions in tests)."""
        return dict(self._data)

    # -- TransactionalResource ----------------------------------------------

    def prepare(self, tx_id: str) -> Vote:
        workspace = self._workspaces.get(tx_id)
        if workspace is None:
            return Vote.READ_ONLY
        if not workspace.writes:
            return Vote.READ_ONLY
        for key in workspace.writes:
            observed = workspace.snapshots.get(key, 0)
            if self._versions.get(key, 0) != observed:
                self.conflict_count += 1
                return Vote.ROLLBACK
        workspace.prepared = True
        return Vote.COMMIT

    def commit(self, tx_id: str) -> None:
        workspace = self._workspaces.pop(tx_id, None)
        if workspace is None or not workspace.writes:
            return  # read-only participant
        if not workspace.prepared:
            raise TransactionError(
                f"{self._name}: commit of unprepared transaction {tx_id}"
            )
        for key, value in workspace.writes.items():
            if value is _DELETED:
                self._data.pop(key, None)
            else:
                self._data[key] = value
            self._versions[key] = self._versions.get(key, 0) + 1
        self.commit_count += 1

    def rollback(self, tx_id: str) -> None:
        self._workspaces.pop(tx_id, None)

    # -- internals -------------------------------------------------------------

    def _workspace(self, tx_id: str) -> _TxWorkspace:
        return self._workspaces.setdefault(tx_id, _TxWorkspace())

    def __repr__(self) -> str:
        return f"TransactionalKVStore({self._name!r}, keys={len(self._data)})"
