"""Distributed object transaction substrate (a mini CORBA OTS / JTS).

Dependency-Spheres (paper section 3.2) integrate conditional messages with
"transactional resources like distributed objects and databases using the
standard invocation mechanism of the transaction object middleware used
(such as CORBA OTS and JTS)".  This package is that middleware:

* :class:`~repro.objects.resource.TransactionalResource` — the resource
  protocol (prepare/commit/rollback with votes), i.e. XAResource;
* :class:`~repro.objects.coordinator.TwoPhaseCoordinator` — presumed-abort
  two-phase commit over registered resources;
* :class:`~repro.objects.txmanager.TransactionManager` — demarcation API
  (``begin``/``commit``/``rollback``) with a current-transaction context;
* :class:`~repro.objects.kvstore.TransactionalKVStore` — a transactional
  key-value "database" resource with write-sets, conflict detection, and
  snapshot reads (stands in for the calendar / room-reservation databases
  of the paper's Example 1);
* :class:`~repro.objects.registry.ObjectRegistry` — a tiny naming service
  for "distributed objects" whose transactional methods auto-enlist in the
  caller's transaction.
"""

from repro.objects.resource import (
    ResourceState,
    TransactionalResource,
    Vote,
)
from repro.objects.coordinator import TwoPhaseCoordinator, TxOutcome
from repro.objects.txmanager import ObjectTransaction, TransactionManager
from repro.objects.kvstore import TransactionalKVStore
from repro.objects.registry import ObjectRegistry, TransactionalObject

__all__ = [
    "ResourceState",
    "TransactionalResource",
    "Vote",
    "TwoPhaseCoordinator",
    "TxOutcome",
    "ObjectTransaction",
    "TransactionManager",
    "TransactionalKVStore",
    "ObjectRegistry",
    "TransactionalObject",
]
