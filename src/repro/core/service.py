"""Sender-side conditional messaging service (paper section 2.7, Fig. 9).

The facade an application uses to send conditional messages.  It wires
together:

* message generation (:mod:`repro.core.sender`),
* the persistent system queues ``DS.SLOG.Q`` (sender log), ``DS.ACK.Q``
  (incoming acknowledgments), ``DS.COMP.Q`` (staged compensations) and
  ``DS.OUTCOME.Q`` (outcome notifications),
* the evaluation manager (:mod:`repro.core.evaluation`),
* the compensation manager and success notifications
  (:mod:`repro.core.compensation`, section 2.6),
* optional deferral of outcome actions to a Dependency-Sphere
  (:mod:`repro.dsphere`).

"The conditional messaging API is a simple indirection to standard
messaging middleware" — applications keep direct access to the underlying
queue manager for unconditional traffic.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.compensation import CompensationManager
from repro.core.conditions import Condition
from repro.core.evaluation import EvaluationManager
from repro.core.ids import new_conditional_message_id
from repro.core.logqueues import (
    ACK_QUEUE,
    COMPENSATION_QUEUE,
    OUTCOME_QUEUE,
    SENDER_LOG_QUEUE,
    SenderLogEntry,
)
from repro.core.outcome import MessageOutcome, OutcomeRecord
from repro.core.sender import generate_send, generate_success_notifications
from repro.core.serialize import condition_from_dict, condition_to_dict
from repro.errors import UnknownConditionalMessageError
from repro.mq.manager import QueueManager
from repro.sim.scheduler import EventScheduler

#: Extra evaluation time granted beyond the largest condition deadline
#: when the application specifies no explicit timeout.  Mirrors the
#: paper's Example 2, where a 20-second condition gets a 21-second
#: evaluation timeout to let in-flight acknowledgments land.
DEFAULT_EVALUATION_GRACE_MS = 1_000


@dataclass
class ServiceStats:
    """Counters for tests and benchmark reporting."""

    conditional_sends: int = 0
    standard_messages_generated: int = 0
    compensations_staged: int = 0
    success_notifications_sent: int = 0
    compensations_released: int = 0


class ConditionalMessagingService:
    """The sender-side conditional messaging system.

    Args:
        manager: The sender application's queue manager.
        scheduler: Simulation scheduler; enables deadline-driven
            evaluation timeouts.  Without one, call :meth:`poll`
            periodically (synchronous deployments).
        notify_success: Send success notifications to all destinations on
            message success (section 2.6; off by default — the paper says
            the system "can" send them).
        evaluation_grace_ms: Slack added to the largest condition deadline
            to form the default evaluation timeout.
        group_commit: Batch every journal record a conditional send
            produces (sender-log entry, staged compensations, transmission
            parking of the data messages) into one group-committed flush,
            so a send at fan-out N costs one flush instead of ``2N+1``.
            On by default; disable for the per-record ablation baseline.
        pump_coalesce_ms: Defer ack-queue drains to one scheduled event
            that many ms after the first arrival (see
            :class:`~repro.core.evaluation.EvaluationManager`); ``None``
            (default) pumps synchronously per arriving acknowledgment.

    Observability (tracer and metrics registry, :mod:`repro.obs`) is
    inherited from ``manager`` — give the queue manager a
    :class:`~repro.obs.trace.FlightRecorder` and every hop of each
    conditional message sent through this service is traced.
    """

    def __init__(
        self,
        manager: QueueManager,
        scheduler: Optional[EventScheduler] = None,
        notify_success: bool = False,
        evaluation_grace_ms: int = DEFAULT_EVALUATION_GRACE_MS,
        ack_queue: str = ACK_QUEUE,
        slog_queue: str = SENDER_LOG_QUEUE,
        comp_queue: str = COMPENSATION_QUEUE,
        outcome_queue: str = OUTCOME_QUEUE,
        push_evaluation: bool = True,
        group_commit: bool = True,
        pump_coalesce_ms: Optional[int] = None,
    ) -> None:
        self.manager = manager
        self.scheduler = scheduler
        self.notify_success = notify_success
        self.evaluation_grace_ms = evaluation_grace_ms
        self.group_commit = group_commit
        self.ack_queue = ack_queue
        self.slog_queue = slog_queue
        self.outcome_queue = outcome_queue
        manager.ensure_queue(slog_queue)
        manager.ensure_queue(outcome_queue)
        self.compensation = CompensationManager(manager, comp_queue)
        self.evaluation = EvaluationManager(
            manager,
            ack_queue,
            on_decided=self._on_decided,
            scheduler=scheduler,
            push=push_evaluation,
            pump_coalesce_ms=pump_coalesce_ms,
        )
        self.stats = ServiceStats()
        #: cmid -> deferral callback installed by a Dependency-Sphere
        self._deferrals: Dict[str, Callable[[OutcomeRecord], None]] = {}
        #: cmid -> condition (needed for success notifications / D-Spheres)
        self._conditions: Dict[str, Condition] = {}
        self._send_times: Dict[str, int] = {}

    # -- the conditional messaging API (paper section 2.3) ---------------------

    def send_message(
        self,
        body: Any,
        condition: Condition,
        compensation: Any = None,
        evaluation_timeout_ms: Optional[int] = None,
        stage_compensation: bool = True,
        _defer_actions: Optional[Callable[[OutcomeRecord], None]] = None,
    ) -> str:
        """Send a conditional message; returns its conditional message id.

        This is the paper's ``sendMessage(Object, Condition)``; passing
        ``compensation`` data makes it the
        ``sendMessage(Object, Object, Condition)`` form with
        application-defined compensation support.

        The condition is validated, the standard messages are generated
        and dispatched, compensation messages are staged on DS.COMP.Q, a
        sender log entry is written to DS.SLOG.Q, and evaluation starts
        immediately.
        """
        condition.validate()
        cmid = new_conditional_message_id()
        send_time = self.manager.clock.now_ms()

        generated = generate_send(
            body=body,
            root=condition,
            cmid=cmid,
            send_time_ms=send_time,
            sender_manager=self.manager.name,
            ack_queue=self.ack_queue,
            compensation_body=compensation,
            stage_compensation=stage_compensation,
            tracer=self.manager.tracer,
        )

        timeout = self._effective_timeout(condition, evaluation_timeout_ms)

        log_entry = SenderLogEntry(
            cmid=cmid,
            send_time_ms=send_time,
            condition=condition_to_dict(condition),
            destinations=[
                {"manager": r.manager, "queue": r.queue} for r in generated.resolved
            ],
            evaluation_timeout_ms=timeout,
            has_compensation=stage_compensation,
        )

        # Durability order matters: compensation and log first, so a crash
        # after any destination received the original can always compensate.
        # Every journal record the fan-out produces — compensation staging,
        # the sender-log entry, and the transmission-queue parking of the
        # data messages — lands in ONE group-committed flush (Gray's group
        # commit) instead of one flush per record.  The network holds any
        # synchronous cross-manager transfer until that group is durable
        # (Journal.post_commit), so no destination can receive the
        # original while the records that make it compensatable are still
        # buffered; with group commit off, each record pays its own flush
        # before the transfer, preserving the same order.
        with self._durability_scope():
            self.compensation.stage(generated.compensations)
            self.manager.put(self.slog_queue, log_entry.to_message())
            for manager_name, queue_name, batch in generated.outgoing_by_target():
                if (
                    manager_name == self.manager.name
                    and self.manager.has_queue(queue_name)
                ):
                    # Local fan-out (e.g. multi-copy shared-queue leaves):
                    # one sorted splice and one journal record group.
                    self.manager.put_many(queue_name, batch)
                else:
                    for message in batch:
                        self.manager.put_remote(manager_name, queue_name, message)

        self._conditions[cmid] = condition
        self._send_times[cmid] = send_time
        if _defer_actions is not None:
            self._deferrals[cmid] = _defer_actions
        self.evaluation.register(cmid, condition, send_time, timeout)

        self.stats.conditional_sends += 1
        self.stats.standard_messages_generated += len(generated.outgoing)
        self.stats.compensations_staged += len(generated.compensations)
        return cmid

    # -- outcome access -------------------------------------------------------------

    def outcome(self, cmid: str) -> Optional[OutcomeRecord]:
        """The decided outcome for ``cmid``, or ``None`` while pending."""
        return self.evaluation.record(cmid).decided

    def poll(self) -> int:
        """Drive timeouts in scheduler-less mode; returns newly decided."""
        self.evaluation.pump()
        return self.evaluation.poll()

    def poll_outcome_notifications(self) -> List[OutcomeRecord]:
        """Drain DS.OUTCOME.Q (how an application observes outcomes)."""
        outcomes: List[OutcomeRecord] = []
        while True:
            message = self.manager.get_wait(self.outcome_queue)
            if message is None:
                return outcomes
            outcomes.append(OutcomeRecord.from_message(message))

    def pending_count(self) -> int:
        """Messages still awaiting their outcome."""
        return self.evaluation.pending_count()

    # -- outcome actions (paper section 2.6) -----------------------------------------

    # -- crash recovery (paper §2.6 reliability + ref [16] patterns) -----------------

    def recover_from_log(self) -> int:
        """Resume evaluation of every undecided message after a restart.

        DS.SLOG.Q is a *recovery* log: an entry is written before the
        standard messages go out and removed once the outcome is decided,
        so after a crash the remaining entries are exactly the in-flight
        conditional messages.  For each one this re-registers the
        evaluation with the *original* send time and timeout (deadlines
        keep their meaning across the crash), then drains any
        acknowledgments that accumulated on the persistent DS.ACK.Q while
        the sender was down.  Messages whose evaluation timeout passed
        during the outage decide (and compensate) immediately.

        Returns the number of evaluations resumed.  Typical use::

            manager = QueueManager.recover("QM.S", clock, journal)
            service = ConditionalMessagingService(manager, scheduler=sched)
            service.recover_from_log()
        """
        resumed = 0
        for message in list(self.manager.browse(self.slog_queue)):
            entry = SenderLogEntry.from_message(message)
            condition = condition_from_dict(entry.condition)
            self._conditions[entry.cmid] = condition
            self._send_times[entry.cmid] = entry.send_time_ms
            self.evaluation.register(
                entry.cmid,
                condition,
                entry.send_time_ms,
                entry.evaluation_timeout_ms,
            )
            resumed += 1
        self.evaluation.pump()
        return resumed

    def _on_decided(self, record: OutcomeRecord) -> None:
        deferral = self._deferrals.pop(record.cmid, None)
        with self._durability_scope():
            # The informational outcome notification always lands on
            # DS.OUTCOME.Q as soon as evaluation completes (section 2.5).
            self.manager.put(self.outcome_queue, record.to_message())
            # The recovery-log entry has served its purpose (see
            # recover_from_log); drop it so the log tracks in-flight messages.
            self._remove_log_entry(record.cmid)
            if deferral is None:
                # Outcome actions join the decision's commit group: were
                # the sender-log removal durable while the compensation
                # release/discard was not, a crash here would strand
                # staged compensations with no log entry left to re-drive
                # them.  One group makes decision and actions atomic.
                self.apply_outcome_actions(record.cmid, record.outcome)
        if deferral is not None:
            # Part of a Dependency-Sphere: outcome actions wait for the
            # sphere's group outcome (section 3.1).
            deferral(record)

    def apply_outcome_actions(self, cmid: str, outcome: MessageOutcome) -> None:
        """Run compensation/success actions for a decided message.

        Called internally for standalone messages, and by the
        Dependency-Sphere coordinator for grouped ones (with the *group*
        outcome, which may differ from the message's own).
        """
        if outcome is MessageOutcome.FAILURE:
            released = self.compensation.release(cmid)
            self.stats.compensations_released += released
            self.forget(cmid)
        else:
            self.compensation.discard(cmid)
            if self.notify_success:
                self.send_success_notifications(cmid)
                # Notifications sent: nothing further needs the condition.
                self.forget(cmid)
            # With notify_success off, the bookkeeping is retained so the
            # application can still call send_success_notifications
            # explicitly; call forget() when done with the message.

    def forget(self, cmid: str) -> None:
        """Drop per-message bookkeeping (bounds a long-running sender's
        memory).  Automatic after failure actions and after success
        notifications; call explicitly for successes you will not notify."""
        self._conditions.pop(cmid, None)
        self._send_times.pop(cmid, None)

    def send_success_notifications(self, cmid: str) -> int:
        """Send success notifications to every destination of ``cmid``."""
        condition = self._conditions.get(cmid)
        if condition is None:
            raise UnknownConditionalMessageError(cmid)
        notifications = generate_success_notifications(
            condition,
            cmid,
            self._send_times[cmid],
            self.manager.name,
            self.ack_queue,
        )
        for manager_name, queue_name, message in notifications:
            self.manager.put_remote(manager_name, queue_name, message)
        self.stats.success_notifications_sent += len(notifications)
        return len(notifications)

    # -- internals -------------------------------------------------------------------

    def _durability_scope(self):
        """One group-committed journal flush for the enclosed operations.

        A plain no-op scope when group commit is disabled (the per-record
        ablation baseline) — every journal record then pays its own flush.
        """
        if not self.group_commit:
            return nullcontext(self.manager)
        return self.manager.group_commit()

    def _remove_log_entry(self, cmid: str) -> None:
        # A destructive selector get journals the removal like any consume.
        self.manager.get_wait(
            self.slog_queue, selector=lambda m: m.correlation_id == cmid
        )

    def _effective_timeout(
        self, condition: Condition, explicit: Optional[int]
    ) -> Optional[int]:
        """Resolve the evaluation timeout for a send.

        Precedence: explicit argument, then the condition root's
        ``evaluation_timeout`` attribute, then the largest deadline in
        the tree plus the grace period.  A condition with no deadlines
        gets no timeout (it either decides on acknowledgments alone or —
        if it has unbounded anonymous minimums — the application must
        bound it explicitly).
        """
        if explicit is not None:
            return explicit
        if condition.evaluation_timeout is not None:
            return condition.evaluation_timeout
        max_deadline = condition.max_deadline()
        if max_deadline is not None:
            return max_deadline + self.evaluation_grace_ms
        return None
