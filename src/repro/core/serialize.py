"""Condition tree <-> plain-dict wire form.

Conditions are defined "independently of a message ... [which] allows
conditions to be reused for different messages" (paper section 2.3); the
wire form lets applications store condition templates, ship them between
processes, and lets the sender journal the condition with the SLOG entry
so evaluation state is recoverable after a crash.

The encoding is a nested dict with a ``"type"`` discriminator, stable
across versions and round-trip exact for every attribute.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.conditions import Condition, Destination, DestinationSet
from repro.errors import ConditionSerializationError

_COMMON_ATTRIBUTES = (
    "msg_pick_up_time",
    "msg_processing_time",
    "msg_expiry",
    "msg_persistence",
    "msg_priority",
    "evaluation_timeout",
)

_SET_ATTRIBUTES = (
    "min_nr_pick_up",
    "max_nr_pick_up",
    "min_nr_processing",
    "max_nr_processing",
    "anonymous_min_pick_up",
    "anonymous_max_pick_up",
    "anonymous_min_processing",
    "anonymous_max_processing",
)


def condition_to_dict(condition: Condition) -> Dict[str, Any]:
    """Encode a condition tree as a JSON-able dict."""
    common = {
        name: getattr(condition, name)
        for name in _COMMON_ATTRIBUTES
        if getattr(condition, name) is not None
    }
    if isinstance(condition, Destination):
        record: Dict[str, Any] = {"type": "destination", "queue": condition.queue}
        if condition.manager is not None:
            record["manager"] = condition.manager
        if condition.recipient is not None:
            record["recipient"] = condition.recipient
        if condition.copies != 1:
            record["copies"] = condition.copies
        record.update(common)
        return record
    if isinstance(condition, DestinationSet):
        record = {"type": "destination_set"}
        record.update(common)
        for name in _SET_ATTRIBUTES:
            value = getattr(condition, name)
            if value is not None:
                record[name] = value
        record["members"] = [
            condition_to_dict(child) for child in condition.children()
        ]
        return record
    raise ConditionSerializationError(
        f"cannot serialize condition node of type {type(condition).__name__}"
    )


def condition_from_dict(record: Dict[str, Any]) -> Condition:
    """Decode the wire form back into a condition tree."""
    if not isinstance(record, dict):
        raise ConditionSerializationError(f"expected a dict, got {type(record).__name__}")
    node_type = record.get("type")
    common = {
        name: record[name] for name in _COMMON_ATTRIBUTES if name in record
    }
    if node_type == "destination":
        try:
            queue = record["queue"]
        except KeyError:
            raise ConditionSerializationError(
                "destination record missing 'queue'"
            ) from None
        return Destination(
            queue=queue,
            manager=record.get("manager"),
            recipient=record.get("recipient"),
            copies=record.get("copies", 1),
            **common,
        )
    if node_type == "destination_set":
        set_attributes = {
            name: record[name] for name in _SET_ATTRIBUTES if name in record
        }
        members = [
            condition_from_dict(child) for child in record.get("members", [])
        ]
        return DestinationSet(members=members, **set_attributes, **common)
    raise ConditionSerializationError(f"unknown condition type {node_type!r}")
