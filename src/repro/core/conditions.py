"""The condition object model: Condition, Destination, DestinationSet.

Reproduces Figure 3 of the paper.  Conditions follow the *Composite*
design pattern: :class:`Destination` is the leaf (conditions on one
queue/recipient), :class:`DestinationSet` is the composite (conditions on
a set, or hierarchy of sets, of destinations), and :class:`Condition` is
the shared base carrying the attributes and child management interface.

Attribute semantics (paper section 2.2, made precise):

* ``msg_pick_up_time`` — milliseconds, relative to the sender's clock at
  send time, within which a message **read** is required;
* ``msg_processing_time`` — same, for successful **processing** (which the
  middleware equates with commit of the recipient's transactional read);
* a ``Destination`` with either time set is a **required destination**;
* a ``Destination`` without own times under a timed set is **optional** —
  it only feeds the set's tallies;
* set-level times apply to *all* members unless ``min_nr_pick_up`` /
  ``min_nr_processing`` narrow them to a subset; ``max_nr_*`` bound the
  subset from above (more in-time members than the max is a violation);
* ``anonymous_min/max_*`` count distinct recipients that are not named by
  any child destination (e.g. unknown readers of a shared queue);
* ``msg_expiry`` / ``msg_persistence`` / ``msg_priority`` are passed down
  to the generated standard messages, leaf overriding set overriding the
  system default.

The extension attribute ``copies`` on :class:`Destination` (default 1)
controls how many standard messages are placed on the destination queue,
enabling multi-reader shared-queue conditions (several anonymous
recipients can each consume one copy); it is this reproduction's concrete
mechanism behind the paper's "minimum and maximum numbers for anonymous
destinations".
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import ConditionValidationError


def _check_time(name: str, value: Optional[int]) -> Optional[int]:
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ConditionValidationError(
            f"{name} must be a non-negative integer (milliseconds), got {value!r}"
        )
    return value


def _check_count(name: str, value: Optional[int]) -> Optional[int]:
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ConditionValidationError(
            f"{name} must be a non-negative integer, got {value!r}"
        )
    return value


class Condition:
    """Base class of the Composite condition model.

    Not usually instantiated directly — use :class:`Destination` and
    :class:`DestinationSet` (or the fluent helpers in
    :mod:`repro.core.builder`).
    """

    def __init__(
        self,
        msg_pick_up_time: Optional[int] = None,
        msg_processing_time: Optional[int] = None,
        msg_expiry: Optional[int] = None,
        msg_persistence: Optional[bool] = None,
        msg_priority: Optional[int] = None,
        evaluation_timeout: Optional[int] = None,
    ) -> None:
        self.msg_pick_up_time = _check_time("msg_pick_up_time", msg_pick_up_time)
        self.msg_processing_time = _check_time(
            "msg_processing_time", msg_processing_time
        )
        self.msg_expiry = _check_time("msg_expiry", msg_expiry)
        self.msg_persistence = msg_persistence
        if msg_priority is not None and not 0 <= msg_priority <= 9:
            raise ConditionValidationError(
                f"msg_priority must be in 0..9, got {msg_priority!r}"
            )
        self.msg_priority = msg_priority
        #: Only meaningful on the root of a condition tree: the ultimate
        #: bound on evaluation, relative to send time (paper section 2.5).
        self.evaluation_timeout = _check_time(
            "evaluation_timeout", evaluation_timeout
        )

    # -- composite interface ----------------------------------------------------

    def children(self) -> List["Condition"]:
        """Child components; empty for leaves."""
        return []

    def add(self, child: "Condition") -> "Condition":
        """Add a child (composite nodes only)."""
        raise ConditionValidationError(
            f"{type(self).__name__} cannot have children"
        )

    def remove(self, child: "Condition") -> None:
        """Remove a child (composite nodes only)."""
        raise ConditionValidationError(
            f"{type(self).__name__} cannot have children"
        )

    def is_leaf(self) -> bool:
        """True for :class:`Destination` nodes."""
        return not self.children()

    # -- traversal -----------------------------------------------------------------

    def destinations(self) -> Iterator["Destination"]:
        """Yield every leaf destination in the subtree, in definition order."""
        if isinstance(self, Destination):
            yield self
        for child in self.children():
            yield from child.destinations()

    def walk(self) -> Iterator["Condition"]:
        """Yield every node in the subtree, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    # -- queries used by the sender and evaluator -----------------------------------

    def has_own_times(self) -> bool:
        """True if this node itself specifies a time condition."""
        return (
            self.msg_pick_up_time is not None
            or self.msg_processing_time is not None
        )

    def max_deadline(self) -> Optional[int]:
        """Largest relative deadline anywhere in the subtree, or ``None``."""
        deadlines = [
            t
            for node in self.walk()
            for t in (node.msg_pick_up_time, node.msg_processing_time)
            if t is not None
        ]
        return max(deadlines) if deadlines else None

    # -- validation -------------------------------------------------------------------

    def validate(self) -> None:
        """Validate this subtree; raises :class:`ConditionValidationError`."""
        raise NotImplementedError


class Destination(Condition):
    """Leaf condition: requirements on one destination queue.

    Args:
        queue: Destination queue name (required, per the paper: "A
            Destination must specify a unique queue").
        manager: Queue manager hosting the queue; ``None`` means the
            sender's own manager.
        recipient: Optional identification string for a specific final
            recipient ("for example, a defined name such as a userid in a
            namespace").  When set, only acknowledgments from that
            recipient satisfy this destination; when unset, any reader of
            the queue does.
        copies: Number of standard messages to put on the queue (>= 1).
    """

    def __init__(
        self,
        queue: str,
        manager: Optional[str] = None,
        recipient: Optional[str] = None,
        copies: int = 1,
        **attributes: Optional[int],
    ) -> None:
        super().__init__(**attributes)
        if not queue or not isinstance(queue, str):
            raise ConditionValidationError("Destination requires a queue name")
        if not isinstance(copies, int) or copies < 1:
            raise ConditionValidationError("copies must be an integer >= 1")
        self.queue = queue
        self.manager = manager
        self.recipient = recipient
        self.copies = copies

    def is_required(self) -> bool:
        """True if this destination carries its own time conditions."""
        return self.has_own_times()

    def requires_processing(self) -> bool:
        """True if this destination itself demands processing."""
        return self.msg_processing_time is not None

    def validate(self) -> None:
        """Leaf validation.

        Field shapes were enforced at construction.  Any combination of
        pick-up and processing times is satisfiable (a processing deadline
        earlier than the pick-up deadline simply subsumes it, since a
        commit implies a prior read), so nothing further to check.
        """

    def __repr__(self) -> str:
        parts = [f"queue={self.queue!r}"]
        if self.manager:
            parts.append(f"manager={self.manager!r}")
        if self.recipient:
            parts.append(f"recipient={self.recipient!r}")
        if self.copies != 1:
            parts.append(f"copies={self.copies}")
        if self.msg_pick_up_time is not None:
            parts.append(f"pick_up={self.msg_pick_up_time}")
        if self.msg_processing_time is not None:
            parts.append(f"processing={self.msg_processing_time}")
        return f"Destination({', '.join(parts)})"


class DestinationSet(Condition):
    """Composite condition: requirements on a set of destinations.

    Set-level ``msg_pick_up_time`` / ``msg_processing_time`` apply to all
    members unless a ``min_nr_*`` narrows the requirement to a subset;
    ``max_nr_*`` bounds the subset from above.  ``anonymous_*`` attributes
    constrain distinct unnamed recipients observed in the subtree.
    """

    def __init__(
        self,
        members: Optional[List[Condition]] = None,
        min_nr_pick_up: Optional[int] = None,
        max_nr_pick_up: Optional[int] = None,
        min_nr_processing: Optional[int] = None,
        max_nr_processing: Optional[int] = None,
        anonymous_min_pick_up: Optional[int] = None,
        anonymous_max_pick_up: Optional[int] = None,
        anonymous_min_processing: Optional[int] = None,
        anonymous_max_processing: Optional[int] = None,
        **attributes: Optional[int],
    ) -> None:
        super().__init__(**attributes)
        self._members: List[Condition] = []
        self.min_nr_pick_up = _check_count("min_nr_pick_up", min_nr_pick_up)
        self.max_nr_pick_up = _check_count("max_nr_pick_up", max_nr_pick_up)
        self.min_nr_processing = _check_count(
            "min_nr_processing", min_nr_processing
        )
        self.max_nr_processing = _check_count(
            "max_nr_processing", max_nr_processing
        )
        self.anonymous_min_pick_up = _check_count(
            "anonymous_min_pick_up", anonymous_min_pick_up
        )
        self.anonymous_max_pick_up = _check_count(
            "anonymous_max_pick_up", anonymous_max_pick_up
        )
        self.anonymous_min_processing = _check_count(
            "anonymous_min_processing", anonymous_min_processing
        )
        self.anonymous_max_processing = _check_count(
            "anonymous_max_processing", anonymous_max_processing
        )
        for member in members or []:
            self.add(member)

    # -- composite interface ------------------------------------------------------

    def children(self) -> List[Condition]:
        return list(self._members)

    def add(self, child: Condition) -> Condition:
        if not isinstance(child, Condition):
            raise ConditionValidationError(
                f"DestinationSet members must be Condition nodes, got {child!r}"
            )
        if child is self or self in child.walk():
            raise ConditionValidationError("condition trees must not contain cycles")
        self._members.append(child)
        return child

    def remove(self, child: Condition) -> None:
        try:
            self._members.remove(child)
        except ValueError:
            raise ConditionValidationError(
                "child is not a member of this DestinationSet"
            ) from None

    # -- queries ----------------------------------------------------------------------

    def has_anonymous_conditions(self) -> bool:
        """True if any anonymous min/max is set."""
        return any(
            v is not None
            for v in (
                self.anonymous_min_pick_up,
                self.anonymous_max_pick_up,
                self.anonymous_min_processing,
                self.anonymous_max_processing,
            )
        )

    def validate(self) -> None:
        if not self._members and not self.has_anonymous_conditions():
            raise ConditionValidationError(
                "a DestinationSet needs members or anonymous conditions"
            )
        member_count = len(self._members)
        for min_name, max_name in (
            ("min_nr_pick_up", "max_nr_pick_up"),
            ("min_nr_processing", "max_nr_processing"),
            ("anonymous_min_pick_up", "anonymous_max_pick_up"),
            ("anonymous_min_processing", "anonymous_max_processing"),
        ):
            min_value = getattr(self, min_name)
            max_value = getattr(self, max_name)
            if min_value is not None and max_value is not None and min_value > max_value:
                raise ConditionValidationError(
                    f"{min_name} ({min_value}) exceeds {max_name} ({max_value})"
                )
        for name in ("min_nr_pick_up", "min_nr_processing"):
            value = getattr(self, name)
            if value is not None and value > member_count:
                raise ConditionValidationError(
                    f"{name} ({value}) exceeds the member count ({member_count})"
                )
        if (self.min_nr_pick_up is not None or self.max_nr_pick_up is not None) and (
            self.msg_pick_up_time is None
        ):
            raise ConditionValidationError(
                "min/max_nr_pick_up require msg_pick_up_time on the set"
            )
        if (
            self.min_nr_processing is not None
            or self.max_nr_processing is not None
        ) and self.msg_processing_time is None:
            raise ConditionValidationError(
                "min/max_nr_processing require msg_processing_time on the set"
            )
        # Duplicate fully-identical destinations make ack assignment
        # ambiguous; reject them early.
        seen = set()
        for dest in self.destinations():
            key = (dest.manager, dest.queue, dest.recipient)
            if key in seen:
                raise ConditionValidationError(
                    f"duplicate destination {key!r} in one condition tree"
                )
            seen.add(key)
        for child in self._members:
            child.validate()

    def __repr__(self) -> str:
        parts = [f"members={len(self._members)}"]
        if self.msg_pick_up_time is not None:
            parts.append(f"pick_up={self.msg_pick_up_time}")
        if self.msg_processing_time is not None:
            parts.append(f"processing={self.msg_processing_time}")
        if self.min_nr_pick_up is not None:
            parts.append(f"min_pick_up={self.min_nr_pick_up}")
        if self.min_nr_processing is not None:
            parts.append(f"min_processing={self.min_nr_processing}")
        return f"DestinationSet({', '.join(parts)})"
