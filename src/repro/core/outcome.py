"""Outcome records and notifications (paper sections 2.5-2.6).

When the evaluation of a conditional message completes, "an outcome
notification of success or failure is sent to the sender's DS.OUTCOME.Q".
The application correlates outcomes with its send calls via the
conditional message id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List

from repro.core import control
from repro.mq.message import Message


class MessageOutcome(Enum):
    """Final outcome of a conditional message."""

    SUCCESS = "success"
    FAILURE = "failure"


@dataclass(frozen=True)
class OutcomeRecord:
    """The decided outcome of one conditional message."""

    cmid: str
    outcome: MessageOutcome
    decided_at_ms: int
    acks_received: int
    reasons: List[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """True for SUCCESS outcomes."""
        return self.outcome is MessageOutcome.SUCCESS

    def to_message(self) -> Message:
        """Encode as a notification message for DS.OUTCOME.Q."""
        return Message(
            body={
                "cmid": self.cmid,
                "outcome": self.outcome.value,
                "decided_at_ms": self.decided_at_ms,
                "acks_received": self.acks_received,
                "reasons": list(self.reasons),
            },
            correlation_id=self.cmid,
            properties={
                control.PROP_CMID: self.cmid,
                control.PROP_KIND: control.KIND_OUTCOME,
            },
        )

    @classmethod
    def from_message(cls, message: Message) -> "OutcomeRecord":
        """Decode a notification message."""
        body = message.body
        return cls(
            cmid=body["cmid"],
            outcome=MessageOutcome(body["outcome"]),
            decided_at_ms=int(body["decided_at_ms"]),
            acks_received=int(body["acks_received"]),
            reasons=list(body.get("reasons", [])),
        )
