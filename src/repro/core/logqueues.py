"""Persistent log entries for the DS.SLOG.Q and DS.RLOG.Q queues.

The conditional messaging system "creates a log entry for the outgoing
messages and stores the log entry persistently on a local message queue
(DS.SLOG.Q)" and, on the receiver side, "creates a log entry for each
consumed message and puts the log entry on the persistent receiver log
queue (DS.RLOG.Q)" (paper sections 2.3-2.4).

Using *queues* as logs keeps the whole system inside the reliable-
messaging substrate — exactly the paper's design point — and lets the
receiver's compensation logic answer "has the original been consumed?" by
browsing DS.RLOG.Q.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.mq.message import Message

#: Default system queue names (paper, Figure 9).
SENDER_LOG_QUEUE = "DS.SLOG.Q"
ACK_QUEUE = "DS.ACK.Q"
COMPENSATION_QUEUE = "DS.COMP.Q"
OUTCOME_QUEUE = "DS.OUTCOME.Q"
RECEIVER_LOG_QUEUE = "DS.RLOG.Q"


@dataclass(frozen=True)
class SenderLogEntry:
    """One outgoing conditional message, as journaled on DS.SLOG.Q."""

    cmid: str
    send_time_ms: int
    condition: Dict[str, Any]  # wire form (see repro.core.serialize)
    destinations: List[Dict[str, str]]  # [{"manager":..., "queue":...}, ...]
    evaluation_timeout_ms: Optional[int]
    has_compensation: bool

    def to_message(self) -> Message:
        """Encode as a persistent log message."""
        return Message(
            body={
                "cmid": self.cmid,
                "send_time_ms": self.send_time_ms,
                "condition": self.condition,
                "destinations": self.destinations,
                "evaluation_timeout_ms": self.evaluation_timeout_ms,
                "has_compensation": self.has_compensation,
            },
            correlation_id=self.cmid,
        )

    @classmethod
    def from_message(cls, message: Message) -> "SenderLogEntry":
        """Decode a log message back into an entry."""
        body = message.body
        return cls(
            cmid=body["cmid"],
            send_time_ms=int(body["send_time_ms"]),
            condition=body["condition"],
            destinations=list(body["destinations"]),
            evaluation_timeout_ms=body.get("evaluation_timeout_ms"),
            has_compensation=bool(body.get("has_compensation", False)),
        )


@dataclass(frozen=True)
class ReceiverLogEntry:
    """One consumed conditional message, as journaled on DS.RLOG.Q."""

    cmid: str
    original_message_id: str
    queue: str
    recipient: str
    read_time_ms: int
    transactional: bool
    commit_time_ms: Optional[int] = None

    def to_message(self) -> Message:
        """Encode as a persistent log message."""
        return Message(
            body={
                "cmid": self.cmid,
                "original_message_id": self.original_message_id,
                "queue": self.queue,
                "recipient": self.recipient,
                "read_time_ms": self.read_time_ms,
                "transactional": self.transactional,
                "commit_time_ms": self.commit_time_ms,
            },
            correlation_id=self.cmid,
        )

    @classmethod
    def from_message(cls, message: Message) -> "ReceiverLogEntry":
        """Decode a log message back into an entry."""
        body = message.body
        return cls(
            cmid=body["cmid"],
            original_message_id=body["original_message_id"],
            queue=body["queue"],
            recipient=body["recipient"],
            read_time_ms=int(body["read_time_ms"]),
            transactional=bool(body["transactional"]),
            commit_time_ms=body.get("commit_time_ms"),
        )
