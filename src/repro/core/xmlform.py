"""XML representation of conditions (paper section 4.2 future work).

"In our future work, we plan to extend the model for Web environments.
This includes more flexible representation of conditions, use of XML in
messaging, and message delivery through standards such as SOAP."

This module provides that representation: a condition tree serializes to
an XML document whose attribute names follow the paper's own vocabulary
(``MsgPickUpTime``, ``MinNrProcessing``, ...), so the Figure 4 tree reads
as::

    <DestinationSet MsgPickUpTime="172800000">
      <Destination QueueName="Q.R3" Recipient="Receiver3"
                   MsgProcessingTime="604800000"/>
      <DestinationSet MsgProcessingTime="950400000" MinNrProcessing="2">
        <Destination QueueName="Q.R1" Recipient="Receiver1"/>
        <Destination QueueName="Q.R2" Recipient="Receiver2"/>
        <Destination QueueName="Q.R4" Recipient="Receiver4"/>
      </DestinationSet>
    </DestinationSet>

Round-trips are exact for every attribute; parsing validates shape and
types and raises :class:`ConditionSerializationError` on bad documents.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.core.conditions import Condition, Destination, DestinationSet
from repro.errors import ConditionSerializationError

#: (python attribute, XML attribute, type) for attributes shared by all nodes.
_COMMON_ATTRS = (
    ("msg_pick_up_time", "MsgPickUpTime", int),
    ("msg_processing_time", "MsgProcessingTime", int),
    ("msg_expiry", "MsgExpiry", int),
    ("msg_persistence", "MsgPersistence", bool),
    ("msg_priority", "MsgPriority", int),
    ("evaluation_timeout", "EvaluationTimeout", int),
)

_SET_ATTRS = (
    ("min_nr_pick_up", "MinNrPickUp", int),
    ("max_nr_pick_up", "MaxNrPickUp", int),
    ("min_nr_processing", "MinNrProcessing", int),
    ("max_nr_processing", "MaxNrProcessing", int),
    ("anonymous_min_pick_up", "AnonymousMinPickUp", int),
    ("anonymous_max_pick_up", "AnonymousMaxPickUp", int),
    ("anonymous_min_processing", "AnonymousMinProcessing", int),
    ("anonymous_max_processing", "AnonymousMaxProcessing", int),
)


def _set_attrs(element: ET.Element, node: Condition, specs) -> None:
    for py_name, xml_name, kind in specs:
        value = getattr(node, py_name)
        if value is None:
            continue
        if kind is bool:
            element.set(xml_name, "true" if value else "false")
        else:
            element.set(xml_name, str(value))


def _to_element(node: Condition) -> ET.Element:
    if isinstance(node, Destination):
        element = ET.Element("Destination")
        element.set("QueueName", node.queue)
        if node.manager is not None:
            element.set("Manager", node.manager)
        if node.recipient is not None:
            element.set("Recipient", node.recipient)
        if node.copies != 1:
            element.set("Copies", str(node.copies))
        _set_attrs(element, node, _COMMON_ATTRS)
        return element
    if isinstance(node, DestinationSet):
        element = ET.Element("DestinationSet")
        _set_attrs(element, node, _COMMON_ATTRS)
        _set_attrs(element, node, _SET_ATTRS)
        for child in node.children():
            element.append(_to_element(child))
        return element
    raise ConditionSerializationError(
        f"cannot serialize condition node of type {type(node).__name__}"
    )


def condition_to_xml(condition: Condition) -> str:
    """Serialize a condition tree to an XML string."""
    element = _to_element(condition)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def _read_attrs(element: ET.Element, specs, consumed: set) -> dict:
    values = {}
    for py_name, xml_name, kind in specs:
        raw = element.get(xml_name)
        if raw is None:
            continue
        consumed.add(xml_name)
        if kind is bool:
            if raw not in ("true", "false"):
                raise ConditionSerializationError(
                    f"{xml_name} must be 'true' or 'false', got {raw!r}"
                )
            values[py_name] = raw == "true"
        else:
            try:
                values[py_name] = int(raw)
            except ValueError:
                raise ConditionSerializationError(
                    f"{xml_name} must be an integer, got {raw!r}"
                ) from None
    return values


def _from_element(element: ET.Element) -> Condition:
    consumed: set = set()
    if element.tag == "Destination":
        queue = element.get("QueueName")
        if not queue:
            raise ConditionSerializationError(
                "Destination element requires a QueueName attribute"
            )
        consumed.update({"QueueName", "Manager", "Recipient", "Copies"})
        common = _read_attrs(element, _COMMON_ATTRS, consumed)
        copies_raw = element.get("Copies", "1")
        try:
            copies = int(copies_raw)
        except ValueError:
            raise ConditionSerializationError(
                f"Copies must be an integer, got {copies_raw!r}"
            ) from None
        _reject_unknown(element, consumed)
        if len(element):
            raise ConditionSerializationError(
                "Destination elements must not have children"
            )
        return Destination(
            queue=queue,
            manager=element.get("Manager"),
            recipient=element.get("Recipient"),
            copies=copies,
            **common,
        )
    if element.tag == "DestinationSet":
        common = _read_attrs(element, _COMMON_ATTRS, consumed)
        set_attrs = _read_attrs(element, _SET_ATTRS, consumed)
        _reject_unknown(element, consumed)
        members = [_from_element(child) for child in element]
        return DestinationSet(members=members, **set_attrs, **common)
    raise ConditionSerializationError(f"unknown element <{element.tag}>")


def _reject_unknown(element: ET.Element, consumed: set) -> None:
    unknown = set(element.keys()) - consumed
    if unknown:
        raise ConditionSerializationError(
            f"unknown attributes on <{element.tag}>: {sorted(unknown)}"
        )


def condition_from_xml(text: str) -> Condition:
    """Parse an XML condition document back into a condition tree."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConditionSerializationError(f"malformed XML: {exc}") from exc
    return _from_element(root)
