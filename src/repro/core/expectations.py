"""Receiver-side conditions: expectations on *incoming* messages.

The paper defines conditional messaging generally over participant roles:
"conditions can be specified by which the sender of a message may define
delivery failure ... or, conditions can be specified by which a
subscriber may define processing success of a request message"
(section 2).  Its prototype covers the sender role; this module covers
the receiver/subscriber role:

a receiver registers an **expectation** — "a matching message must arrive
on this queue within T milliseconds (and, optionally, at least N of
them)" — and the middleware monitors arrivals and decides an expectation
outcome of success or failure, symmetric to the sender-side evaluation.

Example: an air-traffic controller expects the neighbouring sector's
hand-over message within 60 seconds of a flight's departure; a market
data consumer expects at least 5 price updates per second-long window.

Expectations are local (no wire protocol needed — the middleware already
sees every arrival), which is why the receiver role is so much lighter
than the sender role and why the paper could defer it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional

from repro.errors import ConditionalMessagingError
from repro.mq.manager import QueueManager
from repro.mq.message import Message
from repro.mq.selectors import Selector, compile_selector
from repro.sim.scheduler import EventScheduler, ScheduledEvent

_exp_seq = itertools.count(1)


class ExpectationOutcome(Enum):
    """Decided outcome of an expectation."""

    MET = "met"
    FAILED = "failed"


@dataclass
class Expectation:
    """One registered receiver-side condition."""

    exp_id: str
    queue: str
    selector: Optional[Selector]
    deadline_ms: int           # absolute, on the local clock
    min_count: int
    matched: List[Message] = field(default_factory=list)
    outcome: Optional[ExpectationOutcome] = None
    decided_at_ms: Optional[int] = None
    _timeout_event: Optional[ScheduledEvent] = None
    _timeout_deferred: bool = False

    @property
    def pending(self) -> bool:
        """True while undecided."""
        return self.outcome is None

    @property
    def met(self) -> bool:
        """True once decided MET."""
        return self.outcome is ExpectationOutcome.MET


class ExpectationService:
    """Monitors queues for expected arrivals and decides outcomes.

    Matching observes *arrivals* (queue puts); it does not consume
    messages — the application still reads them through its normal
    (conditional or plain) receive path.
    """

    def __init__(
        self,
        manager: QueueManager,
        scheduler: Optional[EventScheduler] = None,
    ) -> None:
        self.manager = manager
        self.scheduler = scheduler
        self._expectations: List[Expectation] = []
        self._watched: set = set()
        self._callbacks: dict = {}

    # -- registration -----------------------------------------------------------

    def expect(
        self,
        queue: str,
        within_ms: int,
        selector: Optional[str] = None,
        min_count: int = 1,
        on_decided: Optional[Callable[[Expectation], None]] = None,
    ) -> Expectation:
        """Register an expectation on ``queue``.

        Args:
            within_ms: Relative deadline from now.
            selector: Optional JMS selector messages must match.
            min_count: How many matching arrivals are required.
            on_decided: Callback invoked once with the decided expectation.
        """
        if within_ms < 0:
            raise ConditionalMessagingError("within_ms must be >= 0")
        if min_count < 1:
            raise ConditionalMessagingError("min_count must be >= 1")
        self.manager.ensure_queue(queue)
        expectation = Expectation(
            exp_id=f"EXP-{next(_exp_seq):06d}",
            queue=queue,
            selector=compile_selector(selector),
            deadline_ms=self.manager.clock.now_ms() + within_ms,
            min_count=min_count,
        )
        if on_decided is not None:
            self._callbacks[expectation.exp_id] = on_decided
        self._expectations.append(expectation)
        if queue not in self._watched:
            self._watched.add(queue)
            self.manager.queue(queue).subscribe(
                lambda message, queue=queue: self._on_arrival(queue, message)
            )
        # Messages already waiting count as arrivals (the expectation is
        # about having the message by the deadline, however it got there).
        for message in self.manager.browse(queue):
            self._match(expectation, message)
        if expectation.pending and self.scheduler is not None:
            expectation._timeout_event = self.scheduler.call_at(
                expectation.deadline_ms,
                lambda: self._on_timeout(expectation),
                label=f"expectation {expectation.exp_id}",
            )
        return expectation

    def pending_count(self) -> int:
        """Expectations still undecided."""
        return sum(1 for e in self._expectations if e.pending)

    def poll(self) -> int:
        """Decide overdue expectations (scheduler-less mode); returns count."""
        decided = 0
        now = self.manager.clock.now_ms()
        for expectation in self._expectations:
            if expectation.pending and now >= expectation.deadline_ms:
                self._decide(expectation, ExpectationOutcome.FAILED)
                decided += 1
        return decided

    # -- internals -------------------------------------------------------------

    def _on_arrival(self, queue: str, message: Message) -> None:
        for expectation in self._expectations:
            if expectation.pending and expectation.queue == queue:
                self._match(expectation, message)

    def _match(self, expectation: Expectation, message: Message) -> None:
        if expectation.selector is not None and not expectation.selector(message):
            return
        if self.manager.clock.now_ms() > expectation.deadline_ms:
            return  # late arrival; the timeout will fail it
        expectation.matched.append(message)
        if len(expectation.matched) >= expectation.min_count:
            self._decide(expectation, ExpectationOutcome.MET)

    def _on_timeout(self, expectation: Expectation) -> None:
        if not expectation.pending:
            return
        # The deadline is inclusive: an arrival scheduled for this same
        # instant must win the tie.  Defer the failure decision once, by
        # a zero-delay event, so any same-time arrivals (which were
        # enqueued before this recheck) are matched first.
        if not expectation._timeout_deferred and self.scheduler is not None:
            expectation._timeout_deferred = True
            self.scheduler.call_later(
                0,
                lambda: self._on_timeout(expectation),
                label=f"expectation-final {expectation.exp_id}",
            )
            return
        self._decide(expectation, ExpectationOutcome.FAILED)

    def _decide(self, expectation: Expectation, outcome: ExpectationOutcome) -> None:
        expectation.outcome = outcome
        expectation.decided_at_ms = self.manager.clock.now_ms()
        if expectation._timeout_event is not None:
            expectation._timeout_event.cancel()
            expectation._timeout_event = None
        callback = self._callbacks.pop(expectation.exp_id, None)
        if callback is not None:
            callback(expectation)
