"""Receiver-side conditional messaging service (paper section 2.4, Fig. 7).

Final recipients read conditional messages through this service, which:

* generates the **implicit acknowledgments** — an acknowledgment of
  non-transactional read immediately after the get, or an acknowledgment
  of transactional read *bound to the commit* of the receiver's
  transaction (via the demarcation facade ``begin_tx``/``commit_tx``/
  ``abort_tx``);
* routes acknowledgments back to the sender's acknowledgment queue using
  the routing information the sender stamped on the message;
* logs every consumed message to the persistent receiver log queue
  ``DS.RLOG.Q``;
* implements the compensation read rules of section 2.6: an original and
  its compensation that are both still in the queue cancel each other
  out; a compensation whose original *was* consumed (RLOG entry exists)
  is delivered to the application flagged as compensation; any other
  compensation is discarded.

A receiver "can also be a sender of a conditional message" — nothing here
prevents attaching a :class:`~repro.core.service.ConditionalMessagingService`
to the same queue manager.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core import control
from repro.core.acks import Acknowledgment, AckKind, acks_to_message, ack_to_message
from repro.core.logqueues import RECEIVER_LOG_QUEUE, ReceiverLogEntry
from repro.errors import NoTransactionError, TransactionActiveError
from repro.mq.manager import QueueManager
from repro.mq.message import Message
from repro.mq.transactions import MQTransaction
from repro.obs.trace import STAGE_ACK


@dataclass(frozen=True)
class ReceivedMessage:
    """What the application sees for one consumed message."""

    body: Any
    cmid: Optional[str]
    kind: str  # control.KIND_* or "plain" for non-conditional traffic
    queue: str
    read_time_ms: int
    message: Message
    processing_required: bool = False

    @property
    def is_conditional(self) -> bool:
        """True if the message came from a conditional messaging sender."""
        return self.cmid is not None

    @property
    def is_compensation(self) -> bool:
        """True for a delivered compensation message."""
        return self.kind == control.KIND_COMPENSATION

    @property
    def is_success_notification(self) -> bool:
        """True for a success notification."""
        return self.kind == control.KIND_SUCCESS_NOTIFICATION


@dataclass
class ReceiverStats:
    """Counters for tests and benchmark reporting."""

    reads: int = 0
    transactional_reads: int = 0
    acks_sent: int = 0
    cancellations: int = 0
    compensations_delivered: int = 0
    compensations_discarded: int = 0


class ConditionalMessagingReceiver:
    """Receiver-side facade over a queue manager."""

    def __init__(
        self,
        manager: QueueManager,
        recipient_id: Optional[str] = None,
        rlog_queue: str = RECEIVER_LOG_QUEUE,
    ) -> None:
        self.manager = manager
        #: Identity carried in acknowledgments.  Explicit ids let senders
        #: name this recipient in conditions; anonymous receivers get a
        #: generated consumer id (still needed for distinct-recipient
        #: counting of anonymous conditions).
        self.recipient_id = recipient_id or f"anon-{uuid.uuid4().hex[:10]}"
        self.rlog_queue = rlog_queue
        self.manager.ensure_queue(rlog_queue)
        self._transaction: Optional[MQTransaction] = None
        #: Open ack batch: target (ack manager, ack queue) -> pending acks.
        #: ``None`` when no batch is open; see :meth:`ack_batch`.
        self._ack_buffer: Optional[
            Dict[Tuple[str, str], List[Acknowledgment]]
        ] = None
        self.stats = ReceiverStats()

    # -- transaction demarcation facade (paper: begin_tx / commit_tx) ---------

    def begin_tx(self) -> MQTransaction:
        """Begin a messaging transaction for subsequent reads."""
        if self._transaction is not None and self._transaction.active:
            raise TransactionActiveError("a receiver transaction is already active")
        self._transaction = self.manager.begin()
        return self._transaction

    def commit_tx(self) -> None:
        """Commit; acknowledgments for transactional reads fire now."""
        if self._transaction is None or not self._transaction.active:
            raise NoTransactionError("no active receiver transaction")
        transaction = self._transaction
        self._transaction = None
        # A transaction's on_commit hooks fire one PROCESSED ack per
        # transactional read; batching folds them into one ack message
        # per target, so committing an N-read transaction costs one
        # remote put instead of N.
        with self.ack_batch():
            transaction.commit()

    def abort_tx(self) -> None:
        """Roll back; consumed messages return to their queues, no acks."""
        if self._transaction is None or not self._transaction.active:
            raise NoTransactionError("no active receiver transaction")
        transaction = self._transaction
        self._transaction = None
        transaction.rollback()

    @property
    def in_transaction(self) -> bool:
        """True while a receiver transaction is active."""
        return self._transaction is not None and self._transaction.active

    # -- reading ----------------------------------------------------------------

    @contextmanager
    def ack_batch(self) -> Iterator[None]:
        """Coalesce acknowledgments generated inside the block.

        While open, :meth:`_send_ack` buffers acknowledgments instead of
        putting each on the wire; on exit one batched ack message is sent
        per distinct (ack manager, ack queue) target.  With a journaled
        sender-side manager that turns N acks into one journal flush.
        Logical counters (``stats.acks_sent``), per-ack traces, and
        metrics are unaffected — only the wire framing changes.

        Nested batches join the outermost one.  The buffer is flushed
        even if the block raises: buffered acks correspond to reads that
        already happened, so dropping them would leak pending conditions.
        """
        if self._ack_buffer is not None:
            yield
            return
        self._ack_buffer = {}
        try:
            yield
        finally:
            buffered, self._ack_buffer = self._ack_buffer, None
            for (ack_manager, ack_queue), acks in buffered.items():
                self.manager.put_remote(
                    ack_manager, ack_queue, acks_to_message(acks)
                )

    def read_message(
        self, queue_name: str, *, _scan_pairs: bool = True
    ) -> Optional[ReceivedMessage]:
        """Read the next message from ``queue_name`` (the paper's readMessage).

        Returns ``None`` when no deliverable message is available.  The
        special compensation behaviour (cancellation, conditional
        delivery) happens transparently inside this call.
        """
        self.manager.ensure_queue(queue_name)
        if _scan_pairs:
            self._cancel_pairs(queue_name)
        while True:
            message = self.manager.get_wait(
                queue_name, transaction=self._transaction
            )
            if message is None:
                return None
            if not control.is_conditional(message):
                self.stats.reads += 1
                return ReceivedMessage(
                    body=message.body,
                    cmid=None,
                    kind="plain",
                    queue=queue_name,
                    read_time_ms=self.manager.clock.now_ms(),
                    message=message,
                )
            info = control.extract_control(message)
            if info.kind == control.KIND_ORIGINAL:
                return self._deliver_original(queue_name, message, info)
            if info.kind == control.KIND_COMPENSATION:
                delivered = self._handle_compensation(queue_name, message, info)
                if delivered is not None:
                    return delivered
                continue  # discarded; keep reading
            if info.kind == control.KIND_SUCCESS_NOTIFICATION:
                self.stats.reads += 1
                return ReceivedMessage(
                    body=message.body,
                    cmid=info.cmid,
                    kind=info.kind,
                    queue=queue_name,
                    read_time_ms=self.manager.clock.now_ms(),
                    message=message,
                )
            # Unknown conditional kind: deliver as-is rather than lose it.
            self.stats.reads += 1
            return ReceivedMessage(
                body=message.body,
                cmid=info.cmid,
                kind=info.kind,
                queue=queue_name,
                read_time_ms=self.manager.clock.now_ms(),
                message=message,
            )

    def read_all(self, queue_name: str, limit: Optional[int] = None) -> List[ReceivedMessage]:
        """Drain all currently deliverable messages (up to ``limit``).

        The cancellation scan runs once for the whole drain (nothing new
        can land mid-drain in the synchronous loop), and the drain's
        acknowledgments are batched into one ack message per target.
        """
        self.manager.ensure_queue(queue_name)
        received: List[ReceivedMessage] = []
        with self.ack_batch():
            self._cancel_pairs(queue_name)
            while limit is None or len(received) < limit:
                message = self.read_message(queue_name, _scan_pairs=False)
                if message is None:
                    break
                received.append(message)
        return received

    # -- internals: original delivery -----------------------------------------------

    def _deliver_original(
        self, queue_name: str, message: Message, info: control.ControlInfo
    ) -> ReceivedMessage:
        read_time = self.manager.clock.now_ms()
        self.stats.reads += 1
        if self._transaction is not None and self._transaction.active:
            self.stats.transactional_reads += 1
            transaction = self._transaction
            # The receiver log entry joins the receiver's transaction: if
            # the transaction rolls back, the message returns to the queue
            # and the consumption was never logged.
            log_entry = ReceiverLogEntry(
                cmid=info.cmid,
                original_message_id=message.message_id,
                queue=queue_name,
                recipient=self.recipient_id,
                read_time_ms=read_time,
                transactional=True,
            )
            self.manager.put(
                self.rlog_queue, log_entry.to_message(), transaction=transaction
            )
            transaction.on_commit(
                lambda commit_ms: self._send_ack(
                    info,
                    AckKind.PROCESSED,
                    queue_name,
                    read_time,
                    commit_ms,
                    message.message_id,
                )
            )
        else:
            log_entry = ReceiverLogEntry(
                cmid=info.cmid,
                original_message_id=message.message_id,
                queue=queue_name,
                recipient=self.recipient_id,
                read_time_ms=read_time,
                transactional=False,
            )
            self.manager.put(self.rlog_queue, log_entry.to_message())
            self._send_ack(
                info, AckKind.READ, queue_name, read_time, None, message.message_id
            )
        return ReceivedMessage(
            body=message.body,
            cmid=info.cmid,
            kind=control.KIND_ORIGINAL,
            queue=queue_name,
            read_time_ms=read_time,
            message=message,
            processing_required=info.processing_required,
        )

    def _send_ack(
        self,
        info: control.ControlInfo,
        kind: AckKind,
        queue_name: str,
        read_time_ms: int,
        commit_time_ms: Optional[int],
        original_message_id: str,
    ) -> None:
        # Acknowledge against the destination the SENDER addressed (from
        # the control properties), not the physical queue consumed from:
        # for plain queues they coincide, but a topic's fan-out copies are
        # consumed from per-subscription queues while the condition names
        # the topic.
        addressed_queue = info.dest_queue or queue_name
        addressed_manager = info.dest_manager or self.manager.name
        ack = Acknowledgment(
            cmid=info.cmid,
            kind=kind,
            queue=addressed_queue,
            manager=addressed_manager,
            recipient=self.recipient_id,
            read_time_ms=read_time_ms,
            commit_time_ms=commit_time_ms,
            original_message_id=original_message_id,
        )
        if self._ack_buffer is not None:
            self._ack_buffer.setdefault(
                (info.ack_manager, info.ack_queue), []
            ).append(ack)
        else:
            self.manager.put_remote(
                info.ack_manager, info.ack_queue, ack_to_message(ack)
            )
        self.stats.acks_sent += 1
        tracer = self.manager.tracer
        if tracer.enabled:
            tracer.emit(
                STAGE_ACK,
                at_ms=self.manager.clock.now_ms(),
                cmid=info.cmid,
                manager=self.manager.name,
                queue=addressed_queue,
                message_id=original_message_id,
                kind=kind.value,
                recipient=self.recipient_id,
            )
        if self.manager.metrics is not None:
            self.manager.metrics.incr(f"acks_sent.{self.manager.name}")

    # -- internals: compensation rules -------------------------------------------------

    def _cancel_pairs(self, queue_name: str) -> int:
        """Cancel original/compensation pairs still co-resident in the queue.

        "In case that both the original message and the compensation
        message are in the queue ... both messages cancel each other out
        and will be deleted from the queue."
        """
        queue = self.manager.queue(queue_name)
        originals: Dict[str, List[str]] = {}
        compensations: Dict[str, List[str]] = {}
        for message in queue.browse():
            if not control.is_conditional(message):
                continue
            kind = control.message_kind(message)
            cmid = str(message.get_property(control.PROP_CMID))
            if kind == control.KIND_ORIGINAL:
                originals.setdefault(cmid, []).append(message.message_id)
            elif kind == control.KIND_COMPENSATION:
                compensations.setdefault(cmid, []).append(message.message_id)
        cancelled = 0
        for cmid, comp_ids in compensations.items():
            orig_ids = originals.get(cmid, [])
            for comp_id, orig_id in zip(comp_ids, orig_ids):
                # Journaled removals: a recovered receiver must not
                # resurrect a cancelled original/compensation pair.
                self.manager.get_by_id(queue_name, comp_id)
                self.manager.get_by_id(queue_name, orig_id)
                cancelled += 1
        self.stats.cancellations += cancelled
        return cancelled

    def _consumed_here(self, cmid: str) -> bool:
        """True if DS.RLOG.Q records a consumption of ``cmid``."""
        for message in self.manager.browse(self.rlog_queue):
            body = message.body
            if isinstance(body, dict) and body.get("cmid") == cmid:
                return True
        return False

    def _handle_compensation(
        self, queue_name: str, message: Message, info: control.ControlInfo
    ) -> Optional[ReceivedMessage]:
        """Apply the delivery rule for a compensation we just consumed.

        The co-resident case was handled by :meth:`_cancel_pairs` before
        the get; reaching here means no matching original remains in the
        queue.  Deliver only if the original was consumed locally.
        """
        if self._consumed_here(info.cmid):
            self.stats.compensations_delivered += 1
            return ReceivedMessage(
                body=message.body,
                cmid=info.cmid,
                kind=control.KIND_COMPENSATION,
                queue=queue_name,
                read_time_ms=self.manager.clock.now_ms(),
                message=message,
            )
        self.stats.compensations_discarded += 1
        return None
