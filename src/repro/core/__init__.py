"""Conditional messaging — the paper's primary contribution.

Conditional messaging is *"messaging in which messages are associated with
application-defined conditions on message delivery and message processing
in order to define and determine a messaging outcome of success or
failure"* (paper section 2).

The package follows the paper's structure:

* :mod:`repro.core.conditions` — the Composite object model of
  ``Condition`` / ``Destination`` / ``DestinationSet`` (section 2.2);
* :mod:`repro.core.sender` — associating conditions with messages and
  generating the standard messages that implement a conditional message
  (section 2.3);
* :mod:`repro.core.receiver` + :mod:`repro.core.acks` — the receiver-side
  service producing implicit acknowledgments of receipt and of
  transactional processing (section 2.4);
* :mod:`repro.core.evaluation` + :mod:`repro.core.satisfaction` — the
  evaluation manager deciding success or failure (section 2.5);
* :mod:`repro.core.outcome` + :mod:`repro.core.compensation` — success
  notifications and compensation messages (section 2.6);
* :mod:`repro.core.service` — the sender-side facade wiring the system
  queues ``DS.SLOG.Q``, ``DS.ACK.Q``, ``DS.COMP.Q``, ``DS.OUTCOME.Q``
  together (section 2.7, Figure 9).
"""

from repro.core.conditions import Condition, Destination, DestinationSet
from repro.core.builder import destination, destination_set
from repro.core.serialize import condition_from_dict, condition_to_dict
from repro.core.xmlform import condition_from_xml, condition_to_xml
from repro.core.satisfaction import EvalState, evaluate_condition
from repro.core.expectations import ExpectationOutcome, ExpectationService
from repro.core.outcome import MessageOutcome, OutcomeRecord
from repro.core.service import ConditionalMessagingService
from repro.core.receiver import ConditionalMessagingReceiver, ReceivedMessage
from repro.core.templates import ConditionTemplates

__all__ = [
    "Condition",
    "Destination",
    "DestinationSet",
    "destination",
    "destination_set",
    "condition_to_dict",
    "condition_from_dict",
    "condition_to_xml",
    "condition_from_xml",
    "EvalState",
    "evaluate_condition",
    "MessageOutcome",
    "OutcomeRecord",
    "ConditionalMessagingService",
    "ConditionalMessagingReceiver",
    "ReceivedMessage",
    "ConditionTemplates",
    "ExpectationService",
    "ExpectationOutcome",
]
