"""Pure condition-satisfaction algorithm (paper section 2.5).

Given a condition tree, the set of acknowledgments received so far, the
send timestamp, and the current time, decide whether the conditional
message is SATISFIED, VIOLATED, or still PENDING.  The algorithm is pure
(no I/O, no clocks of its own), which makes it property-testable and lets
the evaluation manager re-run it on every acknowledgment arrival and at
the evaluation timeout.

Semantics (fixed in DESIGN.md section 4):

* **Ack assignment.**  Acknowledgments are first assigned to leaf
  destinations: a leaf matching on (manager, queue) and — when the leaf
  names a recipient — on recipient id claims up to ``copies``
  acknowledgments, earliest read first.  Unclaimed acknowledgments from
  recipients not named anywhere in a subtree are that subtree's
  *anonymous* acknowledgments.
* **Leaf aspect state** against a deadline: SATISFIED as soon as one
  assigned ack is in time; VIOLATED when every copy has been consumed and
  none can ever satisfy the aspect (all late, or — for processing — all
  non-transactional); PENDING otherwise.  Note that mere passage of the
  deadline does *not* violate: a conforming acknowledgment (timestamped
  by the recipient before the deadline) may still be in transit, which is
  exactly why the paper gives the evaluation its own timeout.
* **Set tallies**: a set's time applies to all members unless
  ``min_nr_*`` is given; ``max_nr_*`` bounds in-time members from above.
  Child sets count toward a parent tally using their own time if they
  declare one, the parent's otherwise — recursively.
* **Finality**: at the evaluation timeout (or when a subtree can receive
  no further acknowledgments because every copy is consumed), PENDING
  resolves: tallies succeed iff min <= in-time count <= max.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.acks import Acknowledgment
from repro.core.conditions import Condition, Destination, DestinationSet
from repro.errors import EvaluationError
from repro.mq.pubsub import is_topic_destination


class EvalState(Enum):
    """Tri-state evaluation result."""

    SATISFIED = "satisfied"
    VIOLATED = "violated"
    PENDING = "pending"


def combine_and(states: Sequence[EvalState]) -> EvalState:
    """AND-combination: VIOLATED dominates, then PENDING, else SATISFIED."""
    if any(s is EvalState.VIOLATED for s in states):
        return EvalState.VIOLATED
    if any(s is EvalState.PENDING for s in states):
        return EvalState.PENDING
    return EvalState.SATISFIED


@dataclass
class EvaluationResult:
    """Outcome of one evaluation pass."""

    state: EvalState
    #: Human-readable explanations for VIOLATED/PENDING contributors.
    reasons: List[str] = field(default_factory=list)

    def is_final(self) -> bool:
        """True when the state can no longer change."""
        return self.state is not EvalState.PENDING


# ---------------------------------------------------------------------------
# Ack assignment
# ---------------------------------------------------------------------------


@dataclass
class AckAssignment:
    """Result of distributing acknowledgments over a condition tree."""

    #: per-leaf assigned acknowledgments (earliest read first)
    by_leaf: Dict[int, List[Acknowledgment]]
    #: acknowledgments claimed by no leaf, keyed by (manager, queue)
    unclaimed: Dict[Tuple[str, str], List[Acknowledgment]]
    #: every recipient name that appears on some leaf
    named_recipients: Set[str]
    #: per-node leaf lists, memoized for the duration of one evaluation
    #: pass (the tree is walked per aspect per set node; re-listing the
    #: same subtree's leaves each time is pure overhead)
    _subtree_leaves: Dict[int, List[Destination]] = field(default_factory=dict)

    def leaf_acks(self, leaf: Destination) -> List[Acknowledgment]:
        """Acknowledgments assigned to ``leaf``."""
        return self.by_leaf.get(id(leaf), [])

    def subtree_leaves(self, node: Condition) -> List[Destination]:
        """Leaves of ``node``'s subtree (memoized per evaluation pass)."""
        cached = self._subtree_leaves.get(id(node))
        if cached is None:
            cached = list(node.destinations())
            self._subtree_leaves[id(node)] = cached
        return cached


def assign_acks(
    root: Condition,
    acks: Sequence[Acknowledgment],
    default_manager: str,
) -> AckAssignment:
    """Distribute ``acks`` over the leaves of ``root``.

    Leaves naming a recipient have priority over recipient-less leaves on
    the same queue, so a named recipient's acknowledgment is never
    miscounted as anonymous.
    """
    leaves = list(root.destinations())
    by_key_named: Dict[Tuple[str, str, str], Destination] = {}
    by_key_open: Dict[Tuple[str, str], Destination] = {}
    for leaf in leaves:
        manager = leaf.manager or default_manager
        if leaf.recipient is not None:
            by_key_named[(manager, leaf.queue, leaf.recipient)] = leaf
        else:
            by_key_open[(manager, leaf.queue)] = leaf

    assigned: Dict[int, List[Acknowledgment]] = {id(leaf): [] for leaf in leaves}
    unclaimed: Dict[Tuple[str, str], List[Acknowledgment]] = {}

    def claim_cap(leaf: Destination) -> Optional[int]:
        # A topic is consumable by arbitrarily many subscribers, and the
        # leaf means "any subscriber": it absorbs every ack on its queue
        # (anonymous tallies still see them — see _anonymous_aspect_state).
        return None if is_topic_destination(leaf.queue) else leaf.copies

    ordered = sorted(acks, key=lambda a: (a.read_time_ms, a.original_message_id))
    for ack in ordered:
        named_leaf = by_key_named.get((ack.manager, ack.queue, ack.recipient))
        if named_leaf is not None:
            bucket = assigned[id(named_leaf)]
            cap = claim_cap(named_leaf)
            if cap is None or len(bucket) < cap:
                bucket.append(ack)
                continue
        open_leaf = by_key_open.get((ack.manager, ack.queue))
        if open_leaf is not None and named_leaf is None:
            bucket = assigned[id(open_leaf)]
            cap = claim_cap(open_leaf)
            if cap is None or len(bucket) < cap:
                bucket.append(ack)
                continue
        unclaimed.setdefault((ack.manager, ack.queue), []).append(ack)

    named_recipients = {
        leaf.recipient for leaf in leaves if leaf.recipient is not None
    }
    assignment = AckAssignment(
        by_leaf=assigned, unclaimed=unclaimed, named_recipients=named_recipients
    )
    assignment._subtree_leaves[id(root)] = leaves
    return assignment


# ---------------------------------------------------------------------------
# Leaf evaluation
# ---------------------------------------------------------------------------


def _ack_timestamp(ack: Acknowledgment, aspect: str) -> Optional[int]:
    if aspect == "pick_up":
        return ack.read_time_ms
    if aspect == "processing":
        return ack.processing_time_ms()
    raise EvaluationError(f"unknown aspect {aspect!r}")


def _leaf_aspect_state(
    leaf: Destination,
    acks: List[Acknowledgment],
    aspect: str,
    deadline_abs_ms: Optional[int],
    final: bool,
) -> EvalState:
    """State of "this leaf did <aspect> by <deadline>"."""
    in_time = False
    dead = 0
    for ack in acks:
        ts = _ack_timestamp(ack, aspect)
        if ts is None:
            # For processing: a non-transactional read consumed a copy that
            # can never yield a processing acknowledgment.
            dead += 1
            continue
        if deadline_abs_ms is None or ts <= deadline_abs_ms:
            in_time = True
        else:
            dead += 1
    if in_time:
        return EvalState.SATISFIED
    if not is_topic_destination(leaf.queue) and dead >= leaf.copies:
        # Every physical copy was consumed without satisfying the aspect:
        # early violation.  (Topics have no copy bound — any number of
        # subscribers may yet acknowledge — so only finality resolves.)
        return EvalState.VIOLATED
    if final:
        return EvalState.VIOLATED
    return EvalState.PENDING


def _leaf_own_state(
    leaf: Destination,
    assignment: AckAssignment,
    send_time_ms: int,
    final: bool,
    reasons: List[str],
    label: str,
) -> EvalState:
    """A leaf's own (required-destination) conditions."""
    states: List[EvalState] = []
    acks = assignment.leaf_acks(leaf)
    if leaf.msg_pick_up_time is not None:
        state = _leaf_aspect_state(
            leaf, acks, "pick_up", send_time_ms + leaf.msg_pick_up_time, final
        )
        if state is not EvalState.SATISFIED:
            reasons.append(
                f"{label}: pick-up within {leaf.msg_pick_up_time}ms is"
                f" {state.value}"
            )
        states.append(state)
    if leaf.msg_processing_time is not None:
        state = _leaf_aspect_state(
            leaf,
            acks,
            "processing",
            send_time_ms + leaf.msg_processing_time,
            final,
        )
        if state is not EvalState.SATISFIED:
            reasons.append(
                f"{label}: processing within {leaf.msg_processing_time}ms is"
                f" {state.value}"
            )
        states.append(state)
    if not states:
        return EvalState.SATISFIED  # optional destination: no own requirement
    return combine_and(states)


# ---------------------------------------------------------------------------
# Set evaluation
# ---------------------------------------------------------------------------


def _subtree_exhausted(node: Condition, assignment: AckAssignment, default_manager: str) -> bool:
    """True when no further acknowledgment can arrive for this subtree.

    A topic destination can be consumed by arbitrarily many subscribers
    (the sender cannot know the subscription count), so any topic leaf in
    the subtree makes exhaustion undecidable — only the evaluation
    timeout resolves it.
    """
    total_copies = 0
    total_acks = 0
    queues: Set[Tuple[str, str]] = set()
    for leaf in assignment.subtree_leaves(node):
        if is_topic_destination(leaf.queue):
            return False
        total_copies += leaf.copies
        total_acks += len(assignment.leaf_acks(leaf))
        queues.add((leaf.manager or default_manager, leaf.queue))
    for key in queues:
        total_acks += len(assignment.unclaimed.get(key, []))
    return total_copies > 0 and total_acks >= total_copies


def _child_counts_state(
    child: Condition,
    assignment: AckAssignment,
    aspect: str,
    inherited_deadline_abs: Optional[int],
    send_time_ms: int,
    final: bool,
    default_manager: str,
) -> EvalState:
    """Whether ``child`` counts toward a parent tally for ``aspect``."""
    if isinstance(child, Destination):
        return _leaf_aspect_state(
            child,
            assignment.leaf_acks(child),
            aspect,
            inherited_deadline_abs,
            final,
        )
    if isinstance(child, DestinationSet):
        own_rel = (
            child.msg_pick_up_time
            if aspect == "pick_up"
            else child.msg_processing_time
        )
        deadline = (
            send_time_ms + own_rel if own_rel is not None else inherited_deadline_abs
        )
        return _set_aspect_tally(
            child,
            assignment,
            aspect,
            deadline,
            send_time_ms,
            final,
            default_manager,
            reasons=None,
            label=None,
        )
    raise EvaluationError(f"unknown condition node {type(child).__name__}")


def _set_aspect_tally(
    node: DestinationSet,
    assignment: AckAssignment,
    aspect: str,
    deadline_abs: Optional[int],
    send_time_ms: int,
    final: bool,
    default_manager: str,
    reasons: Optional[List[str]],
    label: Optional[str],
) -> EvalState:
    """Tally state: did enough (min..max) members do ``aspect`` in time?"""
    children = node.children()
    if aspect == "pick_up":
        need = node.min_nr_pick_up
        cap = node.max_nr_pick_up
    else:
        need = node.min_nr_processing
        cap = node.max_nr_processing
    required = need if need is not None else len(children)

    local_final = final or _subtree_exhausted(node, assignment, default_manager)
    satisfied = pending = 0
    for child in children:
        state = _child_counts_state(
            child,
            assignment,
            aspect,
            deadline_abs,
            send_time_ms,
            local_final,
            default_manager,
        )
        if state is EvalState.SATISFIED:
            satisfied += 1
        elif state is EvalState.PENDING:
            pending += 1

    result: EvalState
    if cap is not None and satisfied > cap:
        result = EvalState.VIOLATED
    elif satisfied >= required and (cap is None or pending == 0):
        result = EvalState.SATISFIED
    elif local_final:
        result = (
            EvalState.SATISFIED
            if satisfied >= required and (cap is None or satisfied <= cap)
            else EvalState.VIOLATED
        )
    elif satisfied + pending < required:
        result = EvalState.VIOLATED
    else:
        result = EvalState.PENDING

    if reasons is not None and label is not None and result is not EvalState.SATISFIED:
        cap_text = f"..{cap}" if cap is not None else ""
        reasons.append(
            f"{label}: {aspect} tally {satisfied}/{required}{cap_text}"
            f" is {result.value}"
        )
    return result


def _anonymous_aspect_state(
    node: DestinationSet,
    assignment: AckAssignment,
    aspect: str,
    deadline_abs: Optional[int],
    final: bool,
    default_manager: str,
    reasons: List[str],
    label: str,
) -> EvalState:
    """Anonymous-recipient tally: distinct unnamed readers in the subtree."""
    if aspect == "pick_up":
        amin, amax = node.anonymous_min_pick_up, node.anonymous_max_pick_up
    else:
        amin, amax = node.anonymous_min_processing, node.anonymous_max_processing
    if amin is None and amax is None:
        return EvalState.SATISFIED

    queues = {
        (leaf.manager or default_manager, leaf.queue)
        for leaf in assignment.subtree_leaves(node)
    }
    recipients: Set[str] = set()
    for key in queues:
        for ack in assignment.unclaimed.get(key, []):
            if ack.recipient in assignment.named_recipients:
                continue
            ts = _ack_timestamp(ack, aspect)
            if ts is None:
                continue
            if deadline_abs is None or ts <= deadline_abs:
                recipients.add(ack.recipient)
    # Recipient-less leaves absorb the first ack on their queue; that
    # reader is anonymous too and must count here.
    for leaf in assignment.subtree_leaves(node):
        if leaf.recipient is not None:
            continue
        for ack in assignment.leaf_acks(leaf):
            if ack.recipient in assignment.named_recipients:
                continue
            ts = _ack_timestamp(ack, aspect)
            if ts is None:
                continue
            if deadline_abs is None or ts <= deadline_abs:
                recipients.add(ack.recipient)

    count = len(recipients)
    local_final = final or _subtree_exhausted(node, assignment, default_manager)
    result: EvalState
    if amax is not None and count > amax:
        result = EvalState.VIOLATED
    elif (amin is None or count >= amin) and (amax is None or local_final):
        result = EvalState.SATISFIED
    elif local_final:
        result = (
            EvalState.SATISFIED
            if (amin is None or count >= amin) and (amax is None or count <= amax)
            else EvalState.VIOLATED
        )
    else:
        result = EvalState.PENDING

    if result is not EvalState.SATISFIED:
        reasons.append(
            f"{label}: anonymous {aspect} count {count}"
            f" (need {amin if amin is not None else 0}"
            f"{f'..{amax}' if amax is not None else ''}) is {result.value}"
        )
    return result


def _node_state(
    node: Condition,
    assignment: AckAssignment,
    send_time_ms: int,
    final: bool,
    default_manager: str,
    reasons: List[str],
    path: str,
) -> EvalState:
    """Overall state of a node: own tallies AND every child's own state."""
    if isinstance(node, Destination):
        return _leaf_own_state(
            node, assignment, send_time_ms, final, reasons, path
        )
    if not isinstance(node, DestinationSet):
        raise EvaluationError(f"unknown condition node {type(node).__name__}")

    states: List[EvalState] = []
    if node.msg_pick_up_time is not None:
        states.append(
            _set_aspect_tally(
                node,
                assignment,
                "pick_up",
                send_time_ms + node.msg_pick_up_time,
                send_time_ms,
                final,
                default_manager,
                reasons,
                path,
            )
        )
    if node.msg_processing_time is not None:
        states.append(
            _set_aspect_tally(
                node,
                assignment,
                "processing",
                send_time_ms + node.msg_processing_time,
                send_time_ms,
                final,
                default_manager,
                reasons,
                path,
            )
        )
    for aspect in ("pick_up", "processing"):
        rel = (
            node.msg_pick_up_time if aspect == "pick_up" else node.msg_processing_time
        )
        states.append(
            _anonymous_aspect_state(
                node,
                assignment,
                aspect,
                send_time_ms + rel if rel is not None else None,
                final,
                default_manager,
                reasons,
                path,
            )
        )
    for index, child in enumerate(node.children()):
        child_path = f"{path}.{index}" if path else str(index)
        if isinstance(child, Destination):
            child_path = f"{path}/{child.queue}"
        states.append(
            _node_state(
                child,
                assignment,
                send_time_ms,
                final,
                default_manager,
                reasons,
                child_path,
            )
        )
    return combine_and(states)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def evaluate_condition(
    root: Condition,
    acks: Sequence[Acknowledgment],
    send_time_ms: int,
    now_ms: int,
    evaluation_timeout_ms: Optional[int] = None,
    default_manager: str = "",
) -> EvaluationResult:
    """Evaluate a condition tree against the acknowledgments seen so far.

    Args:
        root: The condition associated with the message.
        acks: Every acknowledgment received for the conditional message.
        send_time_ms: Absolute send timestamp (the paper's reference point
            for all relative times).
        now_ms: Current time on the sender's clock.
        evaluation_timeout_ms: Relative evaluation bound; when ``now_ms``
            reaches ``send_time_ms + evaluation_timeout_ms``, PENDING
            resolves to a final answer.
        default_manager: Manager name substituted for leaves that did not
            specify one.

    Returns:
        An :class:`EvaluationResult` whose state is final (SATISFIED or
        VIOLATED) or PENDING together with diagnostic reasons.
    """
    final = (
        evaluation_timeout_ms is not None
        and now_ms >= send_time_ms + evaluation_timeout_ms
    )
    assignment = assign_acks(root, acks, default_manager)
    reasons: List[str] = []
    state = _node_state(
        root, assignment, send_time_ms, final, default_manager, reasons, "root"
    )
    if state is EvalState.PENDING and final:
        # Defensive: with final=True the node evaluation should already
        # have resolved, but guarantee finality regardless.
        state = EvalState.VIOLATED
        reasons.append("evaluation timeout reached while still pending")
    return EvaluationResult(state=state, reasons=reasons)
