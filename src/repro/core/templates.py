"""Condition templates: reusable, parameterizable condition definitions.

Paper §2.3: "The separation of condition definition and condition
representation from message creation allows conditions to be reused for
different messages.  Specific conditions may apply to all messages
processed by a messaging application, to groups of messages processed by
the application, or (most generally) to individual messages."

A :class:`ConditionTemplates` registry holds named factories; a template
is registered once (often at application start, or loaded from its wire
form) and instantiated per send with the parameters that vary —
deadlines, recipients, fan-out::

    templates = ConditionTemplates()
    templates.register(
        "notify-team",
        lambda team, window: destination_set(
            *[destination(f"Q.{m}", recipient=m) for m in team],
            msg_pick_up_time=window,
        ),
    )
    condition = templates.build("notify-team", team=["R1", "R2"], window=DAY)

Static (parameterless) conditions can be registered directly; the
registry clones them per use by round-tripping through the wire form, so
one template instance can never be aliased across in-flight messages.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Union

from repro.core.conditions import Condition
from repro.core.serialize import condition_from_dict, condition_to_dict
from repro.errors import ConditionError

TemplateFactory = Callable[..., Condition]


class ConditionTemplates:
    """Named registry of condition templates."""

    def __init__(self) -> None:
        self._factories: Dict[str, TemplateFactory] = {}

    def register(
        self, name: str, template: Union[Condition, TemplateFactory]
    ) -> None:
        """Register a template under ``name``.

        ``template`` is either a factory callable (parameterized
        templates) or a finished :class:`Condition` (static templates —
        stored by value via the wire form, so later mutation of the
        original object does not affect the template).
        """
        if not name:
            raise ConditionError("template name must be non-empty")
        if name in self._factories:
            raise ConditionError(f"template already registered: {name!r}")
        if isinstance(template, Condition):
            template.validate()
            frozen = condition_to_dict(template)
            self._factories[name] = lambda: condition_from_dict(frozen)
        elif callable(template):
            self._factories[name] = template
        else:
            raise ConditionError(
                f"template must be a Condition or a factory, got {template!r}"
            )

    def build(self, name: str, **params: Any) -> Condition:
        """Instantiate a template; the result is validated before return."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise ConditionError(f"unknown template: {name!r}") from None
        condition = factory(**params)
        if not isinstance(condition, Condition):
            raise ConditionError(
                f"template {name!r} produced {type(condition).__name__},"
                " not a Condition"
            )
        condition.validate()
        return condition

    def names(self) -> List[str]:
        """Registered template names."""
        return list(self._factories)

    def unregister(self, name: str) -> None:
        """Remove a template (missing names are tolerated)."""
        self._factories.pop(name, None)
