"""Conditional-message id generation and correlation helpers.

Every conditional message has a unique id (``CM-...``) that the system
uses to correlate (paper sections 2.3-2.6):

* the N generated standard messages with the conditional message,
* incoming acknowledgments on the shared ``DS.ACK.Q`` with the right
  evaluation,
* staged compensation messages with the original they undo,
* outcome notifications with the application's send call.
"""

from __future__ import annotations

import itertools
import uuid

_cm_seq = itertools.count(1)


def new_conditional_message_id() -> str:
    """Return a unique conditional message id."""
    return f"CM-{next(_cm_seq):08d}-{uuid.uuid4().hex[:12]}"


def is_conditional_message_id(value: str) -> bool:
    """Cheap shape check used when decoding control properties."""
    return isinstance(value, str) and value.startswith("CM-")
