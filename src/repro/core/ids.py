"""Conditional-message id generation and correlation helpers.

Every conditional message has a unique id (``CM-...``) that the system
uses to correlate (paper sections 2.3-2.6):

* the N generated standard messages with the conditional message,
* incoming acknowledgments on the shared ``DS.ACK.Q`` with the right
  evaluation,
* staged compensation messages with the original they undo,
* outcome notifications with the application's send call.

By default the random fragment comes from :func:`uuid.uuid4` and the
sequence is process-global — globally unique, but different on every run.
Deterministic simulations (chaos replay, the bounded model checker) need
*reproducible* ids instead: replaying one episode in a fresh process must
allocate byte-identical ids, or flight-recorder timelines and canonical
state hashes diverge between runs that are semantically identical.
:func:`deterministic_cmids` swaps the generator for a seeded one scoped
to a ``with`` block (see also
:func:`repro.mq.message.deterministic_message_ids` and the combined
:func:`repro.sim.determinism.deterministic_ids`).
"""

from __future__ import annotations

import itertools
import random
import uuid
from contextlib import contextmanager
from typing import Callable, Iterator

_cm_seq = itertools.count(1)


def _default_cmid() -> str:
    return f"CM-{next(_cm_seq):08d}-{uuid.uuid4().hex[:12]}"


#: The active generator; swapped by :func:`deterministic_cmids`.
_generator: Callable[[], str] = _default_cmid


def new_conditional_message_id() -> str:
    """Return a unique conditional message id."""
    return _generator()


@contextmanager
def deterministic_cmids(seed: int) -> Iterator[None]:
    """Allocate seed-derived conditional message ids inside the block.

    The sequence restarts at 1 and the random fragment is drawn from
    ``random.Random(seed)``, so two runs of the same (deterministic)
    workload under the same seed allocate identical ids — in this
    process or a fresh one.  Scopes nest; the innermost wins.  Not
    thread-safe (the simulation is single-threaded by design).
    """
    global _generator
    rng = random.Random(seed ^ 0x5EED_C41D)
    seq = itertools.count(1)

    def _deterministic() -> str:
        return f"CM-{next(seq):08d}-{rng.getrandbits(48):012x}"

    previous = _generator
    _generator = _deterministic
    try:
        yield
    finally:
        _generator = previous


def is_conditional_message_id(value: str) -> bool:
    """Cheap shape check used when decoding control properties."""
    return isinstance(value, str) and value.startswith("CM-")
