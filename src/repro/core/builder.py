"""Fluent helpers for building condition trees.

The raw classes in :mod:`repro.core.conditions` mirror the paper's object
model; these helpers make application code read like the paper's prose::

    cond = destination_set(
        destination("Q.R3", recipient="Receiver3",
                    msg_processing_time=WEEK_BEFORE_MEETING),
        destination_set(
            destination("Q.R1", recipient="Receiver1"),
            destination("Q.R2", recipient="Receiver2"),
            destination("Q.R4", recipient="Receiver4"),
            msg_processing_time=THREE_DAYS_BEFORE_MEETING,
            min_nr_processing=2,
        ),
        msg_pick_up_time=TWO_DAYS,
    )

which is exactly the destSetRoot/destSet1 structure of the paper's
Figure 4.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.conditions import Condition, Destination, DestinationSet


def destination(
    queue: str,
    manager: Optional[str] = None,
    recipient: Optional[str] = None,
    copies: int = 1,
    msg_pick_up_time: Optional[int] = None,
    msg_processing_time: Optional[int] = None,
    msg_expiry: Optional[int] = None,
    msg_persistence: Optional[bool] = None,
    msg_priority: Optional[int] = None,
) -> Destination:
    """Build a leaf :class:`~repro.core.conditions.Destination`."""
    return Destination(
        queue=queue,
        manager=manager,
        recipient=recipient,
        copies=copies,
        msg_pick_up_time=msg_pick_up_time,
        msg_processing_time=msg_processing_time,
        msg_expiry=msg_expiry,
        msg_persistence=msg_persistence,
        msg_priority=msg_priority,
    )


def destination_set(
    *members: Union[Condition, Destination, DestinationSet],
    msg_pick_up_time: Optional[int] = None,
    msg_processing_time: Optional[int] = None,
    min_nr_pick_up: Optional[int] = None,
    max_nr_pick_up: Optional[int] = None,
    min_nr_processing: Optional[int] = None,
    max_nr_processing: Optional[int] = None,
    anonymous_min_pick_up: Optional[int] = None,
    anonymous_max_pick_up: Optional[int] = None,
    anonymous_min_processing: Optional[int] = None,
    anonymous_max_processing: Optional[int] = None,
    msg_expiry: Optional[int] = None,
    msg_persistence: Optional[bool] = None,
    msg_priority: Optional[int] = None,
    evaluation_timeout: Optional[int] = None,
) -> DestinationSet:
    """Build a :class:`~repro.core.conditions.DestinationSet` from members."""
    return DestinationSet(
        members=list(members),
        msg_pick_up_time=msg_pick_up_time,
        msg_processing_time=msg_processing_time,
        min_nr_pick_up=min_nr_pick_up,
        max_nr_pick_up=max_nr_pick_up,
        min_nr_processing=min_nr_processing,
        max_nr_processing=max_nr_processing,
        anonymous_min_pick_up=anonymous_min_pick_up,
        anonymous_max_pick_up=anonymous_max_pick_up,
        anonymous_min_processing=anonymous_min_processing,
        anonymous_max_processing=anonymous_max_processing,
        msg_expiry=msg_expiry,
        msg_persistence=msg_persistence,
        msg_priority=msg_priority,
        evaluation_timeout=evaluation_timeout,
    )
