"""The evaluation manager (paper section 2.5).

"The conditional messaging system comprises an evaluation manager that
reads incoming acknowledgment messages of the designated acknowledgment
queue and interprets them accordingly."  The manager:

* keeps one :class:`EvaluationRecord` per in-flight conditional message;
* drains ``DS.ACK.Q`` (it subscribes to the queue, so acknowledgments are
  processed the moment the middleware delivers them), sorting
  acknowledgments to the right record by conditional message id;
* re-runs the pure satisfaction algorithm on every acknowledgment and at
  the per-message evaluation timeout;
* on a final state, emits an :class:`~repro.core.outcome.OutcomeRecord`
  through a callback (the service turns it into outcome notifications and
  outcome actions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.acks import Acknowledgment, ack_from_message
from repro.core.conditions import Condition
from repro.core.outcome import MessageOutcome, OutcomeRecord
from repro.core.satisfaction import EvalState, evaluate_condition
from repro.errors import UnknownConditionalMessageError
from repro.mq.manager import QueueManager
from repro.obs.trace import STAGE_EVALUATE, STAGE_OUTCOME
from repro.sim.scheduler import EventScheduler, ScheduledEvent


@dataclass
class EvaluationRecord:
    """Evaluation state for one in-flight conditional message."""

    cmid: str
    condition: Condition
    send_time_ms: int
    evaluation_timeout_ms: Optional[int]
    acks: List[Acknowledgment] = field(default_factory=list)
    decided: Optional[OutcomeRecord] = None
    timeout_event: Optional[ScheduledEvent] = None

    @property
    def pending(self) -> bool:
        """True while no final outcome has been decided."""
        return self.decided is None


@dataclass
class EvaluationStats:
    """Counters for benchmark reporting."""

    acks_processed: int = 0
    evaluations_run: int = 0
    decided_success: int = 0
    decided_failure: int = 0
    decided_by_timeout: int = 0


class EvaluationManager:
    """Correlates acknowledgments and decides message outcomes."""

    def __init__(
        self,
        manager: QueueManager,
        ack_queue: str,
        on_decided: Callable[[OutcomeRecord], None],
        scheduler: Optional[EventScheduler] = None,
        push: bool = True,
    ) -> None:
        """``push=True`` (default) subscribes to the ack queue so every
        arriving acknowledgment is evaluated immediately; ``push=False``
        leaves acks parked until :meth:`pump`/:meth:`poll` — the polled
        deployment mode the ablation benchmarks compare against."""
        self.manager = manager
        self.ack_queue = ack_queue
        self.scheduler = scheduler
        self._on_decided = on_decided
        self._records: Dict[str, EvaluationRecord] = {}
        self.stats = EvaluationStats()
        manager.ensure_queue(ack_queue)
        if push:
            manager.queue(ack_queue).subscribe(lambda _message: self.pump())

    # -- registration ------------------------------------------------------------

    def register(
        self,
        cmid: str,
        condition: Condition,
        send_time_ms: int,
        evaluation_timeout_ms: Optional[int],
    ) -> EvaluationRecord:
        """Start evaluating a newly sent conditional message.

        The first evaluation runs immediately: a condition with no
        requirements is SATISFIED at send time.
        """
        record = EvaluationRecord(
            cmid=cmid,
            condition=condition,
            send_time_ms=send_time_ms,
            evaluation_timeout_ms=evaluation_timeout_ms,
        )
        self._records[cmid] = record
        if evaluation_timeout_ms is not None and self.scheduler is not None:
            record.timeout_event = self.scheduler.call_at(
                send_time_ms + evaluation_timeout_ms,
                lambda: self._on_timeout(cmid),
                label=f"eval-timeout {cmid}",
            )
        self.evaluate(cmid)
        return record

    def record(self, cmid: str) -> EvaluationRecord:
        """Look up a record; raises for unknown ids."""
        try:
            return self._records[cmid]
        except KeyError:
            raise UnknownConditionalMessageError(cmid) from None

    def pending_count(self) -> int:
        """Number of messages still awaiting an outcome."""
        return sum(1 for r in self._records.values() if r.pending)

    # -- ack intake -----------------------------------------------------------------

    def pump(self) -> int:
        """Drain the acknowledgment queue; returns acks processed.

        Unknown conditional message ids (e.g. acks arriving after recovery
        lost the record, or stray traffic) are dropped after counting —
        the queue must not wedge on them.
        """
        processed = 0
        while True:
            message = self.manager.get_wait(self.ack_queue)
            if message is None:
                return processed
            ack = ack_from_message(message)
            processed += 1
            self.stats.acks_processed += 1
            record = self._records.get(ack.cmid)
            if record is None or not record.pending:
                continue
            record.acks.append(ack)
            if self.manager.metrics is not None:
                # Send -> acknowledgment processed at the sender; the gap
                # the paper's monitoring machinery exists to observe.
                self.manager.metrics.observe(
                    "ack_latency_ms",
                    self.manager.clock.now_ms() - record.send_time_ms,
                )
            self.evaluate(ack.cmid)

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self, cmid: str) -> EvalState:
        """Re-run the satisfaction algorithm for one message."""
        record = self.record(cmid)
        if not record.pending:
            return (
                EvalState.SATISFIED
                if record.decided.outcome is MessageOutcome.SUCCESS
                else EvalState.VIOLATED
            )
        self.stats.evaluations_run += 1
        result = evaluate_condition(
            record.condition,
            record.acks,
            record.send_time_ms,
            self.manager.clock.now_ms(),
            evaluation_timeout_ms=record.evaluation_timeout_ms,
            default_manager=self.manager.name,
        )
        tracer = self.manager.tracer
        if tracer.enabled:
            tracer.emit(
                STAGE_EVALUATE,
                at_ms=self.manager.clock.now_ms(),
                cmid=cmid,
                manager=self.manager.name,
                state=result.state.name,
                acks=len(record.acks),
            )
        if result.is_final():
            self._decide(record, result.state, result.reasons)
        return result.state

    def poll(self) -> int:
        """Evaluate every pending record against the current clock.

        Needed in scheduler-less (synchronous) deployments, where no event
        fires at the evaluation timeout; returns how many records were
        decided by this poll.
        """
        decided = 0
        for cmid in list(self._records):
            record = self._records[cmid]
            if record.pending:
                self.evaluate(cmid)
                if not record.pending:
                    decided += 1
        return decided

    def force_decide(
        self, cmid: str, outcome: MessageOutcome, reason: str
    ) -> Optional[OutcomeRecord]:
        """Terminate an evaluation with a dictated outcome.

        Used by the Dependency-Sphere layer: aborting a sphere fails its
        still-pending messages immediately rather than waiting for their
        deadlines.  Returns the record, or ``None`` if already decided.
        """
        record = self.record(cmid)
        if not record.pending:
            return None
        state = (
            EvalState.SATISFIED
            if outcome is MessageOutcome.SUCCESS
            else EvalState.VIOLATED
        )
        self._decide(record, state, [reason])
        return record.decided

    def _on_timeout(self, cmid: str) -> None:
        record = self._records.get(cmid)
        if record is None or not record.pending:
            return
        self.stats.decided_by_timeout += 1
        self.evaluate(cmid)

    def _decide(
        self, record: EvaluationRecord, state: EvalState, reasons: List[str]
    ) -> None:
        outcome = (
            MessageOutcome.SUCCESS
            if state is EvalState.SATISFIED
            else MessageOutcome.FAILURE
        )
        record.decided = OutcomeRecord(
            cmid=record.cmid,
            outcome=outcome,
            decided_at_ms=self.manager.clock.now_ms(),
            acks_received=len(record.acks),
            reasons=list(reasons),
        )
        if record.timeout_event is not None:
            record.timeout_event.cancel()
            record.timeout_event = None
        if outcome is MessageOutcome.SUCCESS:
            self.stats.decided_success += 1
        else:
            self.stats.decided_failure += 1
        tracer = self.manager.tracer
        if tracer.enabled:
            tracer.emit(
                STAGE_OUTCOME,
                at_ms=record.decided.decided_at_ms,
                cmid=record.cmid,
                manager=self.manager.name,
                outcome=outcome.name,
                acks=len(record.acks),
            )
        if self.manager.metrics is not None:
            self.manager.metrics.observe(
                "decision_latency_ms",
                record.decided.decided_at_ms - record.send_time_ms,
            )
            self.manager.metrics.incr(f"outcomes.{outcome.name.lower()}")
        self._on_decided(record.decided)
