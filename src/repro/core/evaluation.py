"""The evaluation manager (paper section 2.5).

"The conditional messaging system comprises an evaluation manager that
reads incoming acknowledgment messages of the designated acknowledgment
queue and interprets them accordingly."  The manager:

* keeps one :class:`EvaluationRecord` per in-flight conditional message;
* drains ``DS.ACK.Q`` (it subscribes to the queue, so acknowledgments are
  processed the moment the middleware delivers them), sorting
  acknowledgments to the right record by conditional message id;
* re-runs the pure satisfaction algorithm on every acknowledgment and at
  the per-message evaluation timeout;
* on a final state, emits an :class:`~repro.core.outcome.OutcomeRecord`
  through a callback (the service turns it into outcome notifications and
  outcome actions).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.acks import Acknowledgment, acks_from_message
from repro.core.conditions import Condition
from repro.core.outcome import MessageOutcome, OutcomeRecord
from repro.core.satisfaction import EvalState, evaluate_condition
from repro.errors import UnknownConditionalMessageError
from repro.mq.manager import QueueManager
from repro.obs.trace import STAGE_EVALUATE, STAGE_OUTCOME
from repro.sim.scheduler import EventScheduler, ScheduledEvent


@dataclass
class EvaluationRecord:
    """Evaluation state for one in-flight conditional message."""

    cmid: str
    condition: Condition
    send_time_ms: int
    evaluation_timeout_ms: Optional[int]
    acks: List[Acknowledgment] = field(default_factory=list)
    decided: Optional[OutcomeRecord] = None
    timeout_event: Optional[ScheduledEvent] = None
    #: Registration generation stamped by the manager.  Timeout-wheel
    #: entries and scheduler timeout events carry the generation of the
    #: record they were armed for, so a stale entry surviving a cmid
    #: re-registration (e.g. recovery re-driving DS.SLOG.Q) can never
    #: fire against the newer record.
    generation: int = 0

    @property
    def pending(self) -> bool:
        """True while no final outcome has been decided."""
        return self.decided is None


@dataclass
class EvaluationStats:
    """Counters for benchmark reporting."""

    acks_processed: int = 0
    evaluations_run: int = 0
    decided_success: int = 0
    decided_failure: int = 0
    decided_by_timeout: int = 0


class EvaluationManager:
    """Correlates acknowledgments and decides message outcomes."""

    def __init__(
        self,
        manager: QueueManager,
        ack_queue: str,
        on_decided: Callable[[OutcomeRecord], None],
        scheduler: Optional[EventScheduler] = None,
        push: bool = True,
        pump_coalesce_ms: Optional[int] = None,
    ) -> None:
        """``push=True`` (default) subscribes to the ack queue so every
        arriving acknowledgment is evaluated immediately; ``push=False``
        leaves acks parked until :meth:`pump`/:meth:`poll` — the polled
        deployment mode the ablation benchmarks compare against.

        ``pump_coalesce_ms`` (push mode, scheduler required) defers the
        drain to a single scheduled event that many ms after the first
        arrival instead of pumping synchronously per put: acknowledgments
        from several receivers landing inside the window are drained —
        and each touched condition evaluated — once.  Decisions shift by
        at most the window (virtual ms); acks sit journaled in the ack
        queue meanwhile, so a crash inside the window loses nothing —
        recovery re-pumps them."""
        self.manager = manager
        self.ack_queue = ack_queue
        self.scheduler = scheduler
        self._on_decided = on_decided
        self._records: Dict[str, EvaluationRecord] = {}
        #: maintained count of undecided records — pending_count() is O(1)
        self._pending = 0
        #: monotonic registration counter backing EvaluationRecord.generation
        self._generations = 0
        #: timeout wheel: min-heap of (evaluation deadline, cmid,
        #: generation).  Between acknowledgment arrivals a record's
        #: evaluation result can only change when the clock crosses its
        #: evaluation deadline (the satisfaction algorithm consults "now"
        #: exactly there), so polling pops due deadlines instead of
        #: rescanning every in-flight record: per tick O(log n) per
        #: decided record, O(1) when nothing is due.  Entries for
        #: already-decided records — and entries whose generation no
        #: longer matches the record's (the cmid was re-registered, e.g.
        #: by recovery) — are skipped lazily.
        self._timeout_wheel: List[Tuple[int, str, int]] = []
        self.stats = EvaluationStats()
        manager.ensure_queue(ack_queue)
        if push:
            if pump_coalesce_ms is not None and scheduler is not None:
                pending = {"scheduled": False}

                def _coalesced_pump() -> None:
                    pending["scheduled"] = False
                    self.pump()

                def _on_ack_put(_message: object) -> None:
                    if not pending["scheduled"]:
                        pending["scheduled"] = True
                        scheduler.call_later(
                            pump_coalesce_ms, _coalesced_pump, label="ack-pump"
                        )

                manager.queue(ack_queue).subscribe(_on_ack_put)
            else:
                manager.queue(ack_queue).subscribe(lambda _message: self.pump())

    # -- registration ------------------------------------------------------------

    def register(
        self,
        cmid: str,
        condition: Condition,
        send_time_ms: int,
        evaluation_timeout_ms: Optional[int],
    ) -> EvaluationRecord:
        """Start evaluating a newly sent conditional message.

        The first evaluation runs immediately: a condition with no
        requirements is SATISFIED at send time.
        """
        self._generations += 1
        record = EvaluationRecord(
            cmid=cmid,
            condition=condition,
            send_time_ms=send_time_ms,
            evaluation_timeout_ms=evaluation_timeout_ms,
            generation=self._generations,
        )
        old = self._records.get(cmid)
        if old is not None:
            # Re-registration of a known id (recovery re-driving the
            # sender log, or a defensive replace): the old record's armed
            # timeout must never fire against the new record — cancel its
            # scheduler event; its wheel entries die by generation check.
            if old.timeout_event is not None:
                old.timeout_event.cancel()
                old.timeout_event = None
            if old.pending:
                self._pending -= 1
        self._records[cmid] = record
        self._pending += 1
        if evaluation_timeout_ms is not None:
            deadline = send_time_ms + evaluation_timeout_ms
            if self.scheduler is not None:
                record.timeout_event = self.scheduler.call_at(
                    deadline,
                    lambda generation=record.generation: self._on_timeout(
                        cmid, generation
                    ),
                    label=f"eval-timeout {cmid}",
                )
            # The wheel backs poll() in scheduler-less deployments; keeping
            # it maintained in both modes costs a few machine words per
            # record and keeps poll() correct even when a scheduler exists
            # but is not being driven.
            heapq.heappush(
                self._timeout_wheel, (deadline, cmid, record.generation)
            )
            self._compact_wheel_if_bloated()
        self.evaluate(cmid)
        return record

    def record(self, cmid: str) -> EvaluationRecord:
        """Look up a record; raises for unknown ids."""
        try:
            return self._records[cmid]
        except KeyError:
            raise UnknownConditionalMessageError(cmid) from None

    def pending_count(self) -> int:
        """Number of messages still awaiting an outcome (O(1), maintained)."""
        return self._pending

    # -- ack intake -----------------------------------------------------------------

    def pump(self) -> int:
        """Drain the acknowledgment queue; returns acks processed.

        Unknown conditional message ids (e.g. acks arriving after recovery
        lost the record, or stray traffic) are dropped after counting —
        the queue must not wedge on them.
        """
        processed = 0
        # Every message touched by this drain, evaluated once after the
        # drain's acks are all appended.  The whole drain happens at one
        # virtual instant, so per-ack re-evaluation of the same condition
        # could not decide anything the single evaluation does not.
        touched: Dict[str, None] = {}
        # One drain = one commit group: the journaled gets from the ack
        # queue and every record written by the decisions they trigger
        # flush together instead of once per ack message.
        with self.manager.group_commit():
            while True:
                message = self.manager.get_wait(self.ack_queue)
                if message is None:
                    break
                for ack in acks_from_message(message):
                    processed += 1
                    self.stats.acks_processed += 1
                    record = self._records.get(ack.cmid)
                    if record is None or not record.pending:
                        continue
                    record.acks.append(ack)
                    touched[ack.cmid] = None
                    if self.manager.metrics is not None:
                        # Send -> acknowledgment processed at the sender;
                        # the gap the paper's monitoring machinery exists
                        # to observe.
                        self.manager.metrics.observe(
                            "ack_latency_ms",
                            self.manager.clock.now_ms() - record.send_time_ms,
                        )
            for cmid in touched:
                self.evaluate(cmid)
        return processed

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self, cmid: str) -> EvalState:
        """Re-run the satisfaction algorithm for one message."""
        record = self.record(cmid)
        if not record.pending:
            return (
                EvalState.SATISFIED
                if record.decided.outcome is MessageOutcome.SUCCESS
                else EvalState.VIOLATED
            )
        self.stats.evaluations_run += 1
        result = evaluate_condition(
            record.condition,
            record.acks,
            record.send_time_ms,
            self.manager.clock.now_ms(),
            evaluation_timeout_ms=record.evaluation_timeout_ms,
            default_manager=self.manager.name,
        )
        tracer = self.manager.tracer
        if tracer.enabled:
            tracer.emit(
                STAGE_EVALUATE,
                at_ms=self.manager.clock.now_ms(),
                cmid=cmid,
                manager=self.manager.name,
                state=result.state.name,
                acks=len(record.acks),
            )
        if result.is_final():
            self._decide(record, result.state, result.reasons)
        return result.state

    def poll(self) -> int:
        """Decide every record whose evaluation deadline has passed.

        Needed in scheduler-less (synchronous) deployments, where no event
        fires at the evaluation timeout; returns how many records were
        decided by this poll.

        Cost is O(log n) per due record popped from the timeout wheel and
        O(1) when nothing is due — not a rescan of every in-flight record.
        That is equivalent to the old full scan: between acknowledgment
        arrivals (each of which triggers :meth:`evaluate` directly), the
        satisfaction algorithm's result only depends on the clock through
        the ``now >= send_time + evaluation_timeout`` finality rule, so a
        record with no due evaluation deadline cannot change state here.
        """
        now = self.manager.clock.now_ms()
        wheel = self._timeout_wheel
        decided = 0
        while wheel and wheel[0][0] <= now:
            _deadline, cmid, generation = heapq.heappop(wheel)
            record = self._records.get(cmid)
            if record is None or not record.pending:
                continue  # decided earlier (ack/force/scheduler) — stale entry
            if record.generation != generation:
                # The cmid was re-registered since this entry was armed
                # (recovery re-drive): the entry belongs to a dead record
                # whose deadline says nothing about the live one.
                continue
            self.evaluate(cmid)
            # At or past its evaluation deadline the satisfaction
            # algorithm always resolves PENDING, so the record is decided
            # now; nothing is ever re-queued.
            if not record.pending:
                decided += 1
        return decided

    def force_decide(
        self, cmid: str, outcome: MessageOutcome, reason: str
    ) -> Optional[OutcomeRecord]:
        """Terminate an evaluation with a dictated outcome.

        Used by the Dependency-Sphere layer: aborting a sphere fails its
        still-pending messages immediately rather than waiting for their
        deadlines.  Returns the record, or ``None`` if already decided.
        """
        record = self.record(cmid)
        if not record.pending:
            return None
        state = (
            EvalState.SATISFIED
            if outcome is MessageOutcome.SUCCESS
            else EvalState.VIOLATED
        )
        self._decide(record, state, [reason])
        return record.decided

    def _compact_wheel_if_bloated(self) -> None:
        """Drop stale wheel entries when they dominate the heap.

        Records decided by acknowledgments leave their wheel entry behind
        (lazy deletion); a long-running sender would otherwise accumulate
        one stale tuple per decided message.  Rebuilding when stale
        entries outnumber live ones 4:1 keeps the wheel O(pending) sized
        at amortized O(1) cost per registration.
        """
        wheel = self._timeout_wheel
        if len(wheel) <= 64 or len(wheel) <= 4 * self._pending:
            return
        live = [
            entry
            for entry in wheel
            if (record := self._records.get(entry[1])) is not None
            and record.pending
            and record.generation == entry[2]
        ]
        heapq.heapify(live)
        self._timeout_wheel = live

    def _on_timeout(self, cmid: str, generation: Optional[int] = None) -> None:
        record = self._records.get(cmid)
        if record is None or not record.pending:
            return
        if generation is not None and record.generation != generation:
            return  # armed for an older registration of this cmid
        self.stats.decided_by_timeout += 1
        self.evaluate(cmid)

    def _decide(
        self, record: EvaluationRecord, state: EvalState, reasons: List[str]
    ) -> None:
        outcome = (
            MessageOutcome.SUCCESS
            if state is EvalState.SATISFIED
            else MessageOutcome.FAILURE
        )
        record.decided = OutcomeRecord(
            cmid=record.cmid,
            outcome=outcome,
            decided_at_ms=self.manager.clock.now_ms(),
            acks_received=len(record.acks),
            reasons=list(reasons),
        )
        self._pending -= 1
        if record.timeout_event is not None:
            record.timeout_event.cancel()
            record.timeout_event = None
        if outcome is MessageOutcome.SUCCESS:
            self.stats.decided_success += 1
        else:
            self.stats.decided_failure += 1
        tracer = self.manager.tracer
        if tracer.enabled:
            tracer.emit(
                STAGE_OUTCOME,
                at_ms=record.decided.decided_at_ms,
                cmid=record.cmid,
                manager=self.manager.name,
                outcome=outcome.name,
                acks=len(record.acks),
            )
        if self.manager.metrics is not None:
            self.manager.metrics.observe(
                "decision_latency_ms",
                record.decided.decided_at_ms - record.send_time_ms,
            )
            self.manager.metrics.incr(f"outcomes.{outcome.name.lower()}")
        self._on_decided(record.decided)
