"""Internal acknowledgment messages (paper section 2.4).

Two kinds of implicit acknowledgments exist:

* **READ** — a successful *non-transactional* read of a message by a final
  recipient (carries the read timestamp);
* **PROCESSED** — a successful *transactional* read, generated only when
  the recipient's transaction commits (carries both the read timestamp
  and the commit timestamp; the paper equates transactional-read commit
  with processing success).

"There will never be two acknowledgments generated for one receiver
reading one message" — the receiver-side system emits exactly one of the
two kinds per consumed message.

Acknowledgments travel as ordinary (standard) messages back to the
sender-side ``DS.ACK.Q``, so the monitoring channel enjoys the same
reliable delivery as the primary messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence

from repro.core import control
from repro.errors import ConditionalMessagingError
from repro.mq.message import Message


class AckKind(Enum):
    """The two acknowledgment kinds of section 2.4."""

    READ = "read"
    PROCESSED = "processed"


@dataclass(frozen=True)
class Acknowledgment:
    """Decoded acknowledgment content.

    Attributes:
        cmid: Conditional message being acknowledged.
        kind: READ (non-transactional) or PROCESSED (transactional commit).
        queue: Destination queue the message was consumed from.
        manager: Queue manager hosting that queue.
        recipient: Identity of the final recipient (application-declared,
            or a generated consumer id for anonymous readers).
        read_time_ms: When the message was read from the queue, on the
            shared simulation clock.
        commit_time_ms: When the recipient's transaction committed
            (PROCESSED acks only).
        original_message_id: Standard-message id that was consumed.
    """

    cmid: str
    kind: AckKind
    queue: str
    manager: str
    recipient: str
    read_time_ms: int
    commit_time_ms: Optional[int]
    original_message_id: str

    def processing_time_ms(self) -> Optional[int]:
        """Commit timestamp for PROCESSED acks, else ``None``."""
        return self.commit_time_ms if self.kind is AckKind.PROCESSED else None


def _ack_body(ack: Acknowledgment) -> Dict[str, Any]:
    return {
        "cmid": ack.cmid,
        "kind": ack.kind.value,
        "queue": ack.queue,
        "manager": ack.manager,
        "recipient": ack.recipient,
        "read_time_ms": ack.read_time_ms,
        "commit_time_ms": ack.commit_time_ms,
        "original_message_id": ack.original_message_id,
    }


def ack_to_message(ack: Acknowledgment) -> Message:
    """Encode an acknowledgment as a standard message for the ack queue.

    Acknowledgments are persistent and high priority: losing one would
    turn a satisfied condition into a spurious failure, and the evaluation
    manager wants them promptly.
    """
    return Message(
        body=_ack_body(ack),
        correlation_id=ack.cmid,
        priority=7,
        properties={
            control.PROP_CMID: ack.cmid,
            control.PROP_KIND: control.KIND_ACK,
        },
    )


def acks_to_message(acks: Sequence[Acknowledgment]) -> Message:
    """Encode one or more acknowledgments as ONE ack-queue message.

    A receiver draining a queue generates one acknowledgment per consumed
    message; sending each as its own remote put costs a journal flush per
    ack on the receiving manager.  Batching folds a drain's worth of acks
    into a single wire message (body ``{"batch": [...]}``) so the ack
    channel costs one put — and one flush — per drain, not per message.

    A single acknowledgment keeps the legacy single-ack wire shape so
    mixed-version peers and existing journals decode unchanged.
    """
    if not acks:
        raise ConditionalMessagingError("acks_to_message requires at least one ack")
    if len(acks) == 1:
        return ack_to_message(acks[0])
    return Message(
        body={"batch": [_ack_body(ack) for ack in acks]},
        priority=7,
        properties={control.PROP_KIND: control.KIND_ACK},
    )


def _ack_from_body(body: Dict[str, Any], message: Message) -> Acknowledgment:
    try:
        return Acknowledgment(
            cmid=body["cmid"],
            kind=AckKind(body["kind"]),
            queue=body["queue"],
            manager=body["manager"],
            recipient=body["recipient"],
            read_time_ms=int(body["read_time_ms"]),
            commit_time_ms=(
                int(body["commit_time_ms"])
                if body.get("commit_time_ms") is not None
                else None
            ),
            original_message_id=body.get("original_message_id", ""),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConditionalMessagingError(
            f"malformed acknowledgment message {message.message_id}: {exc}"
        ) from exc


def ack_from_message(message: Message) -> Acknowledgment:
    """Decode a single-ack acknowledgment message; raises on malformed content."""
    body = message.body
    if not isinstance(body, dict):
        raise ConditionalMessagingError(
            f"acknowledgment message {message.message_id} has a non-dict body"
        )
    return _ack_from_body(body, message)


def acks_from_message(message: Message) -> List[Acknowledgment]:
    """Decode an acknowledgment message, batched or single-form.

    Accepts both wire shapes produced by :func:`acks_to_message`: a
    ``{"batch": [...]}`` body yields each member in order; anything else
    is decoded as a legacy single acknowledgment.
    """
    body = message.body
    if isinstance(body, dict) and "batch" in body:
        members = body["batch"]
        if not isinstance(members, list) or not members:
            raise ConditionalMessagingError(
                f"acknowledgment message {message.message_id} has a malformed batch"
            )
        decoded = []
        for member in members:
            if not isinstance(member, dict):
                raise ConditionalMessagingError(
                    f"acknowledgment message {message.message_id} has a"
                    " non-dict batch member"
                )
            decoded.append(_ack_from_body(member, message))
        return decoded
    return [ack_from_message(message)]
