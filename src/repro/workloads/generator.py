"""Seeded random workload generation for parameter sweeps.

A :class:`WorkloadGenerator` produces batches of conditional sends with
randomized condition shapes and randomized (but reproducible) receiver
behaviour, so benchmarks can exercise the evaluation manager and the
compensation path at scale without hand-writing every scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.core.builder import destination, destination_set
from repro.core.conditions import DestinationSet
from repro.workloads.receivers import ReceiverMode, ReceiverScript, ScriptedReceiver
from repro.workloads.scenarios import Testbed


@dataclass
class WorkloadSpec:
    """Parameters for one generated workload.

    Attributes:
        messages: Number of conditional messages to send.
        fan_out: Destinations per message (cycled over the testbed's
            receivers).
        pick_up_window_ms: Deadline on every destination set.
        processing_fraction: Fraction of messages that additionally demand
            processing (min ``fan_out`` transactional commits).
        on_time_probability: Chance a receiver reacts inside the window.
        abort_probability: Chance a processing receiver rolls back.
        inter_send_gap_ms: Virtual time between sends.
        seed: Workload RNG seed (fully reproducible).
    """

    messages: int = 100
    fan_out: int = 3
    pick_up_window_ms: int = 10_000
    processing_fraction: float = 0.0
    processing_window_ms: int = 30_000
    on_time_probability: float = 1.0
    abort_probability: float = 0.0
    inter_send_gap_ms: int = 100
    seed: int = 0


@dataclass
class WorkloadResult:
    """What a generated workload produced.

    ``expected_success`` is a *naive* estimate assuming each scripted
    receiver reads exactly the message it was scripted for.  Receivers
    shared across overlapping messages can legitimately pick up each
    other's messages from their queue (acknowledgments correlate by the
    consumed message's id), so the realized success count may differ;
    treat the estimate as a sanity anchor, not an exact expectation.
    """

    cmids: List[str] = field(default_factory=list)
    sent: int = 0
    expected_success: int = 0


class WorkloadGenerator:
    """Drives a testbed with a randomized conditional-messaging workload."""

    def __init__(self, testbed: Testbed, spec: WorkloadSpec) -> None:
        self.testbed = testbed
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._receiver_names = list(testbed.receivers)
        if spec.fan_out > len(self._receiver_names):
            raise ValueError(
                f"fan_out {spec.fan_out} exceeds testbed receivers"
                f" ({len(self._receiver_names)})"
            )

    def build_condition(self, index: int) -> DestinationSet:
        """Condition for the ``index``-th message (deterministic)."""
        names = self._pick_receivers(index)
        wants_processing = self._rng.random() < self.spec.processing_fraction
        leaves = [
            destination(
                self.testbed.queue_of(name),
                manager=f"QM.{name}",
                recipient=name,
            )
            for name in names
        ]
        if wants_processing:
            return destination_set(
                *leaves,
                msg_pick_up_time=self.spec.pick_up_window_ms,
                msg_processing_time=self.spec.processing_window_ms,
            )
        return destination_set(
            *leaves, msg_pick_up_time=self.spec.pick_up_window_ms
        )

    def run(self) -> WorkloadResult:
        """Schedule every send and receiver reaction; returns bookkeeping.

        The caller advances the testbed (``run_all``) afterwards and then
        inspects outcomes through the service.
        """
        result = WorkloadResult()
        for index in range(self.spec.messages):
            send_at = index * self.spec.inter_send_gap_ms
            names = self._pick_receivers(index)
            condition = self.build_condition(index)
            wants_processing = condition.msg_processing_time is not None
            all_on_time = True
            scripts: List[ScriptedReceiver] = []
            for name in names:
                on_time = self._rng.random() < self.spec.on_time_probability
                aborts = (
                    wants_processing
                    and self._rng.random() < self.spec.abort_probability
                )
                if not on_time or aborts:
                    all_on_time = False
                # On-time reactions land inside the first half of the
                # window, leaving headroom for channel latency so the
                # *read timestamp* is reliably within the deadline.
                react = (
                    self._rng.randint(1, max(self.spec.pick_up_window_ms // 2, 1))
                    if on_time
                    else self.spec.pick_up_window_ms * 2
                )
                mode = (
                    ReceiverMode.PROCESS_ABORT
                    if aborts
                    else (
                        ReceiverMode.PROCESS_COMMIT
                        if wants_processing
                        else ReceiverMode.READ
                    )
                )
                scripts.append(
                    ScriptedReceiver(
                        self.testbed.receiver(name),
                        self.testbed.scheduler,
                        ReceiverScript(
                            queue=self.testbed.queue_of(name),
                            react_after_ms=react,
                            mode=mode,
                            process_ms=min(1_000, self.spec.processing_window_ms),
                        ),
                    )
                )

            def fire(
                condition=condition, scripts=scripts, result=result
            ) -> None:
                cmid = self.testbed.service.send_message(
                    {"workload": True}, condition
                )
                result.cmids.append(cmid)
                result.sent += 1
                for script in scripts:
                    script.start()

            self.testbed.scheduler.call_later(send_at, fire)
            if all_on_time:
                result.expected_success += 1
        return result

    def _pick_receivers(self, index: int) -> List[str]:
        start = (index * self.spec.fan_out) % len(self._receiver_names)
        names = [
            self._receiver_names[(start + i) % len(self._receiver_names)]
            for i in range(self.spec.fan_out)
        ]
        return names
