"""Testbed assembly and the paper's two running example conditions.

A :class:`Testbed` is a complete single-process deployment of the
conditional messaging architecture (Figure 9): one sender queue manager
with the full sender-side service, any number of receiver queue managers
wired over channels with configurable latency, and per-receiver
conditional messaging receivers.  All timing is virtual, driven by the
shared scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.conditions import DestinationSet
from repro.core.builder import destination, destination_set
from repro.core.receiver import ConditionalMessagingReceiver
from repro.core.service import ConditionalMessagingService
from repro.dsphere.coordinator import DSphereService
from repro.mq.manager import QueueManager
from repro.mq.network import MessageNetwork
from repro.mq.persistence import Journal, MemoryJournal
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.objects.txmanager import TransactionManager
from repro.sim.clock import SimulatedClock
from repro.sim.scheduler import EventScheduler

#: Useful virtual-time constants for scenario definitions.
SECOND_MS = 1_000
MINUTE_MS = 60 * SECOND_MS
HOUR_MS = 60 * MINUTE_MS
DAY_MS = 24 * HOUR_MS


@dataclass
class ReceiverNode:
    """One receiver endpoint in a testbed."""

    name: str
    manager: QueueManager
    receiver: ConditionalMessagingReceiver
    txmanager: TransactionManager = field(default_factory=TransactionManager)


class Testbed:
    """A complete conditional-messaging deployment in one process.

    Args:
        receiver_names: Logical receiver names; each gets its own queue
            manager ``QM.<name>``, connected to the sender with
            ``latency_ms``/``jitter_ms``/``loss_rate`` channels, and a
            conditional messaging receiver whose recipient id is the
            logical name.
        journaled: Give every queue manager a memory journal (enables
            crash/recovery experiments at some bookkeeping cost).
        journal_sync: Sync policy for those journals (``"always"`` /
            ``"batch"`` / ``"none"``); commit-group accounting is the
            same under every policy, so benchmarks can compare flush
            counts without touching a disk.
        tracer: A lifecycle tracer (e.g. a
            :class:`~repro.obs.trace.FlightRecorder`) wired through every
            queue manager and the network, so one recorder sees the full
            cross-manager path of each conditional message.
        metrics: A shared :class:`~repro.obs.registry.MetricsRegistry`
            collecting counters, depth gauges, and latency histograms
            across the whole deployment.
    """

    SENDER = "QM.SENDER"
    __test__ = False  # not a pytest test class, despite living near tests

    def __init__(
        self,
        receiver_names: List[str],
        latency_ms: int = 10,
        jitter_ms: int = 0,
        loss_rate: float = 0.0,
        seed: int = 0,
        journaled: bool = False,
        journal_sync: str = "always",
        journal_factory: Optional[Callable[[str], Journal]] = None,
        notify_success: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        adaptive_flush: bool = False,
        pump_coalesce_ms: Optional[int] = None,
    ) -> None:
        self.clock = SimulatedClock()
        self.scheduler = EventScheduler(self.clock)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.network = MessageNetwork(
            scheduler=self.scheduler, seed=seed, tracer=self.tracer
        )
        self.journals: Dict[str, Journal] = {}
        self.journal_sync = journal_sync
        #: manager name -> journal; lets deployments pick the store per
        #: manager (the chaos harness gives torn-tail episodes real
        #: :class:`~repro.mq.persistence.FileJournal` files, and
        #: :func:`~repro.mq.persistence.journal_factory_for` derives a
        #: factory for any registered backend).  Only consulted when
        #: ``journaled`` is true.
        self.journal_factory = journal_factory
        #: When true, every journaled manager's journal runs with the
        #: adaptive group-commit timer attached to the shared scheduler
        #: (:meth:`~repro.mq.persistence.Journal.enable_adaptive_flush`).
        self.adaptive_flush = adaptive_flush
        self.sender_manager = self._make_manager(self.SENDER, journaled)
        self.network.add_manager(self.sender_manager)
        self.service = ConditionalMessagingService(
            self.sender_manager,
            scheduler=self.scheduler,
            notify_success=notify_success,
            pump_coalesce_ms=pump_coalesce_ms,
        )
        self.sender_txmanager = TransactionManager()
        self.dsphere = DSphereService(
            self.service,
            txmanager=self.sender_txmanager,
            scheduler=self.scheduler,
        )
        self.receivers: Dict[str, ReceiverNode] = {}
        for name in receiver_names:
            manager = self._make_manager(f"QM.{name}", journaled)
            self.network.add_manager(manager)
            self.network.connect(
                self.SENDER,
                f"QM.{name}",
                latency_ms=latency_ms,
                jitter_ms=jitter_ms,
                loss_rate=loss_rate,
            )
            self.receivers[name] = ReceiverNode(
                name=name,
                manager=manager,
                receiver=ConditionalMessagingReceiver(manager, recipient_id=name),
            )

    def _make_manager(self, name: str, journaled: bool) -> QueueManager:
        journal: Optional[Journal] = None
        if journaled:
            journal = (
                self.journal_factory(name)
                if self.journal_factory is not None
                else MemoryJournal(sync=self.journal_sync)
            )
        if journal is not None:
            self.journals[name] = journal
            if self.adaptive_flush:
                journal.enable_adaptive_flush(self.scheduler)
        return QueueManager(
            name,
            self.clock,
            journal=journal,
            tracer=self.tracer,
            metrics=self.metrics,
        )

    # -- conveniences ------------------------------------------------------------

    def receiver(self, name: str) -> ConditionalMessagingReceiver:
        """The conditional receiver for a logical name."""
        return self.receivers[name].receiver

    def manager_of(self, name: str) -> QueueManager:
        """The queue manager for a logical receiver name."""
        return self.receivers[name].manager

    def queue_of(self, name: str) -> str:
        """Conventional inbox queue name for a receiver."""
        return f"Q.{name}"

    def run_until(self, until_ms: int) -> int:
        """Advance virtual time (scheduler passthrough)."""
        return self.scheduler.run_until(until_ms)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Run until the deployment quiesces."""
        return self.scheduler.run_all(max_events=max_events)

    def at(self, delay_ms: int, action) -> None:
        """Schedule an application action at ``now + delay_ms``."""
        self.scheduler.call_later(delay_ms, action)


# ---------------------------------------------------------------------------
# The paper's running examples (sections 1 and 2.1)
# ---------------------------------------------------------------------------


def build_example1_condition(
    testbed: Testbed,
    pick_up_window_ms: int = 2 * DAY_MS,
    r3_processing_ms: int = 7 * DAY_MS,
    subset_processing_ms: int = 11 * DAY_MS,
    min_subset_processing: int = 2,
) -> DestinationSet:
    """Example 1 (Figures 1 and 4): the group-meeting notification.

    Four named recipients on four queues; all must acknowledge receipt
    within the pick-up window; Receiver3 must process within its own
    deadline; at least ``min_subset_processing`` of the other three must
    process within the subset deadline.

    The receivers named R1..R4 must exist in ``testbed``.
    """
    def leaf(name: str, **kwargs) -> "destination":
        return destination(
            testbed.queue_of(name),
            manager=f"QM.{name}",
            recipient=name,
            **kwargs,
        )

    return destination_set(
        leaf("R3", msg_processing_time=r3_processing_ms),
        destination_set(
            leaf("R1"),
            leaf("R2"),
            leaf("R4"),
            msg_processing_time=subset_processing_ms,
            min_nr_processing=min_subset_processing,
        ),
        msg_pick_up_time=pick_up_window_ms,
    )


def build_example2_condition(
    shared_queue: str = "Q.CENTRAL",
    manager: str = "QM.TOWER",
    pick_up_window_ms: int = 20 * SECOND_MS,
    evaluation_timeout_ms: int = 21 * SECOND_MS,
) -> DestinationSet:
    """Example 2 (Figures 2 and 5): the incoming-flight message.

    One shared queue read by several controllers; any one controller must
    pick the message up within the window; the evaluation terminates one
    second later, exactly as in the paper's section 2.5 discussion.
    """
    return destination_set(
        destination(
            shared_queue, manager=manager, msg_pick_up_time=pick_up_window_ms
        ),
        evaluation_timeout=evaluation_timeout_ms,
    )
