"""Workloads: testbeds, scripted receivers, and scenario generators.

Everything the examples and benchmarks need to stand up a distributed
deployment in one process: a :class:`~repro.workloads.scenarios.Testbed`
(clock + scheduler + network + sender service + receiver managers),
scripted receiver behaviours with controllable timing and failure modes,
and seeded random workload generation for the parameter sweeps.
"""

from repro.workloads.scenarios import Testbed, build_example1_condition, build_example2_condition
from repro.workloads.receivers import ReceiverScript, ScriptedReceiver
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.fleet import (
    FleetResult,
    FleetScenario,
    FleetSpec,
    run_fleet,
)

__all__ = [
    "Testbed",
    "build_example1_condition",
    "build_example2_condition",
    "ReceiverScript",
    "ScriptedReceiver",
    "WorkloadGenerator",
    "WorkloadSpec",
    "FleetSpec",
    "FleetScenario",
    "FleetResult",
    "run_fleet",
]
