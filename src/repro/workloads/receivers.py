"""Scripted receiver behaviours for scenarios and benchmarks.

A :class:`ScriptedReceiver` schedules what a real receiver application
would do: wait some reaction time, read from its queue, optionally
process inside a transaction for some duration, then commit or roll
back.  The scripts drive the virtual clock, so a "two-day" deadline
scenario runs in microseconds of real time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List

from repro.core.receiver import ConditionalMessagingReceiver, ReceivedMessage
from repro.sim.scheduler import EventScheduler


class ReceiverMode(Enum):
    """How a scripted receiver consumes its message."""

    #: plain non-transactional read (ack of receipt only)
    READ = "read"
    #: transactional read + commit after ``process_ms`` (processing ack)
    PROCESS_COMMIT = "process_commit"
    #: transactional read + rollback after ``process_ms`` (no ack; the
    #: message returns to the queue)
    PROCESS_ABORT = "process_abort"
    #: never touches the queue
    IGNORE = "ignore"


@dataclass
class ReceiverScript:
    """Behaviour of one receiver for one expected message."""

    queue: str
    react_after_ms: int
    mode: ReceiverMode = ReceiverMode.READ
    process_ms: int = 0
    #: after a PROCESS_ABORT, optionally retry this many times
    retries: int = 0
    retry_after_ms: int = 1_000


@dataclass
class ReceiverLog:
    """What a scripted receiver actually did (for assertions)."""

    reads: List[ReceivedMessage] = field(default_factory=list)
    commits: int = 0
    aborts: int = 0
    empty_polls: int = 0


class ScriptedReceiver:
    """Executes a :class:`ReceiverScript` against a receiver endpoint."""

    def __init__(
        self,
        receiver: ConditionalMessagingReceiver,
        scheduler: EventScheduler,
        script: ReceiverScript,
    ) -> None:
        self.receiver = receiver
        self.scheduler = scheduler
        self.script = script
        self.log = ReceiverLog()
        self._retries_left = script.retries

    def start(self) -> None:
        """Arm the script (call once, before or after the send)."""
        if self.script.mode is ReceiverMode.IGNORE:
            return
        self.scheduler.call_later(
            self.script.react_after_ms,
            self._act,
            label=f"receiver {self.receiver.recipient_id}",
        )

    # -- behaviour -----------------------------------------------------------------

    def _act(self) -> None:
        if self.script.mode is ReceiverMode.READ:
            message = self.receiver.read_message(self.script.queue)
            if message is None:
                self.log.empty_polls += 1
                return
            self.log.reads.append(message)
            return
        # Transactional modes.  The receiver endpoint processes one
        # message at a time; if it is busy with an earlier message's
        # transaction, come back shortly (the application is single-
        # threaded, like the rest of the simulation).
        if self.receiver.in_transaction:
            self.scheduler.call_later(max(self.script.process_ms, 1), self._act)
            return
        self.receiver.begin_tx()
        message = self.receiver.read_message(self.script.queue)
        if message is None:
            self.receiver.abort_tx()
            self.log.empty_polls += 1
            return
        self.log.reads.append(message)
        # Processing takes virtual time; complete the transaction later.
        self.scheduler.call_later(
            self.script.process_ms,
            lambda: self._complete(),
            label=f"process {self.receiver.recipient_id}",
        )

    def _complete(self) -> None:
        if self.script.mode is ReceiverMode.PROCESS_COMMIT:
            self.receiver.commit_tx()
            self.log.commits += 1
            return
        self.receiver.abort_tx()
        self.log.aborts += 1
        if self._retries_left > 0:
            self._retries_left -= 1
            self.scheduler.call_later(
                self.script.retry_after_ms,
                self._retry_commit,
                label=f"retry {self.receiver.recipient_id}",
            )

    def _retry_commit(self) -> None:
        # The retry succeeds: read again and commit this time.
        if self.receiver.in_transaction:
            self.scheduler.call_later(max(self.script.process_ms, 1), self._retry_commit)
            return
        self.receiver.begin_tx()
        message = self.receiver.read_message(self.script.queue)
        if message is None:
            self.receiver.abort_tx()
            self.log.empty_polls += 1
            return
        self.log.reads.append(message)
        self.scheduler.call_later(self.script.process_ms, self._finish_retry)

    def _finish_retry(self) -> None:
        self.receiver.commit_tx()
        self.log.commits += 1
