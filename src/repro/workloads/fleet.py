"""Device-fleet telemetry workload: conditional pub/sub at fleet scale.

The ROADMAP's device-fleet scenario: thousands of simulated devices
publish telemetry on hierarchical topics
(``fleet.<site>.<device>.<sensor>``) through one :class:`TopicBroker`,
wildcard monitor subscriptions watch slices of the fleet (with seeded
churn of non-durable monitors, modeling dashboards connecting and
dropping), and an operations endpoint issues **availability checks**:
conditional messages published to a site's command topic whose outcome
fails unless at least *k* of the site's *n* devices acknowledge pick-up
within a window — the paper's anonymous-minimum condition
(``anonymous_min_pick_up``) doing MQTT-style availability monitoring.

Everything runs on the virtual clock: a fleet hour costs milliseconds of
wall time, and the whole scenario is reproducible from one seed.

Shape of a run::

    spec = FleetSpec(sites=4, devices_per_site=250)   # 1k devices
    scenario = FleetScenario(spec)
    scenario.add_availability_check(site_index=0, quorum_fraction=0.5,
                                    on_time_fraction=0.9)   # satisfiable
    scenario.add_availability_check(site_index=1, quorum_fraction=0.5,
                                    on_time_fraction=0.2)   # will fail
    result = scenario.run()
    assert result.availability[0].succeeded
    assert not result.availability[1].succeeded

The broker runs with retained last-value state on, so monitors joining
mid-run (churn waves) immediately receive each matching topic's current
reading, and devices publish on undefined topics (auto-registration —
device auto-discovery).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.builder import destination, destination_set
from repro.core.receiver import ConditionalMessagingReceiver
from repro.core.service import ConditionalMessagingService
from repro.mq.manager import QueueManager
from repro.mq.message import Message
from repro.mq.network import MessageNetwork
from repro.mq.pubsub import (
    DEFAULT_MATCH_CACHE_SIZE,
    TopicBroker,
    topic_queue_name,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import SimulatedClock
from repro.sim.scheduler import EventScheduler

#: Queue manager names of the two fleet endpoints.
FLEET_HUB = "QM.FLEET.HUB"
FLEET_OPS = "QM.FLEET.OPS"

#: Root segment of every fleet topic.
FLEET_TOPIC_ROOT = "fleet"


def device_topic(site: str, device: str, sensor: str) -> str:
    """Telemetry topic of one device sensor."""
    return f"{FLEET_TOPIC_ROOT}.{site}.{device}.{sensor}"


def command_topic(site: str) -> str:
    """Per-site command topic availability checks are published on."""
    return f"{FLEET_TOPIC_ROOT}.{site}.cmd"


@dataclass
class FleetSpec:
    """Parameters of one fleet scenario (fully seeded/reproducible).

    Attributes:
        sites: Number of sites; devices are spread evenly across them.
        devices_per_site: Devices per site (total fleet size =
            ``sites * devices_per_site``).
        sensors: Sensor names every device carries; each publishes on its
            own topic.
        telemetry_rounds: How many readings each sensor publishes.
        publish_interval_ms: Virtual time between a sensor's readings.
        device_jitter_ms: Seeded per-publish jitter so readings spread
            instead of thundering on one tick.
        site_monitor_patterns: Wildcard patterns each site gets a durable
            monitor for (``{site}`` is substituted).
        fleet_monitor_patterns: Fleet-wide durable monitor patterns.
        churn_waves: Times the non-durable monitor population is dropped
            (:meth:`TopicBroker.drop_nondurable`) and re-subscribed.
        churn_monitors: Non-durable monitors (re)subscribed per wave,
            each watching one seeded device (``fleet.<site>.<device>.*``
            — narrow enough that retained catch-up stays proportional).
        churn_interval_ms: Virtual time between churn waves.
        latency_ms: Ops -> hub channel latency.
        retain_last: Broker retained last-value state (on: churn monitors
            receive each watched topic's current reading at subscribe).
        match_cache_size: Broker per-topic match-set memo capacity.
        seed: Seeds jitter, monitor targets, and responder choice.
    """

    sites: int = 2
    devices_per_site: int = 50
    sensors: Tuple[str, ...] = ("temperature", "humidity", "power")
    telemetry_rounds: int = 2
    publish_interval_ms: int = 1_000
    device_jitter_ms: int = 400
    site_monitor_patterns: Tuple[str, ...] = ("{site}.#",)
    fleet_monitor_patterns: Tuple[str, ...] = ("#", "*.*.temperature")
    churn_waves: int = 2
    churn_monitors: int = 3
    churn_interval_ms: int = 1_500
    latency_ms: int = 5
    retain_last: bool = True
    match_cache_size: int = DEFAULT_MATCH_CACHE_SIZE
    seed: int = 0

    def site_names(self) -> List[str]:
        return [f"site{i:02d}" for i in range(self.sites)]


@dataclass
class FleetDevice:
    """One simulated device: a receiver endpoint plus its sensor topics."""

    site: str
    name: str
    command_queue: str
    receiver: ConditionalMessagingReceiver = field(repr=False)

    def topics(self, sensors: Tuple[str, ...]) -> List[str]:
        return [device_topic(self.site, self.name, s) for s in sensors]


@dataclass
class AvailabilityCheck:
    """One scheduled k-of-n availability condition (pre-run plan)."""

    site: str
    at_ms: int
    window_ms: int
    min_ack: int
    total: int
    responders: int
    expect_success: bool
    cmid: Optional[str] = None


@dataclass
class AvailabilityOutcome:
    """Resolved outcome of one availability check."""

    site: str
    cmid: str
    min_ack: int
    responders: int
    total: int
    expect_success: bool
    succeeded: bool
    decided_at_ms: int
    reasons: List[str] = field(default_factory=list)


@dataclass
class FleetResult:
    """What one fleet run produced (assertion surface for tests/benches)."""

    devices: int
    sites: List[str]
    telemetry_published: int
    deliveries: int
    auto_registered: int
    retained_deliveries: int
    monitors_dropped: int
    availability: List[AvailabilityOutcome]
    events_run: int
    final_time_ms: int


class FleetScenario:
    """A complete fleet deployment on the virtual clock.

    Two queue managers: ``QM.FLEET.OPS`` runs the conditional messaging
    service (the operations/control plane), ``QM.FLEET.HUB`` hosts the
    :class:`TopicBroker` with every device and monitor queue.  Devices
    subscribe to their site's command topic with their own queue and a
    named :class:`ConditionalMessagingReceiver`, so an availability
    check's acknowledgments count distinct recipients.
    """

    def __init__(
        self,
        spec: FleetSpec,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if spec.sites < 1 or spec.devices_per_site < 1:
            raise ValueError("a fleet needs at least one site and one device")
        self.spec = spec
        self.metrics = metrics
        self._rng = random.Random(spec.seed)
        self.clock = SimulatedClock()
        self.scheduler = EventScheduler(self.clock)
        self.network = MessageNetwork(scheduler=self.scheduler, seed=spec.seed)
        self.ops = self.network.add_manager(
            QueueManager(FLEET_OPS, self.clock, metrics=metrics)
        )
        self.hub = self.network.add_manager(
            QueueManager(FLEET_HUB, self.clock, metrics=metrics)
        )
        self.network.connect(FLEET_OPS, FLEET_HUB, latency_ms=spec.latency_ms)
        self.service = ConditionalMessagingService(
            self.ops, scheduler=self.scheduler
        )
        self.broker = TopicBroker(
            self.hub,
            retain_last=spec.retain_last,
            match_cache_size=spec.match_cache_size,
            metrics=metrics,
        )
        self.devices: List[FleetDevice] = []
        self.devices_by_site: Dict[str, List[FleetDevice]] = {}
        self._checks: List[AvailabilityCheck] = []
        self._churn_dropped = 0
        self._churn_serial = 0
        self._deployed = False

    # -- population ---------------------------------------------------------

    def deploy(self) -> None:
        """Create devices, their command subscriptions, and monitors."""
        if self._deployed:
            return
        self._deployed = True
        spec = self.spec
        index = 0
        for site in spec.site_names():
            self.broker.define_topic(command_topic(site))
            site_devices: List[FleetDevice] = []
            for _ in range(spec.devices_per_site):
                name = f"dev{index:05d}"
                index += 1
                subscription = self.broker.subscribe(
                    command_topic(site), f"cmd.{name}"
                )
                device = FleetDevice(
                    site=site,
                    name=name,
                    command_queue=subscription.queue_name,
                    receiver=ConditionalMessagingReceiver(
                        self.hub, recipient_id=name
                    ),
                )
                site_devices.append(device)
                self.devices.append(device)
            self.devices_by_site[site] = site_devices
            for pattern in spec.site_monitor_patterns:
                rendered = f"{FLEET_TOPIC_ROOT}.{pattern.format(site=site)}"
                self.broker.subscribe(rendered, f"mon.{site}.{pattern}")
        for pattern in spec.fleet_monitor_patterns:
            self.broker.subscribe(
                f"{FLEET_TOPIC_ROOT}.{pattern}", f"mon.fleet.{pattern}"
            )

    # -- telemetry plane ----------------------------------------------------

    def schedule_telemetry(self) -> int:
        """Schedule every sensor reading; returns the count scheduled.

        Each device sensor publishes ``telemetry_rounds`` readings,
        ``publish_interval_ms`` apart plus seeded jitter, by putting the
        reading straight through the broker (hub-local publish — devices
        live on the hub's manager).  Topics are *not* pre-defined: the
        first reading of each sensor auto-registers its topic.
        """
        self.deploy()
        spec = self.spec
        scheduled = 0
        for device in self.devices:
            for sensor in spec.sensors:
                topic = device_topic(device.site, device.name, sensor)
                for round_index in range(spec.telemetry_rounds):
                    at = (
                        round_index * spec.publish_interval_ms
                        + self._rng.randint(0, max(spec.device_jitter_ms, 1))
                    )
                    value = round(self._rng.uniform(0.0, 100.0), 3)
                    reading = Message(
                        body={"value": value, "round": round_index},
                        properties={
                            "site": device.site,
                            "device": device.name,
                            "sensor": sensor,
                        },
                    )
                    self.scheduler.call_later(
                        at,
                        lambda t=topic, m=reading: self.broker.publish(t, m),
                        label=f"telemetry {topic}",
                    )
                    scheduled += 1
        return scheduled

    def schedule_churn(self) -> None:
        """Schedule the non-durable monitor churn waves."""
        self.deploy()
        spec = self.spec
        for wave in range(spec.churn_waves):
            self.scheduler.call_later(
                (wave + 1) * spec.churn_interval_ms,
                self._churn_wave,
                label=f"monitor churn wave {wave}",
            )

    def _churn_wave(self) -> None:
        """Drop every non-durable monitor, then subscribe a fresh batch."""
        self._churn_dropped += self.broker.drop_nondurable()
        for _ in range(self.spec.churn_monitors):
            device = self._rng.choice(self.devices)
            self._churn_serial += 1
            self.broker.subscribe(
                f"{FLEET_TOPIC_ROOT}.{device.site}.{device.name}.*",
                f"mon.churn.{self._churn_serial}",
                durable=False,
            )

    # -- availability conditions --------------------------------------------

    def add_availability_check(
        self,
        site_index: int,
        quorum_fraction: float = 0.5,
        on_time_fraction: float = 0.9,
        window_ms: int = 5_000,
        at_ms: int = 100,
    ) -> AvailabilityCheck:
        """Plan a k-of-n availability condition on one site.

        A conditional message is published (at ``at_ms``) to the site's
        command topic; the broker fans it out to every device of the
        site; ``round(on_time_fraction * n)`` seeded-chosen devices read
        their copy inside the window, the rest stay silent.  The
        condition demands ``k = max(1, round(quorum_fraction * n))``
        distinct acknowledgments within ``window_ms``
        (``anonymous_min_pick_up`` on the destination set), so the
        outcome succeeds iff enough of the site answered in time.
        """
        self.deploy()
        site = self.spec.site_names()[site_index]
        site_devices = self.devices_by_site[site]
        total = len(site_devices)
        min_ack = max(1, round(quorum_fraction * total))
        responders = max(0, min(total, round(on_time_fraction * total)))
        check = AvailabilityCheck(
            site=site,
            at_ms=at_ms,
            window_ms=window_ms,
            min_ack=min_ack,
            total=total,
            responders=responders,
            expect_success=responders >= min_ack,
        )
        self._checks.append(check)
        chosen = self._rng.sample(site_devices, responders)
        self.scheduler.call_later(
            at_ms,
            lambda: self._fire_check(check),
            label=f"availability check {site}",
        )
        # Responders read inside the first half of the window, leaving
        # headroom for channel latency + fan-out so the read timestamp is
        # reliably inside the deadline.  Non-responders never read: their
        # copies sit on the device queues (a real fleet's offline
        # devices), and a failed check decides at the evaluation timeout.
        lower = self.spec.latency_ms + 1
        upper = max(lower + 1, window_ms // 2)
        for device in chosen:
            delay = self._rng.randint(lower, upper)
            self.scheduler.call_later(
                at_ms + delay,
                lambda d=device: d.receiver.read_message(d.command_queue),
                label=f"device ack {device.name}",
            )
        return check

    def _fire_check(self, check: AvailabilityCheck) -> None:
        condition = destination_set(
            destination(
                topic_queue_name(command_topic(check.site)), manager=FLEET_HUB
            ),
            msg_pick_up_time=check.window_ms,
            anonymous_min_pick_up=check.min_ack,
            evaluation_timeout=check.window_ms + 1_000,
        )
        check.cmid = self.service.send_message(
            {
                "command": "availability-ping",
                "site": check.site,
                "quorum": check.min_ack,
            },
            condition,
        )

    # -- execution ----------------------------------------------------------

    def run(self, max_events: int = 5_000_000) -> FleetResult:
        """Deploy, schedule everything, run to quiescence, collect results."""
        self.deploy()
        telemetry = self.schedule_telemetry()
        self.schedule_churn()
        events = self.scheduler.run_all(max_events=max_events)
        outcomes: List[AvailabilityOutcome] = []
        for check in self._checks:
            if check.cmid is None:  # pragma: no cover - send never fired
                raise RuntimeError(f"availability check on {check.site} never sent")
            record = self.service.outcome(check.cmid)
            if record is None:
                raise RuntimeError(
                    f"availability check {check.cmid} undecided after run_all"
                )
            outcomes.append(
                AvailabilityOutcome(
                    site=check.site,
                    cmid=check.cmid,
                    min_ack=check.min_ack,
                    responders=check.responders,
                    total=check.total,
                    expect_success=check.expect_success,
                    succeeded=record.succeeded,
                    decided_at_ms=record.decided_at_ms,
                    reasons=list(record.reasons),
                )
            )
        stats = self.broker.stats
        return FleetResult(
            devices=len(self.devices),
            sites=self.spec.site_names(),
            telemetry_published=telemetry,
            deliveries=stats.deliveries,
            auto_registered=stats.auto_registered,
            retained_deliveries=stats.retained_deliveries,
            monitors_dropped=self._churn_dropped,
            availability=outcomes,
            events_run=events,
            final_time_ms=self.clock.now_ms(),
        )


def run_fleet(
    spec: Optional[FleetSpec] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> FleetResult:
    """Run the canonical fleet scenario: one passing and one failing check.

    The convenience entry the tests, docs, and benchmark share: site 0
    gets a satisfiable availability condition (90% of devices answer a
    50% quorum), the last site gets an unsatisfiable one (20% answer),
    so a single run observes both outcome polarities end to end.
    """
    spec = spec or FleetSpec()
    scenario = FleetScenario(spec, metrics=metrics)
    scenario.add_availability_check(
        site_index=0, quorum_fraction=0.5, on_time_fraction=0.9
    )
    scenario.add_availability_check(
        site_index=spec.sites - 1, quorum_fraction=0.5, on_time_fraction=0.2
    )
    return scenario.run()
