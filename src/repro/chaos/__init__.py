"""Deterministic fault injection and paper-invariant checking.

The chaos layer stresses the conditional-messaging implementation the
way the paper's reliability argument is stressed: crash queue managers
at journal-flush boundaries, partition channels mid-transfer, tear
journal tails, duplicate and delay transfers — then recover, quiesce,
and check that every guarantee the paper claims still holds.

* :mod:`repro.chaos.faults` — declarative, seeded :class:`FaultPlan`
  executed by a :class:`FaultInjector`; crashes surface as
  :class:`CrashPoint`.
* :mod:`repro.chaos.invariants` — the :class:`InvariantSuite` (journal
  coherence, outcome uniqueness, compensation consistency,
  acknowledgment correlation, D-Sphere atomicity).
* :mod:`repro.chaos.explorer` — the seeded random-walk
  :class:`ChaosExplorer` with shrinking JSON reproducers.
* :mod:`repro.chaos.bounded` — the exhaustive small-scope
  :class:`BoundedExplorer`: every interleaving and crash point of a
  declarative :class:`~repro.rules.RuleSet`, checked to fixpoint.

``python -m repro.chaos --episodes 50`` runs a corpus from the CLI;
``python -m repro.chaos --bounded`` runs the bounded checker on the
pinned canonical configuration.
"""

from repro.chaos.bounded import (
    BoundedExplorer,
    BoundedResult,
    BoundedViolation,
    RuleHarness,
    canonical_ruleset,
)
from repro.chaos.explorer import (
    ChaosExplorer,
    ChaosHarness,
    EpisodeResult,
    EpisodeSpec,
)
from repro.chaos.faults import (
    CrashPoint,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.chaos.invariants import (
    ChaosContext,
    EpisodeLedger,
    InvariantSuite,
    SendRecord,
    Violation,
)

__all__ = [
    "BoundedExplorer",
    "BoundedResult",
    "BoundedViolation",
    "ChaosContext",
    "ChaosExplorer",
    "ChaosHarness",
    "CrashPoint",
    "EpisodeLedger",
    "EpisodeResult",
    "EpisodeSpec",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantSuite",
    "RuleHarness",
    "SendRecord",
    "Violation",
    "canonical_ruleset",
]
