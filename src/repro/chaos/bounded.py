"""Bounded model checking: exhaustive small-scope protocol exploration.

The random-walk explorer (:mod:`repro.chaos.explorer`) samples fault
schedules; this module *enumerates* them.  For a tiny declarative
scenario (a :class:`~repro.rules.RuleSet`: one sender, a couple of
receivers, a few messages) the :class:`BoundedExplorer` walks **every**
interleaving of same-instant scheduler events and **every** crash point
within a crash budget, checking the full
:class:`~repro.chaos.invariants.InvariantSuite` at every terminal state.
Small-scope hypothesis, per the model-checking literature: most protocol
bugs already manifest in configurations this small, and there the state
space closes.

Execution model — *stateless* (replay-based) search:

The simulated world is a web of closures over live objects (queue
managers, receivers, the service); snapshotting it for backtracking is
not safely possible.  Instead every explored trajectory is identified by
its **script** — the sequence of choice indices taken at successive
decision points — and re-executed from scratch under
:func:`~repro.sim.determinism.deterministic_ids`, which makes replay
byte-exact.  A decision point is reached before each event firing:

* the *frontier* (:meth:`~repro.sim.scheduler.EventScheduler.frontier`)
  lists the same-instant events whose relative order a concurrent system
  would not fix — each is one choice, fired out of heap order via
  :meth:`~repro.sim.scheduler.EventScheduler.fire_specific`;
* while crash budget remains, each crashable manager adds one more
  choice: crash-and-recover it *now*, between event firings — the
  boundary crash points the random explorer only samples.

DFS: run a script, take default choice 0 past its end, and at every
**novel** multi-choice decision point push the sibling scripts; before
expanding a novel point, hash the canonical world state (journal
contents, queue contents with lock state, evaluation records, ledger,
scheduler future, remaining crash budget) and prune if an identical
state was already expanded — different event orders that commute
converge on one hash, which is what closes the state space.  A terminal
state (empty frontier) gets the deterministic quiesce epilogue (redrive,
drain, sweep) and a full invariant check; a failing script *is* the
reproducer, serialized to JSON alongside the rule set that drives it.

Soundness note: the hash is conservative — anything it misses only
costs duplicate exploration, never a skipped behaviour — except that
states are compared *per allocation history*, which deterministic ids
tie to the choice prefix; two semantically equal states with different
id allocations explore twice rather than merge.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.explorer import (
    FINAL_SWEEP_ROUNDS,
    MAX_EVENTS_PER_DRAIN,
    ChaosHarness,
    EpisodeSpec,
)
from repro.chaos.faults import FaultPlan
from repro.chaos.invariants import InvariantSuite, SendRecord, Violation
from repro.core.receiver import ConditionalMessagingReceiver, ReceivedMessage
from repro.mq.selectors import compile_selector
from repro.rules import (
    DestinationRule,
    GroupRule,
    MessageRule,
    ReactionRule,
    RuleSet,
    compile_message,
)
from repro.sim.determinism import deterministic_ids
from repro.workloads.generator import WorkloadSpec
from repro.workloads.scenarios import Testbed

__all__ = [
    "RuleHarness",
    "BoundedExplorer",
    "BoundedResult",
    "BoundedViolation",
    "canonical_ruleset",
]


def canonical_ruleset() -> RuleSet:
    """The pinned small-scope configuration CI checks to fixpoint.

    Two receivers, two messages, every declarative feature in play: a
    quorum group (``min_pick_up=1``), a required leaf deadline, an
    evaluation timeout, compensation pairing on both sends, a guarded
    read, a transactional commit with a hold time, and a late read that
    lands after the pick-up window.  Small enough to close in seconds
    under a one-crash budget; rich enough that the terminal invariant
    check exercises every subsystem.
    """
    return RuleSet(
        receivers=["R1", "R2"],
        messages=[
            MessageRule(
                condition=GroupRule(
                    members=[
                        DestinationRule(receiver="R1"),
                        DestinationRule(receiver="R2"),
                    ],
                    pick_up_within_ms=400,
                    min_pick_up=1,
                ),
                send_at_ms=0,
                body={"kind": "rules", "msg": 0, "tag": "a"},
                evaluation_timeout_ms=1_200,
                compensation={"undo": 0},
            ),
            MessageRule(
                condition=GroupRule(
                    members=[
                        DestinationRule(receiver="R2", pick_up_within_ms=400)
                    ]
                ),
                send_at_ms=200,
                body={"kind": "rules", "msg": 1, "tag": "b"},
                compensation={"undo": 1},
            ),
        ],
        reactions=[
            ReactionRule(receiver="R1", at_ms=100, mode="read", guard="tag = 'a'"),
            ReactionRule(receiver="R2", at_ms=300, mode="commit", process_ms=50),
            ReactionRule(receiver="R2", at_ms=700, mode="read"),
        ],
        name="canonical",
        seed=2002,
    )


class RuleHarness(ChaosHarness):
    """A chaos harness whose workload is a declarative rule set.

    Same deployment, ledger, crash procedure, and sweep machinery as the
    random explorer's harness — only :meth:`schedule_workload` differs:
    sends and reactions come from the :class:`~repro.rules.RuleSet`
    instead of a seeded generator, so the bounded checker controls every
    application action declaratively.  Reactions re-resolve the current
    receiver incarnation at fire time, surviving crash/recover cycles.
    """

    def __init__(self, ruleset: RuleSet, journal_dir: Optional[str] = None) -> None:
        ruleset.validate()
        spec = EpisodeSpec(
            seed=ruleset.seed,
            receivers=len(ruleset.receivers),
            latency_ms=1,
            jitter_ms=0,
            journal="memory",
            workload=WorkloadSpec(messages=0, seed=ruleset.seed),
            plan=FaultPlan(seed=ruleset.seed),
        )
        if ruleset.receivers != spec.receiver_names:
            raise ValueError(
                "bounded checking requires testbed receiver naming"
                f" {spec.receiver_names}, got {ruleset.receivers}"
            )
        super().__init__(spec, journal_dir=journal_dir)
        self.ruleset = ruleset

    def schedule_workload(self) -> None:
        for index, message in enumerate(self.ruleset.messages):
            self.scheduler.call_at(
                message.send_at_ms,
                lambda index=index, message=message: self._fire_rule_send(
                    index, message
                ),
                label=f"rule-send #{index}",
            )
        for reaction in self.ruleset.reactions:
            self.scheduler.call_at(
                reaction.at_ms,
                lambda reaction=reaction: self._fire_reaction(reaction),
                label=f"rule-react {reaction.receiver}",
            )

    def _fire_rule_send(self, index: int, rule: MessageRule) -> None:
        condition = compile_message(
            rule,
            queue_of=lambda name: self.testbed.queue_of(name),
            manager_of=lambda name: f"QM.{name}",
        )
        cmid = self.service.send_message(
            dict(rule.body),
            condition,
            compensation=(
                dict(rule.compensation)
                if rule.compensation is not None
                else None
            ),
        )
        self.ledger.record_send(
            SendRecord(
                cmid=cmid,
                destinations=[
                    (leaf.manager or self.sender_name, leaf.queue)
                    for leaf in condition.destinations()
                ],
                # The service stages a (possibly default-bodied)
                # compensation for every send; the rule's payload only
                # customizes its body.
                has_compensation=True,
            )
        )

    @staticmethod
    def _selector_view(message: Any) -> Any:
        """The message as a reaction guard sees it.

        JMS selectors match on message *properties*; rule bodies are
        validated scalar-only dicts, so expose them as properties for
        guard evaluation (control properties, ``DS_*``, stay
        authoritative and cannot be shadowed).
        """
        if isinstance(message.body, dict):
            fields = {
                key: value
                for key, value in message.body.items()
                if value is not None and not key.startswith("DS_")
            }
            if fields:
                return message.with_properties(**fields)
        return message

    def _fire_reaction(self, rule: ReactionRule) -> None:
        node = self.receivers[rule.receiver]
        receiver = node.receiver
        queue_name = self.testbed.queue_of(rule.receiver)
        if receiver.in_transaction:
            # Busy with an earlier transaction (single-threaded app);
            # retry after the hold time, like the random harness.
            self.scheduler.call_later(
                max(rule.process_ms, 1),
                lambda: self._fire_reaction(rule),
                label=f"rule-react {rule.receiver}",
            )
            return
        guard = compile_selector(rule.guard)
        if rule.mode == "read" and guard is None:
            self._record(rule.receiver, receiver.read_message(queue_name))
            return
        # Transactional path: commit/abort modes, and any guarded read —
        # a guard decides only after seeing the message, so the read must
        # be revocable.
        receiver.begin_tx()
        received = receiver.read_message(queue_name)
        if received is None:
            receiver.abort_tx()
            return
        self.scheduler.call_later(
            rule.process_ms,
            lambda: self._complete_reaction(rule, receiver, received),
            label=f"rule-process {rule.receiver}",
        )

    def _complete_reaction(
        self,
        rule: ReactionRule,
        receiver: ConditionalMessagingReceiver,
        received: ReceivedMessage,
    ) -> None:
        if self.receivers[rule.receiver].receiver is not receiver:
            return  # crashed since the read; presumed abort already happened
        guard = compile_selector(rule.guard)
        commits = rule.mode != "abort" and (
            guard is None
            or guard.matches(self._selector_view(received.message))
        )
        if commits:
            receiver.commit_tx()
            self._record(rule.receiver, received)
        else:
            receiver.abort_tx()


@dataclass(frozen=True)
class BoundedViolation:
    """One invariant breach plus the script that reproduces it."""

    script: List[int]
    violations: List[Violation]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "script": list(self.script),
            "violations": [str(v) for v in self.violations],
        }


@dataclass
class BoundedResult:
    """Outcome of one bounded exploration."""

    #: distinct expanded branch states (the dedup set's size)
    states: int = 0
    #: events fired + crashes injected, summed over every replayed run
    transitions: int = 0
    #: trajectories run to a terminal state and invariant-checked
    schedules: int = 0
    #: trajectories abandoned at an already-expanded state
    pruned: int = 0
    #: widest frontier seen (concurrency high-water mark)
    max_frontier: int = 0
    #: exploration closed (no caps hit; every reachable schedule covered)
    complete: bool = True
    crash_budget: int = 0
    violations: List[BoundedViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "states": self.states,
            "transitions": self.transitions,
            "schedules": self.schedules,
            "pruned": self.pruned,
            "max_frontier": self.max_frontier,
            "complete": self.complete,
            "crash_budget": self.crash_budget,
            "violations": [v.to_dict() for v in self.violations],
        }


class BoundedExplorer:
    """Exhaustive DFS over schedules and crash points of one rule set."""

    def __init__(
        self,
        ruleset: RuleSet,
        crash_budget: int = 1,
        crash_managers: Optional[List[str]] = None,
        suite: Optional[InvariantSuite] = None,
        max_states: int = 100_000,
        max_schedules: int = 50_000,
        max_depth: int = 5_000,
        on_harness: Optional[Callable[[RuleHarness], None]] = None,
    ) -> None:
        ruleset.validate()
        if crash_budget < 0:
            raise ValueError("crash_budget must be >= 0")
        self.ruleset = ruleset
        self.crash_budget = crash_budget
        spec_managers = [Testbed.SENDER] + [
            f"QM.{name}" for name in ruleset.receivers
        ]
        if crash_managers is None:
            crash_managers = spec_managers if crash_budget else []
        for name in crash_managers:
            if name not in spec_managers:
                raise ValueError(f"unknown crash manager {name!r}")
        self.crash_managers = list(crash_managers)
        self.suite = suite if suite is not None else InvariantSuite()
        self.max_states = max_states
        self.max_schedules = max_schedules
        self.max_depth = max_depth
        self.on_harness = on_harness

    # -- exploration -------------------------------------------------------------

    def run(self) -> BoundedResult:
        """Explore to fixpoint (or a cap); returns aggregate counts."""
        result = BoundedResult(crash_budget=self.crash_budget)
        visited: set = set()
        stack: List[List[int]] = [[]]
        while stack:
            if (
                len(visited) >= self.max_states
                or result.schedules >= self.max_schedules
            ):
                result.complete = False
                break
            script = stack.pop()
            self._execute(script, stack, visited, result)
        result.states = len(visited)
        return result

    def replay_script(self, script: List[int]) -> List[Violation]:
        """Re-run one script (e.g. from a reproducer); returns violations."""
        return self._execute(list(script), None, None, BoundedResult())

    def _execute(
        self,
        script: List[int],
        stack: Optional[List[List[int]]],
        visited: Optional[set],
        result: BoundedResult,
    ) -> Optional[List[Violation]]:
        """One trajectory: replay ``script``, then default-continue.

        With ``stack``/``visited`` set, novel multi-choice points push
        sibling scripts and dedup against expanded states; with both
        ``None`` this is a pure replay.  Returns the terminal invariant
        check's violations, or ``None`` if the trajectory was pruned.
        """
        with deterministic_ids(self.ruleset.seed):
            harness = RuleHarness(self.ruleset)
            if self.on_harness is not None:
                self.on_harness(harness)
            try:
                harness.schedule_workload()
                budget = self.crash_budget
                path: List[int] = []
                while True:
                    if len(path) > self.max_depth:
                        raise RuntimeError(
                            f"trajectory exceeded max_depth={self.max_depth}"
                        )
                    frontier = harness.scheduler.frontier()
                    if not frontier:
                        break
                    crashes = self.crash_managers if budget > 0 else []
                    choices = len(frontier) + len(crashes)
                    result.max_frontier = max(result.max_frontier, len(frontier))
                    if len(path) < len(script):
                        choice = script[len(path)]
                        if choice >= choices:
                            raise ValueError(
                                f"script choice {choice} out of range at"
                                f" decision {len(path)} ({choices} choices)"
                            )
                    else:
                        if choices > 1 and visited is not None:
                            state = self._state_hash(harness, budget)
                            if state in visited:
                                result.pruned += 1
                                return None
                            visited.add(state)
                            for sibling in range(1, choices):
                                stack.append(path + [sibling])
                        choice = 0
                    path.append(choice)
                    if choice < len(frontier):
                        harness.scheduler.fire_specific(frontier[choice])
                    else:
                        harness.crash(crashes[choice - len(frontier)])
                        budget -= 1
                    result.transitions += 1
                # Terminal: deterministic quiesce epilogue (no choices —
                # its interleavings are the already-explored default
                # order), then the full invariant check.
                harness.network.redrive()
                harness.scheduler.run_all(max_events=MAX_EVENTS_PER_DRAIN)
                for _ in range(FINAL_SWEEP_ROUNDS):
                    harness.sweep()
                    harness.scheduler.run_all(max_events=MAX_EVENTS_PER_DRAIN)
                violations = self.suite.check(harness.context())
                result.schedules += 1
                if violations:
                    result.violations.append(
                        BoundedViolation(script=path, violations=violations)
                    )
                return violations
            finally:
                harness.close()

    # -- canonical state hashing ---------------------------------------------------

    def _state_hash(self, harness: RuleHarness, budget: int) -> str:
        """SHA-256 of everything that determines the world's future.

        Conservative by construction: missing detail merely weakens
        dedup (duplicate work), while every included component is a pure
        function of the choice prefix under deterministic ids.
        """
        state: Dict[str, Any] = {
            "now": harness.clock.now_ms(),
            "budget": budget,
            "crashes": list(harness.ledger.crashes),
            "scheduler": harness.scheduler.live_events(),
            "managers": {},
            "journals": {},
            "evaluations": [],
            "reads": sorted(
                (cmid, manager, count)
                for (cmid, manager), count in harness.ledger.reads.items()
            ),
            "compensations": sorted(
                (cmid, manager, count)
                for (cmid, manager), count in harness.ledger.compensations.items()
            ),
            "in_tx": sorted(
                (name, node.receiver.in_transaction)
                for name, node in harness.receivers.items()
            ),
        }
        for name in sorted(harness.managers):
            manager = harness.managers[name]
            queues: Dict[str, List] = {}
            for queue_name in sorted(manager.queue_names()):
                queue = manager.queue(queue_name)
                # Entry order, ids, and lock state — locked (in-doubt)
                # messages are invisible to browse() but very much part
                # of the state a crash or commit acts on.
                queues[queue_name] = [
                    (entry.message.message_id, entry.locked_by is not None)
                    for entry in queue._entries
                ]
            state["managers"][name] = queues
        for name in sorted(harness.journals):
            defined, messages = harness.journals[name].recover()
            state["journals"][name] = {
                "queues": sorted(defined),
                "messages": {
                    queue_name: [m.message_id for m in queue_messages]
                    for queue_name, queue_messages in sorted(messages.items())
                },
            }
        evaluation = harness.service.evaluation
        for cmid in sorted(evaluation._records):
            record = evaluation._records[cmid]
            state["evaluations"].append(
                (
                    cmid,
                    record.decided.outcome.name if record.decided else None,
                    len(record.acks),
                )
            )
        encoded = json.dumps(
            state, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    # -- reproducers -----------------------------------------------------------------

    def reproducer(self, failure: BoundedViolation) -> Dict[str, Any]:
        """Self-contained JSON form of one failing trajectory."""
        return {
            "kind": "bounded",
            "ruleset": self.ruleset.to_dict(),
            "crash_budget": self.crash_budget,
            "crash_managers": list(self.crash_managers),
            "script": list(failure.script),
            "violations": [str(v) for v in failure.violations],
        }

    def write_repro(self, failure: BoundedViolation, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.reproducer(failure), handle, indent=2)
            handle.write("\n")
        return path

    @classmethod
    def replay_repro(cls, data: Dict[str, Any]) -> List[Violation]:
        """Re-run a reproducer dict; returns the violations it triggers."""
        explorer = cls(
            RuleSet.from_dict(data["ruleset"]),
            crash_budget=int(data.get("crash_budget", 0)),
            crash_managers=data.get("crash_managers"),
        )
        return explorer.replay_script(list(data.get("script", [])))
