"""Declarative fault plans and the injector that executes them.

A :class:`FaultPlan` is a fully seeded, serializable description of every
fault an episode will suffer: queue-manager crashes pinned to journal
flush boundaries or to virtual times, network partitions between manager
pairs, torn journal tails, duplicated transfers, and transient channel
delays.  Because the plan is plain data (``to_json``/``from_json``
round-trips it), a failing episode shrinks to a minimal reproducer that
replays deterministically from its seed.

The :class:`FaultInjector` executes a plan against a live deployment by
driving hooks the production code already exposes:

* ``Journal.on_pre_flush`` / ``on_post_flush`` — the crash-point hooks in
  :mod:`repro.mq.persistence`.  A *pre*-flush crash raises
  :class:`CrashPoint` synchronously, so the commit group being written is
  lost and the dispatching event aborts mid-flight (the strictest crash:
  durable state is exactly the journal before the group).  A *post*-flush
  crash fires after the group hit the journal; the injector defers the
  actual :class:`CrashPoint` to an immediate scheduler event, modelling
  "the group is durable, the process dies at the end of this dispatch
  step".
* :meth:`MessageNetwork.partition` / :meth:`~MessageNetwork.heal` — both
  channel directions stop/start atomically.
* ``Channel.latency_ms`` — transient delay faults.
* :meth:`MessageNetwork._deliver` — duplicate-transfer injection replays
  a parked transmission-queue envelope straight at the target, which the
  network's exactly-once resolution must suppress.

The injector never *performs* recovery; it raises/fires, and the chaos
harness (:mod:`repro.chaos.explorer`) catches :class:`CrashPoint` and
rebuilds the crashed manager via :meth:`QueueManager.recover`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set

from repro.errors import ChannelError
from repro.mq.manager import XMIT_PREFIX
from repro.mq.network import MessageNetwork
from repro.mq.persistence import Journal
from repro.sim.scheduler import EventScheduler

__all__ = [
    "CrashPoint",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FAULT_KINDS",
]

#: Recognized fault kinds (the ``kind`` field of a :class:`FaultEvent`).
FAULT_KINDS = (
    "crash",       # kill a queue manager; harness recovers it from its journal
    "torn_tail",   # crash + tear the final journal record (file journals)
    "partition",   # stop both channel directions between two managers
    "heal",        # restart both channel directions
    "duplicate",   # redeliver a parked transfer (exactly-once must suppress)
    "delay",       # transiently raise a channel's latency
)


class CrashPoint(Exception):
    """A simulated process crash of one queue manager.

    Deliberately NOT an :class:`~repro.errors.MQError`: no production
    ``except MQError`` handler may swallow a crash.  It propagates out of
    whatever operation was running, through the scheduler, to the chaos
    harness's drain loop, which discards the manager object and rebuilds
    it from its journal — the presumed-abort crash model.

    Attributes:
        manager: Name of the crashed queue manager.
        phase: Where the crash fired (``"pre-flush"``, ``"post-flush"``,
            or ``"scheduled"`` for time-triggered crashes).
        tear: Whether the harness should tear the tail of the journal
            before recovery (torn-write simulation; file journals heal it
            on reopen).
    """

    def __init__(self, manager: str, phase: str, tear: bool = False) -> None:
        super().__init__(f"crash of {manager} at {phase}")
        self.manager = manager
        self.phase = phase
        self.tear = tear


@dataclass(frozen=True)
class FaultEvent:
    """One declarative fault.

    Exactly one trigger applies per event: ``at_ms`` schedules it at a
    virtual time; ``at_flush`` (crash kinds only) arms it on the named
    manager's N-th journal flush.  Flush-armed crashes fire on the first
    flush whose ordinal reaches ``at_flush`` — robust under shrinking,
    which can only reduce the flush count.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        manager: Target manager (crash/torn_tail).
        source, target: Manager pair (partition/heal/duplicate/delay).
        at_ms: Virtual-time trigger.
        at_flush: Flush-ordinal trigger (crash kinds only).
        phase: ``"pre"`` or ``"post"`` — which side of the flush the
            crash lands on (see module docstring).
        delay_ms: Added latency (delay kind).
        duration_ms: How long a partition/delay lasts; ``None`` means
            until :meth:`FaultInjector.heal_all`.
    """

    kind: str
    manager: Optional[str] = None
    source: Optional[str] = None
    target: Optional[str] = None
    at_ms: Optional[int] = None
    at_flush: Optional[int] = None
    phase: str = "pre"
    delay_ms: int = 0
    duration_ms: Optional[int] = None

    def validate(self) -> None:
        """Raise ``ValueError`` on a malformed event."""
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in ("crash", "torn_tail"):
            if not self.manager:
                raise ValueError(f"{self.kind} fault needs a manager")
            if (self.at_ms is None) == (self.at_flush is None):
                raise ValueError(
                    f"{self.kind} fault needs exactly one of at_ms/at_flush"
                )
            if self.phase not in ("pre", "post"):
                raise ValueError("crash phase must be 'pre' or 'post'")
        else:
            if not self.source or not self.target:
                raise ValueError(f"{self.kind} fault needs source and target")
            if self.at_ms is None:
                raise ValueError(f"{self.kind} fault needs at_ms")
            if self.at_flush is not None:
                raise ValueError(f"{self.kind} fault cannot use at_flush")
        if self.kind == "delay" and self.delay_ms <= 0:
            raise ValueError("delay fault needs delay_ms > 0")
        if self.duration_ms is not None and self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive when given")

    def to_dict(self) -> Dict:
        """Wire form (``None`` fields omitted for compact reproducers)."""
        out: Dict = {"kind": self.kind}
        for key in (
            "manager", "source", "target", "at_ms", "at_flush", "duration_ms"
        ):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.kind in ("crash", "torn_tail"):
            out["phase"] = self.phase
        if self.kind == "delay":
            out["delay_ms"] = self.delay_ms
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        """Decode the wire form; validates."""
        event = cls(
            kind=data["kind"],
            manager=data.get("manager"),
            source=data.get("source"),
            target=data.get("target"),
            at_ms=data.get("at_ms"),
            at_flush=data.get("at_flush"),
            phase=data.get("phase", "pre"),
            delay_ms=data.get("delay_ms", 0),
            duration_ms=data.get("duration_ms"),
        )
        event.validate()
        return event


@dataclass
class FaultPlan:
    """An ordered collection of fault events plus the seed that made it."""

    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    def validate(self) -> None:
        """Validate every event."""
        for event in self.events:
            event.validate()

    def without(self, index: int) -> "FaultPlan":
        """A copy with the ``index``-th event removed (shrinking step)."""
        return FaultPlan(
            seed=self.seed,
            events=[e for i, e in enumerate(self.events) if i != index],
        )

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "events": [e.to_dict() for e in self.events]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            events=[FaultEvent.from_dict(e) for e in data.get("events", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


class FaultInjector:
    """Executes a :class:`FaultPlan` against a live deployment.

    Args:
        plan: The fault plan (validated on install).
        network: The deployment's message network.
        scheduler: The shared simulation scheduler.

    The injector tracks journal flushes *per manager name* in its own
    counters, so a crash/recover cycle (which swaps the journal hooks via
    :meth:`attach_journal`) does not reset the flush ordinals — event
    ``at_flush=40`` means the fortieth flush of that manager's lifetime
    in the episode, across incarnations.
    """

    def __init__(
        self,
        plan: FaultPlan,
        network: MessageNetwork,
        scheduler: EventScheduler,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.network = network
        self.scheduler = scheduler
        self._flush_counts: Dict[str, int] = {}
        self._fired: Set[int] = set()
        #: (source, target) pairs this injector partitioned and has not
        #: yet healed — heal_all() repairs exactly these.
        self._open_partitions: Set[tuple] = set()
        self._installed = False

    # -- wiring -----------------------------------------------------------------

    def install(self, journals: Dict[str, Journal]) -> None:
        """Hook every journal and schedule every timed fault."""
        if self._installed:
            raise RuntimeError("injector already installed")
        self._installed = True
        for name, journal in journals.items():
            self.attach_journal(name, journal)
        for index, event in enumerate(self.plan.events):
            if event.at_ms is not None:
                self.scheduler.call_at(
                    event.at_ms,
                    lambda index=index, event=event: self._fire_timed(
                        index, event
                    ),
                    label=f"fault {event.kind} #{index}",
                )

    def attach_journal(self, name: str, journal: Journal) -> None:
        """(Re-)install the flush hooks on a manager's journal.

        Called at install time and again after every recovery (recovery
        may hand back the same journal object or, after a torn-tail, a
        fresh one over the same file).
        """
        journal.on_pre_flush = (
            lambda _groups, name=name: self._on_flush(name, "pre")
        )
        journal.on_post_flush = (
            lambda _groups, name=name: self._on_flush(name, "post")
        )

    # -- flush-armed crashes ----------------------------------------------------

    def _on_flush(self, name: str, phase: str) -> None:
        if phase == "pre":
            self._flush_counts[name] = self._flush_counts.get(name, 0) + 1
        count = self._flush_counts.get(name, 0)
        for index, event in enumerate(self.plan.events):
            if index in self._fired:
                continue
            if event.kind not in ("crash", "torn_tail"):
                continue
            if event.manager != name or event.at_flush is None:
                continue
            if event.phase != phase or count < event.at_flush:
                continue
            self._fired.add(index)
            crash = CrashPoint(
                name,
                phase=f"{phase}-flush",
                tear=event.kind == "torn_tail",
            )
            if phase == "pre":
                # Synchronous: the group being written is lost with the
                # process; the dispatching event aborts here.
                raise crash
            # Post-flush: the group is durable.  Raising here, mid-call,
            # would crash the *caller's* event half-way through its own
            # bookkeeping (e.g. a cross-manager transfer between delivery
            # and resolution), which no real single-process failure does
            # — the writing process dies, not its peer.  Fire the crash
            # at the next dispatch boundary instead.
            self.scheduler.call_later(
                0,
                lambda crash=crash: self._raise(crash),
                label=f"crash {name} post-flush",
            )
            return

    @staticmethod
    def _raise(crash: CrashPoint) -> None:
        raise crash

    # -- timed faults -----------------------------------------------------------

    def _fire_timed(self, index: int, event: FaultEvent) -> None:
        if index in self._fired:
            return
        self._fired.add(index)
        if event.kind in ("crash", "torn_tail"):
            raise CrashPoint(
                event.manager or "",
                phase="scheduled",
                tear=event.kind == "torn_tail",
            )
        if event.kind == "partition":
            self._fire_partition(event)
        elif event.kind == "heal":
            self._heal_pair(event.source or "", event.target or "")
        elif event.kind == "duplicate":
            self._fire_duplicate(event)
        elif event.kind == "delay":
            self._fire_delay(event)

    def _fire_partition(self, event: FaultEvent) -> None:
        a, b = event.source or "", event.target or ""
        try:
            self.network.partition(a, b)
        except ChannelError:
            return  # no such channel pair in this topology; fault is moot
        self._open_partitions.add((a, b))
        if event.duration_ms is not None:
            self.scheduler.call_later(
                event.duration_ms,
                lambda: self._heal_pair(a, b),
                label=f"heal {a}<->{b}",
            )

    def _heal_pair(self, a: str, b: str) -> None:
        try:
            self.network.heal(a, b)
        except ChannelError:
            return
        self._open_partitions.discard((a, b))

    def _fire_duplicate(self, event: FaultEvent) -> None:
        """Deliver a parked transfer immediately, without resolving it.

        The regular transfer attempt for the same message still runs
        later, so the target sees the message twice; the network's
        exactly-once resolution is expected to suppress the replay.  A
        no-op when nothing is parked at fire time.
        """
        try:
            chan = self.network.channel(event.source or "", event.target or "")
        except ChannelError:
            return
        source = self.network.manager(chan.source)
        xmit_name = XMIT_PREFIX + chan.target
        if not source.has_queue(xmit_name):
            return
        parked = next(iter(source.queue(xmit_name).browse()), None)
        if parked is None:
            return
        self.network._deliver(chan, parked)

    def _fire_delay(self, event: FaultEvent) -> None:
        try:
            chan = self.network.channel(event.source or "", event.target or "")
        except ChannelError:
            return
        chan.latency_ms += event.delay_ms
        if event.duration_ms is not None:
            def restore(chan=chan, delta=event.delay_ms) -> None:
                chan.latency_ms = max(0, chan.latency_ms - delta)

            self.scheduler.call_later(
                event.duration_ms,
                restore,
                label=f"undelay {chan.source}->{chan.target}",
            )

    # -- episode teardown --------------------------------------------------------

    def heal_all(self) -> int:
        """Repair every partition this injector opened; returns how many.

        Called at the end of an episode so the invariant check always
        runs against a connected, quiesced network (a message parked
        behind a never-healed partition is *delayed*, not lost — the
        paper's reliability model — so invariants are only meaningful
        once channels run again).
        """
        healed = 0
        for a, b in sorted(self._open_partitions):
            try:
                self.network.heal(a, b)
            except ChannelError:
                continue
            healed += 1
        self._open_partitions.clear()
        return healed

    def fired_count(self) -> int:
        """How many plan events have triggered so far."""
        return len(self._fired)
