"""Chaos over the wire: real ChannelEngines on a simulated lossy TCP pipe.

The ``transport=tcp`` chaos family.  Where the main chaos explorer
stresses the *messaging* semantics over the in-process
``MessageNetwork``, this module stresses the *wire protocol* itself —
the exact :class:`~repro.net.protocol.ChannelEngine` code the asyncio
transport runs in production — under a seeded simulated connection:

* byte chunks cross the pipe with latency, split so a connection drop
  can land **mid-frame** (the surviving half-frame must be discarded by
  the epoch reset, never mis-parsed);
* seeded **connection drops** kill both endpoints mid-transfer; bytes
  in flight die with the epoch, reconnection re-handshakes (HELLO
  resync) and retransmits;
* **deferred confirmations** model group commit holding the durability
  callback: a delivery's ack can cross a reconnect, forcing the
  duplicate-delivery-after-reconnect path through the id-dedup layer.

Invariants per episode (zero tolerance, like the main corpus):

1. every sent message is delivered exactly once (no loss, no dupes),
2. deliveries arrive in send order (cumulative-ack protocol promise),
3. the sender's in-doubt spool fully resolves (nothing stuck),
4. engine state converges (nothing unacked, cursor == confirmed).

Episodes derive from one seed (:meth:`WireEpisodeSpec.generate`) and
serialize to JSON reproducers, mirroring the main explorer.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.framing import FrameError
from repro.net.protocol import ChannelEngine, ProtocolError
from repro.sim.clock import SimulatedClock
from repro.sim.scheduler import EventScheduler

__all__ = [
    "WireFault",
    "WireEpisodeSpec",
    "WireEpisodeResult",
    "WireChaosHarness",
    "run_wire_episode",
    "run_wire_corpus",
]


@dataclass
class WireFault:
    """One seeded connection drop."""

    at_ms: int
    reconnect_after_ms: int

    def to_dict(self) -> Dict[str, int]:
        return {"at_ms": self.at_ms, "reconnect_after_ms": self.reconnect_after_ms}

    @classmethod
    def from_dict(cls, data: Dict) -> "WireFault":
        return cls(
            at_ms=int(data["at_ms"]),
            reconnect_after_ms=int(data["reconnect_after_ms"]),
        )


@dataclass
class WireEpisodeSpec:
    """One wire-chaos episode, fully derived from a seed."""

    seed: int = 0
    messages: int = 10
    gap_ms: int = 40
    latency_ms: int = 5
    window: int = 8
    initial_rto_ms: int = 80
    #: ms between a delivery and its durable confirmation (0 = immediate)
    confirm_delay_ms: int = 0
    faults: List[WireFault] = field(default_factory=list)

    @classmethod
    def generate(cls, seed: int) -> "WireEpisodeSpec":
        rng = random.Random(seed)
        messages = rng.randint(8, 24)
        gap = rng.randint(15, 80)
        spec = cls(
            seed=seed,
            messages=messages,
            gap_ms=gap,
            latency_ms=rng.randint(2, 15),
            window=rng.randint(3, 12),
            initial_rto_ms=rng.randint(50, 200),
            confirm_delay_ms=rng.choice([0, 0, rng.randint(5, 40)]),
        )
        horizon = messages * gap
        for _ in range(rng.randint(1, 3)):
            spec.faults.append(
                WireFault(
                    at_ms=rng.randint(5, max(horizon, 6)),
                    reconnect_after_ms=rng.randint(20, 300),
                )
            )
        spec.faults.sort(key=lambda fault: fault.at_ms)
        return spec

    def to_dict(self) -> Dict:
        return {
            "transport": "tcp",
            "seed": self.seed,
            "messages": self.messages,
            "gap_ms": self.gap_ms,
            "latency_ms": self.latency_ms,
            "window": self.window,
            "initial_rto_ms": self.initial_rto_ms,
            "confirm_delay_ms": self.confirm_delay_ms,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict) -> "WireEpisodeSpec":
        return cls(
            seed=int(data.get("seed", 0)),
            messages=int(data.get("messages", 10)),
            gap_ms=int(data.get("gap_ms", 40)),
            latency_ms=int(data.get("latency_ms", 5)),
            window=int(data.get("window", 8)),
            initial_rto_ms=int(data.get("initial_rto_ms", 80)),
            confirm_delay_ms=int(data.get("confirm_delay_ms", 0)),
            faults=[WireFault.from_dict(f) for f in data.get("faults", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "WireEpisodeSpec":
        return cls.from_dict(json.loads(text))


@dataclass
class WireEpisodeResult:
    """One wire episode's outcome and wire counters."""

    spec: WireEpisodeSpec
    violations: List[str]
    delivered: int = 0
    duplicates_suppressed: int = 0
    retransmits: int = 0
    reconnects: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


class WireChaosHarness:
    """Drives a sender/receiver engine pair over a scheduled lossy pipe."""

    def __init__(self, spec: WireEpisodeSpec) -> None:
        self.spec = spec
        self.clock = SimulatedClock()
        self.scheduler = EventScheduler(self.clock)
        self.sender = ChannelEngine(
            "QM.SRC", "sender", initial_rto_ms=float(spec.initial_rto_ms)
        )
        self.receiver = ChannelEngine(
            "QM.DST", "receiver", window=spec.window
        )
        #: message_id -> encoded record; the sender's durable in-doubt spool
        self.spool: Dict[str, Dict] = {}
        self.inflight: set = set()
        self.sent_order: List[str] = []
        self.delivered_order: List[str] = []
        self._delivered_ids: set = set()
        self.duplicates_suppressed = 0
        #: epoch fences in-flight bytes: a chunk scheduled under epoch N
        #: is discarded if the connection dropped (N bumped) before it
        #: lands — exactly TCP data dying with the connection.
        self.epoch = 0
        self.connected = False
        self._timer_version = 0
        #: per-direction watermark of the latest scheduled arrival time,
        #: so back-to-back flushes keep the stream FIFO: without it, two
        #: flushes <1 ms apart would interleave their split halves and
        #: corrupt frames that a real TCP stream would deliver in order.
        self._pipe_busy_until: Dict[int, float] = {}
        self.errors: List[str] = []

    # -- pipe ----------------------------------------------------------------

    def _now(self) -> float:
        return float(self.clock.now_ms())

    def _flush(self, engine: ChannelEngine) -> None:
        """Move an engine's outbound bytes onto the scheduled pipe.

        Chunks are split in two and delivered 1 ms apart, so a drop
        between the halves leaves the peer holding a truncated frame.
        """
        if not self.connected:
            return
        data = engine.data_to_send()
        if not data:
            return
        peer = self.receiver if engine is self.sender else self.sender
        epoch = self.epoch
        direction = id(peer)
        now = self._now()
        arrive_at = max(
            now + self.spec.latency_ms, self._pipe_busy_until.get(direction, 0.0)
        )
        cut = len(data) // 2 if len(data) > 1 else len(data)
        for chunk in (data[:cut], data[cut:]):
            if not chunk:
                continue
            self.scheduler.call_later(
                max(0, math.ceil(arrive_at - now)),
                lambda chunk=chunk, epoch=epoch, peer=peer: self._arrive(
                    peer, chunk, epoch
                ),
                label="wire-chunk",
            )
            arrive_at += 1  # second half lands 1 ms later: drops split frames
        self._pipe_busy_until[direction] = arrive_at

    def _arrive(self, engine: ChannelEngine, chunk: bytes, epoch: int) -> None:
        if epoch != self.epoch or not self.connected:
            return  # bytes died with their connection
        try:
            events = engine.receive_bytes(chunk, self._now())
        except (FrameError, ProtocolError) as exc:
            # Stream corruption inside one epoch is a real failure: the
            # pipe delivers reliably in order while connected, so the
            # engines must never mis-parse it.
            self.errors.append(f"{engine.role} stream error: {exc}")
            return
        if engine is self.sender:
            self._sender_events(events)
        else:
            self._receiver_events(events)
        self._flush(self.sender)
        self._flush(self.receiver)
        self._arm_timer()

    # -- sender side ---------------------------------------------------------

    def send(self, message_id: str) -> None:
        record = {"message_id": message_id, "body": {"chaos": True}}
        self.spool[message_id] = record
        self.sent_order.append(message_id)
        self._pump()

    def _pump(self) -> None:
        moved = False
        for message_id, record in list(self.spool.items()):
            if not self.sender.can_send():
                break
            if message_id in self.inflight:
                continue
            self.sender.send_message("IN.Q", record, message_id, self._now())
            self.inflight.add(message_id)
            moved = True
        if moved:
            self._flush(self.sender)
            self._arm_timer()

    def _sender_events(self, events: List) -> None:
        for event in events:
            if event.kind == "delivered":
                self.inflight.discard(event.message_id)
                self.spool.pop(event.message_id, None)
            if event.kind in ("delivered", "handshaken", "window"):
                self._pump()

    # -- receiver side -------------------------------------------------------

    def _receiver_events(self, events: List) -> None:
        for event in events:
            if event.kind != "message":
                continue
            message_id = event.message["message_id"]
            if message_id in self._delivered_ids:
                # Redelivery after resync: suppress, but still confirm so
                # the sender resolves its spool copy.
                self.duplicates_suppressed += 1
                self._confirm(event.seq)
                continue
            self._delivered_ids.add(message_id)
            self.delivered_order.append(message_id)
            if self.spec.confirm_delay_ms:
                # Group commit holding the durability callback: the
                # confirmation lands later — possibly after a reconnect.
                self.scheduler.call_later(
                    self.spec.confirm_delay_ms,
                    lambda seq=event.seq: self._confirm(seq),
                    label="wire-confirm",
                )
            else:
                self._confirm(event.seq)

    def _confirm(self, seq: int) -> None:
        self.receiver.confirm_delivery(seq)
        self._flush(self.receiver)

    # -- retransmission timer ------------------------------------------------

    def _arm_timer(self) -> None:
        due = self.sender.next_timer(self._now())
        if due is None:
            return
        self._timer_version += 1
        version = self._timer_version
        # Ceil: the RTO is fractional but the sim clock ticks whole ms;
        # truncating would re-arm a 0 ms timer at the same instant forever.
        delay = max(0, math.ceil(due - self._now()))
        self.scheduler.call_later(
            delay, lambda: self._fire_timer(version), label="wire-retx"
        )

    def _fire_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # superseded by a newer deadline
        if self.sender.on_timer(self._now()):
            self._flush(self.sender)
        self._arm_timer()

    # -- connection lifecycle --------------------------------------------------

    def establish(self) -> None:
        self.epoch += 1
        self.connected = True
        self.receiver.connection_established(self._now())
        self.sender.connection_established(self._now())
        self._flush(self.sender)
        self._flush(self.receiver)
        self._arm_timer()

    def drop(self) -> None:
        if not self.connected:
            return
        self.connected = False
        self.epoch += 1
        self.sender.connection_lost(self._now())
        self.receiver.connection_lost(self._now())
        self._timer_version += 1  # cancel the pending retransmit deadline

    # -- episode ---------------------------------------------------------------

    def schedule(self) -> None:
        for index in range(self.spec.messages):
            self.scheduler.call_later(
                index * self.spec.gap_ms,
                lambda index=index: self.send(f"m{index}"),
                label="wire-send",
            )
        for fault in self.spec.faults:
            self.scheduler.call_later(
                fault.at_ms, self.drop, label="wire-drop"
            )
            self.scheduler.call_later(
                fault.at_ms + fault.reconnect_after_ms,
                self._reconnect,
                label="wire-reconnect",
            )

    def _reconnect(self) -> None:
        if not self.connected:
            self.establish()

    def check(self) -> List[str]:
        violations = list(self.errors)
        if self.delivered_order != self.sent_order:
            missing = set(self.sent_order) - set(self.delivered_order)
            extras = [
                message_id
                for message_id in self.delivered_order
                if self.delivered_order.count(message_id) > 1
            ]
            if missing:
                violations.append(f"lost messages: {sorted(missing)}")
            if extras:
                violations.append(f"duplicate deliveries: {sorted(set(extras))}")
            if not missing and not extras:
                violations.append(
                    "delivery order diverged from send order: "
                    f"{self.delivered_order} != {self.sent_order}"
                )
        if self.spool:
            violations.append(
                f"unresolved spool entries: {sorted(self.spool)}"
            )
        if self.sender.in_flight:
            violations.append(
                f"sender still has {self.sender.in_flight} unacked frames"
            )
        if self.receiver._confirmed != self.receiver._cursor:
            violations.append(
                f"receiver confirmed {self.receiver._confirmed} lags "
                f"cursor {self.receiver._cursor}"
            )
        return violations


def run_wire_episode(spec: WireEpisodeSpec) -> WireEpisodeResult:
    """Run one seeded wire episode to quiescence and check invariants."""
    harness = WireChaosHarness(spec)
    harness.establish()
    harness.schedule()
    harness.scheduler.run_all(max_events=200_000)
    if not harness.connected:
        # The last drop outlived every reconnect event; repair the link
        # (the episode's "heal_all") and let retransmission finish.
        harness.establish()
        harness.scheduler.run_all(max_events=200_000)
    return WireEpisodeResult(
        spec=spec,
        violations=harness.check(),
        delivered=len(harness.delivered_order),
        duplicates_suppressed=harness.duplicates_suppressed,
        retransmits=harness.sender.metrics["retransmits"],
        reconnects=harness.sender.metrics["reconnects"],
    )


def run_wire_corpus(
    episodes: int, base_seed: int = 0, repro_dir: Optional[str] = None
) -> Dict[str, object]:
    """Run a seeded wire-chaos corpus; returns an aggregate summary.

    Shape mirrors :func:`repro.harness.runner.run_chaos_corpus` so the
    smoke benchmark can merge both corpora into one report; the
    ``faults_fired`` counter reports connection drops that actually
    severed an established link.  A failing episode's spec JSON *is*
    its reproducer (episodes are pure functions of the spec), written
    to ``repro_dir`` as ``CHAOS_repro_wire_seed<N>.json``.
    """
    summary: Dict[str, object] = {
        "transport": "tcp",
        "episodes": episodes,
        "base_seed": base_seed,
        "failures": 0,
        "violations": [],
        "repro_paths": [],
        "sends": 0,
        "delivered": 0,
        "duplicates_suppressed": 0,
        "retransmits": 0,
        "reconnects": 0,
        "faults_fired": 0,
    }
    for i in range(episodes):
        seed = base_seed + i
        spec = WireEpisodeSpec.generate(seed)
        result = run_wire_episode(spec)
        summary["sends"] += result.spec.messages  # type: ignore[operator]
        summary["delivered"] += result.delivered  # type: ignore[operator]
        summary["duplicates_suppressed"] += (  # type: ignore[operator]
            result.duplicates_suppressed
        )
        summary["retransmits"] += result.retransmits  # type: ignore[operator]
        summary["reconnects"] += result.reconnects  # type: ignore[operator]
        summary["faults_fired"] += result.reconnects  # type: ignore[operator]
        if not result.ok:
            summary["failures"] += 1  # type: ignore[operator]
            summary["violations"].extend(  # type: ignore[union-attr]
                f"seed={seed} {violation}" for violation in result.violations
            )
            if repro_dir is not None:
                path = f"{repro_dir}/CHAOS_repro_wire_seed{seed}.json"
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(spec.to_json())
                    handle.write("\n")
                summary["repro_paths"].append(path)  # type: ignore[union-attr]
    return summary
