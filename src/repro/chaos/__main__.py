"""CLI entry point: ``python -m repro.chaos``.

Runs a corpus of seeded chaos episodes (or replays one reproducer) and
exits non-zero on any invariant violation, shrinking each failure to a
minimal JSON reproducer first.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.chaos.explorer import ChaosExplorer, EpisodeSpec


def _report_one(result) -> None:
    status = "ok" if result.ok else "VIOLATION"
    print(
        f"episode seed={result.spec.seed} {status}: sends={result.sends}"
        f" crashes={result.crashes} faults={result.faults_fired}"
        f" outcomes={result.outcomes}"
    )
    for violation in result.violations:
        print(f"  {violation}")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded chaos exploration of the conditional-messaging"
        " implementation.",
    )
    parser.add_argument(
        "--episodes", type=int, default=50, help="episodes to run (default 50)"
    )
    parser.add_argument(
        "--base-seed", type=int, default=0, help="first episode seed"
    )
    parser.add_argument(
        "--journal",
        choices=("memory", "file", "sqlite"),
        default="memory",
        help="journal backend (file enables torn-tail faults; sqlite"
        " exercises engine-transaction commit groups)",
    )
    parser.add_argument(
        "--replay",
        metavar="REPRO_JSON",
        help="replay one reproducer file instead of exploring",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=".",
        help="directory for minimized reproducer files (default: cwd)",
    )
    args = parser.parse_args(argv)

    explorer = ChaosExplorer()
    if args.replay:
        with open(args.replay, "r", encoding="utf-8") as handle:
            result = explorer.replay(handle.read())
        _report_one(result)
        return 0 if result.ok else 1

    failures = 0
    for i in range(args.episodes):
        seed = args.base_seed + i
        spec = EpisodeSpec.generate(seed, journal=args.journal)
        result = explorer.run_episode(spec)
        status = "ok" if result.ok else "VIOLATION"
        print(
            f"episode seed={seed} {status}: sends={result.sends}"
            f" crashes={result.crashes} faults={result.faults_fired}"
            f" outcomes={result.outcomes}"
        )
        if not result.ok:
            failures += 1
            for violation in result.violations:
                print(f"  {violation}")
            minimal = explorer.shrink(spec)
            path = f"{args.out}/CHAOS_repro_seed{seed}.json"
            explorer.write_repro(minimal, path)
            print(f"  minimized reproducer: {path}")
    print(
        json.dumps(
            {
                "episodes": args.episodes,
                "base_seed": args.base_seed,
                "journal": args.journal,
                "failures": failures,
            }
        )
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
