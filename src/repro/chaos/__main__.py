"""CLI entry point: ``python -m repro.chaos``.

Runs a corpus of seeded chaos episodes (or replays one reproducer) and
exits non-zero on any invariant violation, shrinking each failure to a
minimal JSON reproducer first.

``--bounded`` switches to the exhaustive small-scope checker
(:mod:`repro.chaos.bounded`): the pinned canonical configuration plus a
few generated rule sets are enumerated to fixpoint, state counts land
in ``CHAOS_bounded.json``, and the exit code reflects both invariant
violations and — with ``--baseline`` — a state-count collapse against a
committed earlier report (the "checker stopped exploring" canary).
``--replay`` accepts reproducers from either explorer, dispatching on
their ``kind`` field.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.chaos.bounded import BoundedExplorer
from repro.chaos.explorer import ChaosExplorer, EpisodeSpec


def _report_one(result) -> None:
    status = "ok" if result.ok else "VIOLATION"
    print(
        f"episode seed={result.spec.seed} {status}: sends={result.sends}"
        f" crashes={result.crashes} faults={result.faults_fired}"
        f" outcomes={result.outcomes} timeline={result.timeline_hash}"
    )
    for violation in result.violations:
        print(f"  {violation}")


def _run_bounded(args) -> int:
    """Exhaustive mode: enumerate small configs, write CHAOS_bounded.json."""
    from repro.harness.runner import run_bounded_check

    summary = run_bounded_check(
        gen_seeds=args.gen_seeds,
        crash_budget=args.crash_budget,
        max_schedules=args.max_schedules,
        repro_dir=args.out,
        baseline_path=args.baseline,
    )
    for name, entry in summary["configs"].items():
        status = "ok" if not entry["violations"] else "VIOLATION"
        print(
            f"bounded {name} {status}: states={entry['states']}"
            f" schedules={entry['schedules']}"
            f" transitions={entry['transitions']}"
            f" pruned={entry['pruned']} complete={entry['complete']}"
        )
    for violation in summary["violations"]:
        print(f"  {violation}")
    for path in summary["repro_paths"]:
        print(f"  reproducer: {path}")
    for message in summary["gate_failures"]:
        print(f"GATE FAILURE: {message}")

    out_path = f"{args.out}/CHAOS_bounded.json"
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        json.dumps(
            {
                "bounded": out_path,
                "failures": summary["failures"],
                "gate_failures": len(summary["gate_failures"]),
            }
        )
    )
    return 1 if summary["failures"] or summary["gate_failures"] else 0


def _parse_seed_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip() != ""]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded chaos exploration of the conditional-messaging"
        " implementation.",
    )
    parser.add_argument(
        "--episodes", type=int, default=50, help="episodes to run (default 50)"
    )
    parser.add_argument(
        "--base-seed", type=int, default=0, help="first episode seed"
    )
    parser.add_argument(
        "--journal",
        choices=("memory", "file", "sqlite"),
        default="memory",
        help="journal backend (file enables torn-tail faults; sqlite"
        " exercises engine-transaction commit groups)",
    )
    parser.add_argument(
        "--replay",
        metavar="REPRO_JSON",
        help="replay one reproducer file instead of exploring",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=".",
        help="directory for minimized reproducer files (default: cwd)",
    )
    parser.add_argument(
        "--bounded",
        action="store_true",
        help="exhaustive small-scope mode: enumerate every interleaving"
        " and crash point of the canonical + generated rule sets,"
        " writing state counts to CHAOS_bounded.json",
    )
    parser.add_argument(
        "--crash-budget",
        type=int,
        default=1,
        help="crashes enumerated per trajectory in --bounded (default 1)",
    )
    parser.add_argument(
        "--gen-seeds",
        type=_parse_seed_list,
        default=[1, 2],
        metavar="S1,S2,...",
        help="generator seeds for extra --bounded rule sets"
        " (default '1,2'; pass '' for canonical only)",
    )
    parser.add_argument(
        "--max-schedules",
        type=int,
        default=6_000,
        help="safety cap on terminal schedules per --bounded config",
    )
    parser.add_argument(
        "--baseline",
        metavar="BOUNDED_JSON",
        help="earlier CHAOS_bounded.json; fail if a config now explores"
        " fewer than half its baseline states",
    )
    args = parser.parse_args(argv)

    if args.replay:
        with open(args.replay, "r", encoding="utf-8") as handle:
            text = handle.read()
        if json.loads(text).get("kind") == "bounded":
            violations = BoundedExplorer.replay_repro(json.loads(text))
            status = "ok" if not violations else "VIOLATION"
            print(f"bounded replay {status}")
            for violation in violations:
                print(f"  {violation}")
            return 0 if not violations else 1
        result = ChaosExplorer().replay(text)
        _report_one(result)
        return 0 if result.ok else 1

    if args.bounded:
        return _run_bounded(args)

    explorer = ChaosExplorer()

    failures = 0
    for i in range(args.episodes):
        seed = args.base_seed + i
        spec = EpisodeSpec.generate(seed, journal=args.journal)
        result = explorer.run_episode(spec)
        status = "ok" if result.ok else "VIOLATION"
        print(
            f"episode seed={seed} {status}: sends={result.sends}"
            f" crashes={result.crashes} faults={result.faults_fired}"
            f" outcomes={result.outcomes}"
        )
        if not result.ok:
            failures += 1
            for violation in result.violations:
                print(f"  {violation}")
            minimal = explorer.shrink(spec)
            path = f"{args.out}/CHAOS_repro_seed{seed}.json"
            explorer.write_repro(minimal, path)
            print(f"  minimized reproducer: {path}")
    print(
        json.dumps(
            {
                "episodes": args.episodes,
                "base_seed": args.base_seed,
                "journal": args.journal,
                "failures": failures,
            }
        )
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
