"""Seeded random-walk chaos exploration with shrinking reproducers.

The :class:`ChaosExplorer` runs *episodes*: a full conditional-messaging
deployment (a :class:`~repro.workloads.scenarios.Testbed`) drives a
seeded workload while a :class:`~repro.chaos.faults.FaultInjector`
crashes managers at journal-flush boundaries, partitions channels, tears
journal tails, duplicates transfers, and delays channels — all from one
top-level seed, so every episode replays exactly.

After the workload and all faults play out, the episode heals every
partition, re-drives parked transfers, recovers any crashed manager,
sweeps every destination queue (delivering compensations, cancelling
original/compensation pairs), and hands the quiesced deployment to the
:class:`~repro.chaos.invariants.InvariantSuite`.

On a violation, :meth:`ChaosExplorer.shrink` greedily removes fault
events while the violation persists, producing a minimal reproducer that
:meth:`ChaosExplorer.replay` re-runs from its JSON form.

The workload driver here deliberately does NOT reuse
:class:`~repro.workloads.generator.WorkloadGenerator`'s scripted
receivers: those capture receiver/service objects at schedule time,
which a crash turns into zombies.  Every callback below re-resolves the
current incarnation through the harness at fire time, so application
activity naturally survives crash/recover cycles — exactly like real
clients reconnecting to a restarted queue manager.
"""

from __future__ import annotations

import json
import random
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.faults import CrashPoint, FaultEvent, FaultInjector, FaultPlan
from repro.chaos.invariants import (
    ChaosContext,
    EpisodeLedger,
    InvariantSuite,
    SendRecord,
    Violation,
)
from repro.core import control
from repro.core.builder import destination, destination_set
from repro.core.logqueues import SENDER_LOG_QUEUE, SenderLogEntry
from repro.core.receiver import ConditionalMessagingReceiver, ReceivedMessage
from repro.core.service import ConditionalMessagingService
from repro.mq.manager import QueueManager
from repro.mq.persistence import (
    FileJournal,
    Journal,
    journal_factory_for,
)
from repro.obs.trace import FlightRecorder
from repro.sim.determinism import deterministic_ids
from repro.workloads.generator import WorkloadSpec
from repro.workloads.scenarios import ReceiverNode, Testbed

__all__ = [
    "EpisodeSpec",
    "EpisodeResult",
    "ChaosHarness",
    "ChaosExplorer",
]

#: Queue-sweep rounds after the last drain; two suffice (a sweep can
#: itself release traffic — late acks, compensation deliveries — that
#: the next round must observe), one extra for margin.
FINAL_SWEEP_ROUNDS = 3

#: Scheduler budget per drain; generous, but bounds a runaway episode.
MAX_EVENTS_PER_DRAIN = 200_000


@dataclass
class EpisodeSpec:
    """Everything one chaos episode needs, derived from one seed.

    ``generate(seed)`` derives the topology, the workload, and the fault
    plan from a single RNG, so the seed alone reproduces the episode;
    ``to_json``/``from_json`` serialize a (possibly shrunk) spec as a
    standalone reproducer.
    """

    seed: int = 0
    receivers: int = 3
    latency_ms: int = 5
    jitter_ms: int = 0
    journal: str = "memory"  # "memory" | "file" | "sqlite" | "binfile" | "sqlstore"
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    plan: FaultPlan = field(default_factory=FaultPlan)

    @property
    def receiver_names(self) -> List[str]:
        return [f"R{i}" for i in range(1, self.receivers + 1)]

    @property
    def manager_names(self) -> List[str]:
        return [Testbed.SENDER] + [f"QM.{n}" for n in self.receiver_names]

    @classmethod
    def generate(cls, seed: int, journal: str = "memory") -> "EpisodeSpec":
        """Derive a full episode (topology + workload + faults) from a seed."""
        rng = random.Random(seed)
        receivers = rng.randint(3, 4)
        messages = rng.randint(5, 12)
        window = rng.randint(3_000, 9_000)
        gap = rng.randint(150, 600)
        workload = WorkloadSpec(
            messages=messages,
            fan_out=rng.randint(2, 3),
            pick_up_window_ms=window,
            processing_fraction=rng.choice([0.0, 0.5]),
            processing_window_ms=window * 3,
            on_time_probability=rng.uniform(0.75, 1.0),
            abort_probability=rng.choice([0.0, 0.2]),
            inter_send_gap_ms=gap,
            seed=seed,
        )
        spec = cls(
            seed=seed,
            receivers=receivers,
            latency_ms=rng.randint(2, 25),
            jitter_ms=rng.randint(0, 8),
            journal=journal,
            workload=workload,
            plan=FaultPlan(seed=seed),
        )
        horizon = messages * gap + window
        kinds = ["crash", "crash", "partition", "duplicate", "delay"]
        if journal in ("file", "binfile"):
            # Only the file journals model torn writes (line-oriented and
            # binary-codec alike); the sqlite backend's engine
            # transactions cannot tear.
            kinds.append("torn_tail")
        receiver_managers = [f"QM.{n}" for n in spec.receiver_names]
        for _ in range(rng.randint(1, 4)):
            kind = rng.choice(kinds)
            if kind in ("crash", "torn_tail"):
                event = FaultEvent(
                    kind=kind,
                    manager=rng.choice(spec.manager_names),
                    phase=rng.choice(["pre", "post"]),
                    **(
                        {"at_flush": rng.randint(2, 60)}
                        if rng.random() < 0.7
                        else {"at_ms": rng.randint(100, horizon)}
                    ),
                )
            elif kind == "partition":
                event = FaultEvent(
                    kind="partition",
                    source=Testbed.SENDER,
                    target=rng.choice(receiver_managers),
                    at_ms=rng.randint(100, horizon),
                    duration_ms=rng.randint(500, 4_000),
                )
            elif kind == "duplicate":
                event = FaultEvent(
                    kind="duplicate",
                    source=Testbed.SENDER,
                    target=rng.choice(receiver_managers),
                    at_ms=rng.randint(50, horizon),
                )
            else:
                event = FaultEvent(
                    kind="delay",
                    source=Testbed.SENDER,
                    target=rng.choice(receiver_managers),
                    at_ms=rng.randint(100, horizon),
                    delay_ms=rng.randint(50, 500),
                    duration_ms=rng.randint(500, 3_000),
                )
            spec.plan.events.append(event)
        return spec

    def to_dict(self) -> Dict:
        workload = {
            "messages": self.workload.messages,
            "fan_out": self.workload.fan_out,
            "pick_up_window_ms": self.workload.pick_up_window_ms,
            "processing_fraction": self.workload.processing_fraction,
            "processing_window_ms": self.workload.processing_window_ms,
            "on_time_probability": self.workload.on_time_probability,
            "abort_probability": self.workload.abort_probability,
            "inter_send_gap_ms": self.workload.inter_send_gap_ms,
            "seed": self.workload.seed,
        }
        return {
            "seed": self.seed,
            "receivers": self.receivers,
            "latency_ms": self.latency_ms,
            "jitter_ms": self.jitter_ms,
            "journal": self.journal,
            "workload": workload,
            "plan": self.plan.to_dict(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict) -> "EpisodeSpec":
        return cls(
            seed=int(data.get("seed", 0)),
            receivers=int(data.get("receivers", 3)),
            latency_ms=int(data.get("latency_ms", 5)),
            jitter_ms=int(data.get("jitter_ms", 0)),
            journal=str(data.get("journal", "memory")),
            workload=WorkloadSpec(**data.get("workload", {})),
            plan=FaultPlan.from_dict(data.get("plan", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "EpisodeSpec":
        return cls.from_dict(json.loads(text))


@dataclass
class EpisodeResult:
    """One episode's outcome."""

    spec: EpisodeSpec
    violations: List[Violation]
    sends: int = 0
    crashes: int = 0
    faults_fired: int = 0
    outcomes: int = 0
    #: SHA-256 of the episode's flight-recorder timeline.  Episodes run
    #: under deterministic ids, so replaying the same spec — in this
    #: process or a fresh one — must reproduce this hash byte-exactly.
    timeline_hash: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations


class ChaosHarness:
    """One episode's deployment: testbed + injector + ledger + recovery.

    The harness owns the crash procedure — the one piece the injector
    deliberately does not implement.  ``crash(name)`` discards the named
    manager object and rebuilds it from its (surviving) journal, exactly
    the presumed-abort model :meth:`QueueManager.recover` implements,
    then re-wires the network, the sender-side service or the receiver
    endpoint, the fault hooks, and re-drives parked transfers.
    """

    def __init__(self, spec: EpisodeSpec, journal_dir: Optional[str] = None) -> None:
        self.spec = spec
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if spec.journal != "memory":
            # Always a fresh directory per harness: journal files must
            # never leak between episodes (or between the re-runs of one
            # seed that shrinking performs).  ``journal_dir`` only picks
            # where the per-episode directory lives.
            self._tmpdir = tempfile.TemporaryDirectory(
                prefix=f"chaos-journal-seed{spec.seed}-", dir=journal_dir
            )
            journal_dir = self._tmpdir.name
        self.journal_dir = journal_dir
        self.recorder = FlightRecorder(capacity=50_000)
        self.recorder.metadata.update(
            {"seed": spec.seed, "plan": spec.plan.to_dict(), "journal": spec.journal}
        )
        self.testbed = Testbed(
            spec.receiver_names,
            latency_ms=max(1, spec.latency_ms),
            jitter_ms=spec.jitter_ms,
            seed=spec.seed,
            journaled=True,
            journal_factory=self._make_journal,
            tracer=self.recorder,
        )
        self.clock = self.testbed.clock
        self.scheduler = self.testbed.scheduler
        self.network = self.testbed.network
        self.journals: Dict[str, Journal] = self.testbed.journals
        self.sender_name = Testbed.SENDER
        self.managers: Dict[str, QueueManager] = {
            self.sender_name: self.testbed.sender_manager
        }
        for node in self.testbed.receivers.values():
            self.managers[node.manager.name] = node.manager
        self.service: ConditionalMessagingService = self.testbed.service
        self.receivers: Dict[str, ReceiverNode] = self.testbed.receivers
        self.ledger = EpisodeLedger()
        self.injector = FaultInjector(spec.plan, self.network, self.scheduler)
        self._workload_rng = random.Random(spec.workload.seed)

    def _make_journal(self, name: str) -> Journal:
        # sync="none": chaos cares about record ordering, atomicity, and
        # torn tails, not fsync cost; the tear is injected explicitly.
        factory = journal_factory_for(
            self.spec.journal, self.journal_dir, sync="none"
        )
        return factory(name)

    # -- episode lifecycle -------------------------------------------------------

    def install_faults(self) -> None:
        """Hook journals and schedule timed faults."""
        self.injector.install(self.journals)

    def schedule_workload(self) -> None:
        """Schedule every send and every receiver reaction, late-bound."""
        spec = self.spec.workload
        names = self.spec.receiver_names
        rng = self._workload_rng
        for index in range(spec.messages):
            send_at = index * spec.inter_send_gap_ms
            start = (index * spec.fan_out) % len(names)
            chosen = [
                names[(start + i) % len(names)] for i in range(spec.fan_out)
            ]
            wants_processing = rng.random() < spec.processing_fraction
            reactions: List[Tuple[str, int, str, int]] = []
            for name in chosen:
                on_time = rng.random() < spec.on_time_probability
                aborts = (
                    wants_processing and rng.random() < spec.abort_probability
                )
                react = (
                    rng.randint(1, max(spec.pick_up_window_ms // 2, 1))
                    if on_time
                    else spec.pick_up_window_ms * 2
                )
                mode = (
                    "abort"
                    if aborts
                    else ("commit" if wants_processing else "read")
                )
                process_ms = min(1_000, spec.processing_window_ms)
                reactions.append((name, react, mode, process_ms))
            self.scheduler.call_later(
                send_at,
                lambda chosen=chosen, wants=wants_processing, reactions=reactions: (
                    self._fire_send(chosen, wants, reactions)
                ),
                label=f"chaos-send #{index}",
            )

    def _fire_send(
        self,
        chosen: List[str],
        wants_processing: bool,
        reactions: List[Tuple[str, int, str, int]],
    ) -> None:
        spec = self.spec.workload
        leaves = [
            destination(
                self.testbed.queue_of(name),
                manager=f"QM.{name}",
                recipient=name,
            )
            for name in chosen
        ]
        if wants_processing:
            condition = destination_set(
                *leaves,
                msg_pick_up_time=spec.pick_up_window_ms,
                msg_processing_time=spec.processing_window_ms,
            )
        else:
            condition = destination_set(
                *leaves, msg_pick_up_time=spec.pick_up_window_ms
            )
        # A pre-flush crash inside send_message propagates out before the
        # cmid exists; the durable half of such an interrupted send (if
        # any) is learned from DS.SLOG.Q during recovery.
        cmid = self.service.send_message(
            {"chaos": True}, condition, compensation={"undo": True}
        )
        self.ledger.record_send(
            SendRecord(
                cmid=cmid,
                destinations=[
                    (f"QM.{name}", self.testbed.queue_of(name))
                    for name in chosen
                ],
                has_compensation=True,
            )
        )
        for name, react, mode, process_ms in reactions:
            self.scheduler.call_later(
                react,
                lambda name=name, mode=mode, process_ms=process_ms: (
                    self._react(name, mode, process_ms)
                ),
                label=f"chaos-react {name}",
            )

    # -- receiver reactions (late-bound through self.receivers) ------------------

    def _react(self, name: str, mode: str, process_ms: int) -> None:
        node = self.receivers[name]
        queue_name = self.testbed.queue_of(name)
        receiver = node.receiver
        if receiver.in_transaction:
            # Busy with an earlier message's transaction; retry shortly
            # (single-threaded application, like the rest of the
            # simulation).  This applies to plain reads too: a
            # read_message issued now would silently join the open
            # transaction, and a rollback would un-deliver a message the
            # driver already counted as observed.
            self.scheduler.call_later(
                max(process_ms, 1),
                lambda: self._react(name, mode, process_ms),
                label=f"chaos-react {name}",
            )
            return
        if mode == "read":
            self._record(name, receiver.read_message(queue_name))
            return
        receiver.begin_tx()
        received = receiver.read_message(queue_name)
        if received is None:
            receiver.abort_tx()
            return
        self.scheduler.call_later(
            process_ms,
            lambda: self._complete_tx(name, receiver, received, mode),
            label=f"chaos-process {name}",
        )

    def _complete_tx(
        self,
        name: str,
        receiver: ConditionalMessagingReceiver,
        received: ReceivedMessage,
        mode: str,
    ) -> None:
        if self.receivers[name].receiver is not receiver:
            # The manager crashed since the read: the transaction died
            # with it (presumed abort — the locked message is live again
            # in the recovered state), so there is nothing to complete.
            return
        if mode == "commit":
            receiver.commit_tx()
            self._record(name, received)
        else:
            receiver.abort_tx()

    def _record(self, name: str, received: Optional[ReceivedMessage]) -> None:
        """Ledger the application-visible effect of one delivered message."""
        if received is None or received.cmid is None:
            return
        manager_name = f"QM.{name}"
        if received.kind == control.KIND_ORIGINAL:
            self.ledger.record_read(received.cmid, manager_name)
        elif received.kind == control.KIND_COMPENSATION:
            self.ledger.record_compensation(received.cmid, manager_name)

    def sweep(self) -> int:
        """Drain every destination queue once, recording what comes out.

        Sweeps model the application eventually reading its queues: they
        deliver pending compensations, cancel co-resident pairs, and
        consume late originals (whose acks the decided evaluations
        drop).  Returns the number of messages the applications saw.
        """
        seen = 0
        for name in list(self.receivers):
            node = self.receivers[name]
            if node.receiver.in_transaction:
                # A reaction whose completion never fired (e.g. scheduled
                # beyond the horizon) left a transaction open; the episode
                # is over, so presume abort — exactly what a process exit
                # would do — before the non-transactional sweep.
                node.receiver.abort_tx()
            for received in node.receiver.read_all(self.testbed.queue_of(name)):
                self._record(name, received)
                seen += 1
        return seen

    # -- the crash procedure -----------------------------------------------------

    def crash(self, manager_name: str, tear: bool = False) -> QueueManager:
        """Kill and recover one queue manager, rewiring everything above it."""
        self.ledger.record_crash(self.clock.now_ms(), manager_name)
        old = self.managers[manager_name]
        # The old incarnation must never write again: detach its journal
        # (belt) and cancel its pending evaluation timeouts (braces) —
        # those are the only scheduled events bound to dead objects that
        # could still fire; everything the harness schedules re-resolves
        # through self.receivers / self.service at fire time.
        old.journal = None
        old.store = None
        if manager_name == self.sender_name:
            self.scheduler.cancel_matching(
                lambda label: label.startswith("eval-timeout")
            )
        journal = self.journals[manager_name]
        if tear:
            journal = self._tear_journal(manager_name, journal)
        recovered = QueueManager.recover(
            manager_name,
            self.clock,
            journal,
            tracer=self.recorder,
        )
        self.managers[manager_name] = recovered
        self.network.reattach_manager(recovered)
        if manager_name == self.sender_name:
            self.testbed.sender_manager = recovered
            self.service = ConditionalMessagingService(
                recovered, scheduler=self.scheduler
            )
            self.testbed.service = self.service
            # Sends the crash interrupted mid-call never returned a cmid
            # to the application; the durable sender log knows them.
            for message in recovered.browse(SENDER_LOG_QUEUE):
                entry = SenderLogEntry.from_message(message)
                if entry.cmid not in self.ledger.sends:
                    self.ledger.record_send(
                        SendRecord(
                            cmid=entry.cmid,
                            destinations=[
                                (d["manager"], d["queue"])
                                for d in entry.destinations
                            ],
                            has_compensation=entry.has_compensation,
                            recovered=True,
                        )
                    )
            self.service.recover_from_log()
        else:
            short = manager_name[len("QM."):]
            node = ReceiverNode(
                name=short,
                manager=recovered,
                receiver=ConditionalMessagingReceiver(
                    recovered, recipient_id=short
                ),
            )
            self.receivers[short] = node
            self.testbed.receivers[short] = node
        # Flush ordinals continue across incarnations; only the hook
        # installation must be refreshed (the tear may have produced a
        # fresh journal object over the same file).
        self.injector.attach_journal(manager_name, journal)
        self.network.redrive()
        return recovered

    def _tear_journal(self, manager_name: str, journal: Journal) -> Journal:
        """Append a torn (truncated) record and reopen the journal.

        Only file journals model torn writes; reopening runs
        :class:`FileJournal`'s tail-healing, exactly what a real restart
        over a torn log does.  Memory journals crash cleanly; sqlite's
        engine transactions cannot tear.  The tear is written in the
        journal's own codec — a chopped JSON line for the line-oriented
        store, a frame cut short mid-payload for the binary codec — and
        the reopened journal keeps that codec.
        """
        if not isinstance(journal, FileJournal):
            return journal
        path = journal.path
        codec_name = journal.codec.name
        torn = journal.codec.encode_record(
            {"op": "put", "queue": "TORN.Q", "message": {"torn": True}}
        )[:-5]
        journal.close()
        with open(path, "ab") as handle:
            handle.write(torn)
        fresh = FileJournal(path, sync="none", codec=codec_name)
        self.journals[manager_name] = fresh
        return fresh

    # -- inspection ---------------------------------------------------------------

    def context(self) -> ChaosContext:
        """The quiesced deployment, packaged for the invariant suite."""
        return ChaosContext(
            sender_name=self.sender_name,
            managers=dict(self.managers),
            journals=dict(self.journals),
            ledger=self.ledger,
            recorder=self.recorder,
        )

    def close(self) -> None:
        """Release journal store handles and any temporary directory."""
        for journal in self.journals.values():
            journal.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None


class ChaosExplorer:
    """Runs seeded episodes, shrinks failures to minimal reproducers."""

    def __init__(
        self,
        journal_dir: Optional[str] = None,
        suite: Optional[InvariantSuite] = None,
        on_harness: Optional[Callable[[ChaosHarness], None]] = None,
    ) -> None:
        self.journal_dir = journal_dir
        self.suite = suite if suite is not None else InvariantSuite()
        self.on_harness = on_harness

    # -- running -----------------------------------------------------------------

    def run_episode(self, spec: EpisodeSpec) -> EpisodeResult:
        """One full episode: workload + faults, quiesce, check invariants.

        Runs under :func:`~repro.sim.determinism.deterministic_ids` keyed
        by the episode seed, so every id allocated — conditional message
        ids, standard message ids — is a pure function of the spec.  A
        reproducer therefore replays to a byte-identical flight-recorder
        timeline in a fresh process (``EpisodeResult.timeline_hash``).
        """
        with deterministic_ids(spec.seed):
            harness = ChaosHarness(spec, journal_dir=self.journal_dir)
            if self.on_harness is not None:
                self.on_harness(harness)
            try:
                harness.schedule_workload()
                harness.install_faults()
                self._drain(harness)
                # Faults played out; repair the world and let it settle.
                harness.injector.heal_all()
                harness.network.redrive()
                self._drain(harness)
                for _ in range(FINAL_SWEEP_ROUNDS):
                    harness.sweep()
                    self._drain(harness)
                context = harness.context()
                violations = self.suite.check(context)
                return EpisodeResult(
                    spec=spec,
                    violations=violations,
                    sends=len(harness.ledger.sends),
                    crashes=len(harness.ledger.crashes),
                    faults_fired=harness.injector.fired_count(),
                    outcomes=sum(
                        1 for _ in harness.managers[harness.sender_name].browse(
                            "DS.OUTCOME.Q"
                        )
                    ),
                    timeline_hash=harness.recorder.timeline_hash(),
                )
            finally:
                harness.close()

    def _drain(self, harness: ChaosHarness) -> None:
        """Run to quiescence, performing crash/recovery as faults fire.

        A :class:`CrashPoint` can escape the scheduler (a faulted flush)
        or the recovery procedure itself (a flush-armed fault landing on
        a post-recovery flush), so the recover step runs inside the same
        protected loop.
        """
        pending: Optional[CrashPoint] = None
        while True:
            try:
                if pending is not None:
                    crash, pending = pending, None
                    harness.crash(crash.manager, tear=crash.tear)
                harness.scheduler.run_all(max_events=MAX_EVENTS_PER_DRAIN)
                return
            except CrashPoint as crashed:
                pending = crashed

    def explore(
        self,
        episodes: int,
        base_seed: int = 0,
        journal: str = "memory",
    ) -> List[EpisodeResult]:
        """Run ``episodes`` seeded episodes; returns every result."""
        return [
            self.run_episode(EpisodeSpec.generate(base_seed + i, journal=journal))
            for i in range(episodes)
        ]

    # -- shrinking ----------------------------------------------------------------

    def shrink(self, spec: EpisodeSpec) -> EpisodeSpec:
        """Greedily minimize a failing episode while it still fails.

        Repeatedly tries dropping one fault event at a time, keeping any
        removal that preserves *some* invariant violation; then tries
        halving the workload size the same way.  The result replays from
        its JSON form via :meth:`replay`.
        """
        if self.run_episode(spec).ok:
            raise ValueError("cannot shrink a passing episode")
        current = spec
        shrunk = True
        while shrunk:
            shrunk = False
            for index in range(len(current.plan.events)):
                candidate = EpisodeSpec.from_dict(current.to_dict())
                candidate.plan = candidate.plan.without(index)
                if not self.run_episode(candidate).ok:
                    current = candidate
                    shrunk = True
                    break
        while current.workload.messages > 1:
            candidate = EpisodeSpec.from_dict(current.to_dict())
            candidate.workload.messages = max(
                1, candidate.workload.messages // 2
            )
            if self.run_episode(candidate).ok:
                break
            current = candidate
        return current

    # -- reproducers ----------------------------------------------------------------

    def replay(self, text: str) -> EpisodeResult:
        """Re-run an episode from its JSON reproducer."""
        return self.run_episode(EpisodeSpec.from_json(text))

    def write_repro(self, spec: EpisodeSpec, path: str) -> str:
        """Write a reproducer JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(spec.to_json())
            handle.write("\n")
        return path
