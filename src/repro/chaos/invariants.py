"""The paper-invariant checker for chaos episodes.

After an episode quiesces (all channels healed, all crashed managers
recovered, all queues swept), :class:`InvariantSuite` checks the
guarantees the paper's reliability argument rests on:

* **Journal coherence** — no persistent message lost or duplicated
  relative to the journal: replaying each manager's journal yields
  exactly its live queue content (transmission queues excepted: their
  transfer-time resolution is deliberately queue-level, so the journal
  may hold already-transferred parked copies, but never the reverse).
* **Outcome uniqueness** — every conditional send decides exactly one
  outcome, every outcome correlates to a known send, and the sender log
  DS.SLOG.Q is empty (no evaluation left dangling).
* **Compensation consistency** — the net effect at every destination is
  consistent with the decided outcome: a compensation is delivered to
  the application only where the original was consumed, never twice,
  never after SUCCESS, and always where consumption preceded the FAILURE
  decision.  (A *late* consumption — a read after the failure was
  already decided — may race the compensation's arrival and go
  uncompensated either way; the paper's model allows it, so the checker
  does too.)
* **Acknowledgment correlation** — every receiver-log and ack-path
  record correlates to a known send, no destination consumed an original
  twice, and DS.ACK.Q is fully drained.
* **D-Sphere atomicity** — messages grouped in a Dependency-Sphere share
  one effective outcome: all decided, and compensation behaviour follows
  the group outcome (FAILURE if any member failed), not the individual
  ones.

Ground truth is durable state (journals, DS.* queues), supplemented by
the :class:`EpisodeLedger` the harness keeps of what the *application*
actually observed (sends issued, originals delivered, compensations
delivered) — the two views are cross-checked against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.logqueues import (
    ACK_QUEUE,
    COMPENSATION_QUEUE,
    OUTCOME_QUEUE,
    RECEIVER_LOG_QUEUE,
    SENDER_LOG_QUEUE,
    ReceiverLogEntry,
)
from repro.core.outcome import MessageOutcome, OutcomeRecord
from repro.mq.manager import XMIT_PREFIX, QueueManager
from repro.mq.persistence import Journal
from repro.obs.trace import FlightRecorder

__all__ = [
    "Violation",
    "SendRecord",
    "EpisodeLedger",
    "ChaosContext",
    "InvariantSuite",
]


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough context to debug it."""

    invariant: str
    detail: str
    cmid: Optional[str] = None
    manager: Optional[str] = None

    def __str__(self) -> str:
        where = f" [{self.manager}]" if self.manager else ""
        who = f" cmid={self.cmid}" if self.cmid else ""
        return f"{self.invariant}{where}{who}: {self.detail}"


@dataclass
class SendRecord:
    """One conditional send the episode issued (or recovered)."""

    cmid: str
    destinations: List[Tuple[str, str]]  # (manager name, queue name)
    has_compensation: bool = True
    #: learned from DS.SLOG.Q after a sender crash interrupted the send
    #: call itself (the application never saw the cmid)
    recovered: bool = False
    sphere: Optional[str] = None


class EpisodeLedger:
    """What the application layer observed during one episode.

    The harness records here at the moment each observation happens;
    invariants later reconcile this application-side view against the
    durable queue-manager state.
    """

    def __init__(self) -> None:
        self.sends: Dict[str, SendRecord] = {}
        #: (cmid, manager name) -> times an original reached the app
        self.reads: Dict[Tuple[str, str], int] = {}
        #: (cmid, manager name) -> times a compensation reached the app
        self.compensations: Dict[Tuple[str, str], int] = {}
        #: (virtual time, manager name) of every crash suffered
        self.crashes: List[Tuple[int, str]] = []
        self.notes: List[str] = []

    def record_send(self, record: SendRecord) -> None:
        self.sends[record.cmid] = record

    def record_read(self, cmid: str, manager: str) -> None:
        key = (cmid, manager)
        self.reads[key] = self.reads.get(key, 0) + 1

    def record_compensation(self, cmid: str, manager: str) -> None:
        key = (cmid, manager)
        self.compensations[key] = self.compensations.get(key, 0) + 1

    def record_crash(self, at_ms: int, manager: str) -> None:
        self.crashes.append((at_ms, manager))


@dataclass
class ChaosContext:
    """Everything the invariant suite inspects after an episode."""

    sender_name: str
    managers: Dict[str, QueueManager]
    journals: Dict[str, Journal]
    ledger: EpisodeLedger
    recorder: Optional[FlightRecorder] = None
    #: sphere id -> member cmids (empty outside D-Sphere workloads)
    spheres: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def sender(self) -> QueueManager:
        return self.managers[self.sender_name]


class InvariantSuite:
    """Checks every paper invariant; returns violations, raises nothing.

    Each ``check_*`` method is independently callable; :meth:`check`
    runs them all in order.
    """

    def check(self, context: ChaosContext) -> List[Violation]:
        violations: List[Violation] = []
        violations += self.check_journal_coherence(context)
        violations += self.check_outcome_uniqueness(context)
        violations += self.check_compensation_consistency(context)
        violations += self.check_ack_correlation(context)
        violations += self.check_dsphere_atomicity(context)
        return violations

    # -- journal vs live state ---------------------------------------------------

    def check_journal_coherence(self, context: ChaosContext) -> List[Violation]:
        """Replaying each journal must reproduce the live persistent state.

        For every journaled manager the journal's replay (committed puts
        minus journaled gets) is compared with the manager's actual queue
        content, persistent messages only:

        * application/system queues must match exactly — a journal-only
          message would be *resurrected* on the next crash (a duplicate),
          a live-only message would be *lost* (it is not durable);
        * transmission queues (``SYSTEM.XMIT.*``) must satisfy
          live ⊆ journal — the parked copy is the channel's in-doubt
          record, resolved at queue level on transfer, so the journal may
          legitimately retain already-transferred copies (the network's
          exactly-once check suppresses their redelivery on recovery),
          but a live parked message missing from the journal would be
          lost by a crash;
        * no queue may hold two live copies of one message id.
        """
        violations: List[Violation] = []
        for name, manager in context.managers.items():
            journal = context.journals.get(name)
            if journal is None:
                continue
            _queue_names, replayed = journal.recover()
            replay_ids = {
                queue_name: {m.message_id for m in messages}
                for queue_name, messages in replayed.items()
            }
            live_ids: Dict[str, set] = {}
            for queue_name in manager.queue_names():
                ids: List[str] = [
                    m.message_id
                    for m in manager.queue(queue_name).snapshot()
                    if m.is_persistent()
                ]
                if len(ids) != len(set(ids)):
                    dupes = sorted(
                        {i for i in ids if ids.count(i) > 1}
                    )
                    violations.append(
                        Violation(
                            "journal_coherence",
                            f"queue {queue_name} holds duplicate live"
                            f" copies of {dupes}",
                            manager=name,
                        )
                    )
                live_ids[queue_name] = set(ids)
            for queue_name in set(live_ids) | set(replay_ids):
                live = live_ids.get(queue_name, set())
                durable = replay_ids.get(queue_name, set())
                lost = live - durable
                if lost:
                    violations.append(
                        Violation(
                            "journal_coherence",
                            f"queue {queue_name}: {len(lost)} live persistent"
                            f" message(s) absent from the journal (would be"
                            f" lost by a crash): {sorted(lost)[:3]}",
                            manager=name,
                        )
                    )
                if queue_name.startswith(XMIT_PREFIX):
                    continue  # journal ⊇ live is legitimate for xmit queues
                phantom = durable - live
                if phantom:
                    violations.append(
                        Violation(
                            "journal_coherence",
                            f"queue {queue_name}: {len(phantom)} journaled"
                            f" message(s) no longer live (a crash would"
                            f" resurrect them): {sorted(phantom)[:3]}",
                            manager=name,
                        )
                    )
        return violations

    # -- outcomes -----------------------------------------------------------------

    def check_outcome_uniqueness(self, context: ChaosContext) -> List[Violation]:
        """Exactly one decided outcome per send; no orphans; no dangling log."""
        violations: List[Violation] = []
        sender = context.sender
        counts: Dict[str, int] = {}
        for record in self._outcome_records(context):
            counts[record.cmid] = counts.get(record.cmid, 0) + 1
        for cmid, count in counts.items():
            if count > 1:
                violations.append(
                    Violation(
                        "outcome_uniqueness",
                        f"{count} outcome records on {OUTCOME_QUEUE}",
                        cmid=cmid,
                        manager=context.sender_name,
                    )
                )
            if cmid not in context.ledger.sends:
                violations.append(
                    Violation(
                        "outcome_uniqueness",
                        "outcome for a cmid no send produced",
                        cmid=cmid,
                        manager=context.sender_name,
                    )
                )
        for cmid in context.ledger.sends:
            if cmid not in counts:
                violations.append(
                    Violation(
                        "outcome_uniqueness",
                        "send never decided an outcome",
                        cmid=cmid,
                        manager=context.sender_name,
                    )
                )
        if sender.has_queue(SENDER_LOG_QUEUE):
            dangling = [
                str(m.correlation_id)
                for m in sender.browse(SENDER_LOG_QUEUE)
            ]
            if dangling:
                violations.append(
                    Violation(
                        "outcome_uniqueness",
                        f"{len(dangling)} sender-log entries left on"
                        f" {SENDER_LOG_QUEUE} after quiescence: {dangling[:3]}",
                        manager=context.sender_name,
                    )
                )
        return violations

    # -- compensation net effect ----------------------------------------------------

    def check_compensation_consistency(
        self, context: ChaosContext
    ) -> List[Violation]:
        """Per destination, the net effect matches the effective outcome.

        With consumption taken from the destination's durable DS.RLOG.Q
        and compensation deliveries from the application ledger:

        * a compensation is delivered only where the original was
          consumed, and at most once;
        * effective SUCCESS delivers no compensations;
        * effective FAILURE with consumption that *preceded* the decision
          delivers exactly one compensation (consumption after the
          decision may race the compensation's transfer and legitimately
          go either way — see the module docstring);
        * the sender's staging queue DS.COMP.Q is empty (every staged
          compensation was released or discarded by its decision).
        """
        violations: List[Violation] = []
        outcomes = {r.cmid: r for r in self._outcome_records(context)}
        effective = self._effective_outcomes(context, outcomes)
        rlog = self._receiver_log(context)
        for cmid, send in context.ledger.sends.items():
            record = outcomes.get(cmid)
            for manager_name, _queue in send.destinations:
                delivered = context.ledger.compensations.get(
                    (cmid, manager_name), 0
                )
                entries = rlog.get((cmid, manager_name), [])
                if delivered > 1:
                    violations.append(
                        Violation(
                            "compensation_consistency",
                            f"compensation delivered {delivered} times",
                            cmid=cmid,
                            manager=manager_name,
                        )
                    )
                if delivered and not entries:
                    violations.append(
                        Violation(
                            "compensation_consistency",
                            "compensation delivered where the original was"
                            " never consumed",
                            cmid=cmid,
                            manager=manager_name,
                        )
                    )
                outcome = effective.get(cmid)
                if outcome is None or record is None:
                    continue  # undecided: already flagged by uniqueness
                if outcome is MessageOutcome.SUCCESS and delivered:
                    violations.append(
                        Violation(
                            "compensation_consistency",
                            "compensation delivered despite SUCCESS",
                            cmid=cmid,
                            manager=manager_name,
                        )
                    )
                if (
                    outcome is MessageOutcome.FAILURE
                    and send.has_compensation
                    and not delivered
                    and any(
                        self._settled_at(e) < record.decided_at_ms
                        for e in entries
                    )
                ):
                    violations.append(
                        Violation(
                            "compensation_consistency",
                            "original consumed before the FAILURE decision"
                            " but no compensation was delivered",
                            cmid=cmid,
                            manager=manager_name,
                        )
                    )
        sender = context.sender
        if sender.has_queue(COMPENSATION_QUEUE):
            staged = [
                str(m.correlation_id) for m in sender.browse(COMPENSATION_QUEUE)
            ]
            if staged:
                violations.append(
                    Violation(
                        "compensation_consistency",
                        f"{len(staged)} compensation(s) still staged on"
                        f" {COMPENSATION_QUEUE}: {staged[:3]}",
                        manager=context.sender_name,
                    )
                )
        return violations

    # -- acknowledgment correlation ---------------------------------------------

    def check_ack_correlation(self, context: ChaosContext) -> List[Violation]:
        """Receiver logs correlate to sends; no double consumption; acks drained."""
        violations: List[Violation] = []
        rlog = self._receiver_log(context)
        for (cmid, manager_name), entries in rlog.items():
            if cmid not in context.ledger.sends:
                violations.append(
                    Violation(
                        "ack_correlation",
                        "receiver log entry for a cmid no send produced",
                        cmid=cmid,
                        manager=manager_name,
                    )
                )
            if len(entries) > 1:
                violations.append(
                    Violation(
                        "ack_correlation",
                        f"original consumed {len(entries)} times",
                        cmid=cmid,
                        manager=manager_name,
                    )
                )
        for (cmid, manager_name), count in context.ledger.reads.items():
            recorded = len(rlog.get((cmid, manager_name), []))
            if count > recorded:
                violations.append(
                    Violation(
                        "ack_correlation",
                        f"application observed {count} original deliveries"
                        f" but {RECEIVER_LOG_QUEUE} records {recorded}",
                        cmid=cmid,
                        manager=manager_name,
                    )
                )
        sender = context.sender
        if sender.has_queue(ACK_QUEUE):
            pending = sum(1 for _ in sender.browse(ACK_QUEUE))
            if pending:
                violations.append(
                    Violation(
                        "ack_correlation",
                        f"{pending} acknowledgment(s) never drained from"
                        f" {ACK_QUEUE}",
                        manager=context.sender_name,
                    )
                )
        return violations

    # -- D-Sphere all-or-nothing -----------------------------------------------

    def check_dsphere_atomicity(self, context: ChaosContext) -> List[Violation]:
        """Every sphere member decided; compensation follows the group outcome.

        The per-member compensation behaviour under the *group* outcome
        is enforced by :meth:`check_compensation_consistency` (which uses
        effective outcomes); this check adds the membership-level part:
        a sphere where some members decided and others did not has torn
        its all-or-nothing promise.
        """
        violations: List[Violation] = []
        if not context.spheres:
            return violations
        outcomes = {r.cmid: r for r in self._outcome_records(context)}
        for sphere_id, members in context.spheres.items():
            decided = [cmid for cmid in members if cmid in outcomes]
            if decided and len(decided) != len(members):
                missing = sorted(set(members) - set(decided))
                violations.append(
                    Violation(
                        "dsphere_atomicity",
                        f"sphere {sphere_id}: members {missing} undecided"
                        f" while {len(decided)} member(s) decided",
                    )
                )
        return violations

    # -- shared extraction helpers -----------------------------------------------

    def _outcome_records(self, context: ChaosContext) -> List[OutcomeRecord]:
        sender = context.sender
        if not sender.has_queue(OUTCOME_QUEUE):
            return []
        return [
            OutcomeRecord.from_message(m) for m in sender.browse(OUTCOME_QUEUE)
        ]

    def _effective_outcomes(
        self,
        context: ChaosContext,
        outcomes: Dict[str, OutcomeRecord],
    ) -> Dict[str, MessageOutcome]:
        """Own outcome, overridden by the group outcome inside a sphere."""
        effective = {
            cmid: record.outcome for cmid, record in outcomes.items()
        }
        for members in context.spheres.values():
            member_outcomes = [
                outcomes[cmid].outcome for cmid in members if cmid in outcomes
            ]
            if len(member_outcomes) != len(members):
                continue  # torn sphere: flagged by check_dsphere_atomicity
            group = (
                MessageOutcome.FAILURE
                if MessageOutcome.FAILURE in member_outcomes
                else MessageOutcome.SUCCESS
            )
            for cmid in members:
                effective[cmid] = group
        return effective

    def _receiver_log(
        self, context: ChaosContext
    ) -> Dict[Tuple[str, str], List[ReceiverLogEntry]]:
        """(cmid, manager name) -> DS.RLOG.Q entries, across all managers."""
        rlog: Dict[Tuple[str, str], List[ReceiverLogEntry]] = {}
        for name, manager in context.managers.items():
            if not manager.has_queue(RECEIVER_LOG_QUEUE):
                continue
            for message in manager.browse(RECEIVER_LOG_QUEUE):
                entry = ReceiverLogEntry.from_message(message)
                rlog.setdefault((entry.cmid, name), []).append(entry)
        return rlog

    @staticmethod
    def _settled_at(entry: ReceiverLogEntry) -> int:
        """When a consumption became durable (commit time for tx reads)."""
        if entry.commit_time_ms is not None:
            return max(entry.read_time_ms, entry.commit_time_ms)
        return entry.read_time_ms
