"""Sans-IO channel protocol engine.

:class:`ChannelEngine` is one endpoint of one store-and-forward
channel, written as a pure state machine: bytes and timer ticks go in,
bytes and events come out, and nothing here touches a socket or a
clock.  The asyncio transport (:mod:`repro.net.wire`) drives it over
real connections; the chaos suite (:mod:`repro.chaos.wire`) drives the
*same* code over a simulated lossy pipe, so retransmission, resync and
dedup logic is tested deterministically before it ever sees a socket.

Channel model
-------------

A channel is unidirectional for application messages: the *sender*
engine emits MSG frames carrying per-channel sequence numbers, the
*receiver* engine emits cumulative ACK frames that double as credit
grants.  Both ends open every connection with a HELLO frame:

- sender HELLO identifies the channel (``manager`` name) so a server
  hosting many inbound channels can bind the connection;
- receiver HELLO carries ``resync`` — the highest sequence number it
  has *durably* accepted — and the current credit ``window``.

On reconnect the sender drops every in-flight entry at or below
``resync`` (they were delivered; the transfers are resolved) and
retransmits the rest in order.  Retransmission within a live
connection is timer-driven: the retransmit timer is RFC 6298
(:class:`repro.net.rtt.RttEstimator`), samples are taken only from
never-retransmitted sends (Karn's rule) and the timeout doubles on
each expiry.

Exactly-once is two-tier, mirroring ``MessageNetwork``: sequence
numbers suppress duplicates within a connection epoch, and the
delivery layer's message-id dedup suppresses redeliveries across
reconnects for the life of the receiving process.  Across a receiver
*restart* the delivery layer reseeds its dedup ledger from the
recovered queues, so a message that was journaled but not yet consumed
is still dropped by id when the sender retransmits it; a message that
was journaled, *consumed*, and whose ack then died with the crash
leaves no trace to dedup against, and is redelivered (at-least-once at
that edge — see SEMANTICS.md §11).

Acks are deliberately decoupled from the stream cursor: the engine
only acknowledges sequence numbers whose delivery the embedding layer
has *confirmed* (journaled), via :meth:`ChannelEngine.confirm_delivery`.
The sender therefore never resolves its durable spool copy before the
receiver holds the message durably — journal-before-ack across
processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import ChannelError
from repro.net.framing import (
    FRAME_ACK,
    FRAME_HELLO,
    FRAME_MSG,
    FrameDecoder,
    FrameError,
    MAX_FRAME_BYTES,
    decode_payload,
    encode_json_frame,
)
from repro.net.rtt import RttEstimator

__all__ = ["ChannelEngine", "EngineEvent", "ProtocolError", "DEFAULT_WINDOW"]

#: Default credit window (max unconfirmed messages in flight per channel).
DEFAULT_WINDOW = 64


class ProtocolError(ChannelError):
    """Peer violated the channel protocol; connection must be dropped."""


class EngineEvent:
    """One event produced by the engine for the embedding layer.

    Kinds
    -----
    ``message``    receiver: in-order MSG arrived (``seq``, ``queue``,
                   ``message`` — the ``encode_message`` dict).
    ``delivered``  sender: peer durably accepted a send (``seq``,
                   ``message_id``) — resolve the spool copy now.
    ``hello``      receiver: peer identified itself (``manager``).
    ``handshaken`` sender: peer HELLO processed; sending may begin.
    ``window``     sender: peer credit changed (``window``).
    """

    __slots__ = ("kind", "data")

    def __init__(self, kind: str, **data: Any) -> None:
        self.kind = kind
        self.data = data

    def __getattr__(self, name: str) -> Any:
        try:
            return self.data[name]
        except KeyError:
            raise AttributeError(name) from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EngineEvent({self.kind!r}, {self.data!r})"


class _InFlight:
    __slots__ = ("seq", "queue", "message", "message_id", "sent_at", "retransmitted")

    def __init__(
        self, seq: int, queue: str, message: Dict[str, Any], message_id: str
    ) -> None:
        self.seq = seq
        self.queue = queue
        self.message = message
        self.message_id = message_id
        self.sent_at = 0.0
        self.retransmitted = False


class ChannelEngine:
    """Sans-IO endpoint of one channel (``role`` is sender or receiver)."""

    def __init__(
        self,
        manager_name: str,
        role: str,
        *,
        window: int = DEFAULT_WINDOW,
        rtt: Optional[RttEstimator] = None,
        initial_rto_ms: float = 1000.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        if role not in ("sender", "receiver"):
            raise ValueError("role must be 'sender' or 'receiver'")
        self.manager_name = manager_name
        self.role = role
        self.rtt = rtt if rtt is not None else RttEstimator(initial_rto=initial_rto_ms)
        self.max_frame_bytes = max_frame_bytes

        self.connected = False
        self.handshaken = False
        self._ever_connected = False
        self.peer_manager: Optional[str] = None

        # --- sender state ---------------------------------------------
        self._next_seq = 1
        self._unacked: Deque[_InFlight] = deque()
        self.peer_window = 0
        self._backoff_active = False

        # --- receiver state -------------------------------------------
        self._cursor = 0  # highest in-order seq seen this epoch
        self._confirmed = 0  # highest seq durably accepted (ackable)
        self._delivered_high = 0  # highest seq ever handed to the app
        self.local_window = window
        self._ack_pending = False

        self._decoder = FrameDecoder(max_frame_bytes)
        self._outbox = bytearray()

        self.metrics: Dict[str, int] = {
            "bytes_sent": 0,
            "bytes_received": 0,
            "frames_sent": 0,
            "frames_received": 0,
            "retransmits": 0,
            "duplicates": 0,
            "reconnects": 0,
        }

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def connection_established(self, now_ms: float) -> None:
        if self.connected:
            raise ProtocolError("connection_established while already connected")
        self.connected = True
        self.handshaken = False
        self._decoder = FrameDecoder(self.max_frame_bytes)
        self._outbox = bytearray()
        if self._ever_connected:
            self.metrics["reconnects"] += 1
        self._ever_connected = True
        if self.role == "sender":
            self._emit_frame(
                FRAME_HELLO, {"manager": self.manager_name, "role": "sender"}
            )
        else:
            # A receiver epoch restarts from the durable watermark: any
            # seq the embedding layer never confirmed must be resent.
            self._cursor = self._confirmed
            self._emit_frame(
                FRAME_HELLO,
                {
                    "manager": self.manager_name,
                    "role": "receiver",
                    "resync": self._confirmed,
                    "window": self.local_window,
                },
            )

    def connection_lost(self, now_ms: float) -> None:
        self.connected = False
        self.handshaken = False
        self._outbox = bytearray()
        self._decoder = FrameDecoder(self.max_frame_bytes)
        self._ack_pending = False

    # ------------------------------------------------------------------
    # byte I/O
    # ------------------------------------------------------------------
    def data_to_send(self) -> bytes:
        """Drain bytes queued for the wire."""
        if not self._outbox:
            return b""
        data = bytes(self._outbox)
        self._outbox = bytearray()
        return data

    def receive_bytes(self, data: bytes, now_ms: float) -> List[EngineEvent]:
        """Feed wire bytes; returns engine events for the embedding layer.

        Raises :class:`FrameError`/:class:`ProtocolError` on stream
        corruption or protocol violation — drop the connection.
        """
        if not self.connected:
            raise ProtocolError("receive_bytes while disconnected")
        self.metrics["bytes_received"] += len(data)
        events: List[EngineEvent] = []
        for magic, payload in self._decoder.feed(data):
            self.metrics["frames_received"] += 1
            obj = decode_payload(payload)
            if magic == FRAME_HELLO:
                events.extend(self._on_hello(obj, now_ms))
            elif magic == FRAME_ACK:
                events.extend(self._on_ack(obj, now_ms))
            elif magic == FRAME_MSG:
                events.extend(self._on_msg(obj))
        if self._ack_pending:
            self._flush_ack()
        return events

    # ------------------------------------------------------------------
    # sender API
    # ------------------------------------------------------------------
    def can_send(self) -> bool:
        return (
            self.role == "sender"
            and self.connected
            and self.handshaken
            and len(self._unacked) < self.peer_window
        )

    @property
    def in_flight(self) -> int:
        return len(self._unacked)

    def send_message(
        self, queue: str, message: Dict[str, Any], message_id: str, now_ms: float
    ) -> int:
        """Queue one message frame; returns its sequence number."""
        if self.role != "sender":
            raise ProtocolError("send_message on a receiver engine")
        if not self.can_send():
            raise ChannelError("channel not writable (no credit or not connected)")
        seq = self._next_seq
        self._next_seq += 1
        entry = _InFlight(seq, queue, message, message_id)
        entry.sent_at = now_ms
        self._unacked.append(entry)
        self._emit_frame(
            FRAME_MSG, {"seq": seq, "queue": queue, "message": message}
        )
        return seq

    # ------------------------------------------------------------------
    # receiver API
    # ------------------------------------------------------------------
    def confirm_delivery(self, seq: int) -> None:
        """Mark ``seq`` (and everything before it) durably accepted.

        Called by the embedding layer *after* the message is journaled
        locally; only confirmed sequence numbers are ever acknowledged,
        so the sender cannot resolve its spool copy for a message the
        receiver might lose in a crash.
        """
        if self.role != "receiver":
            raise ProtocolError("confirm_delivery on a sender engine")
        if seq > self._delivered_high:
            raise ProtocolError(
                f"confirming seq {seq} never delivered "
                f"(high watermark {self._delivered_high})"
            )
        if seq > self._confirmed:
            self._confirmed = seq
            if self._confirmed > self._cursor:
                # A deferred confirmation (group commit holding the
                # durability callback) landed after a reconnect reset the
                # cursor: the message was delivered in an earlier epoch
                # and is durable now, so skip ahead — the sender's
                # in-flight retransmits of these seqs arrive as ordinary
                # duplicates and are re-acked.
                self._cursor = self._confirmed
            self._ack_pending = True
            if self.connected:
                self._flush_ack()

    @property
    def confirmed(self) -> int:
        """Highest sequence number durably accepted (receiver role).

        Seqs at or below this watermark are never redelivered as
        ``message`` events — within an epoch they fall under the
        cursor, and across a reconnect the HELLO resync makes the
        sender drop them — so the embedding layer can prune any
        per-delivery dedup state it keeps for them.
        """
        return self._confirmed

    def advertise_window(self, window: int) -> None:
        """Update the credit window granted to the peer.

        Any change is announced with a standalone ACK frame: a re-open
        wakes a stalled sender, a shrink stops it promptly instead of
        waiting for the next delivery ack.
        """
        window = max(0, int(window))
        changed = window != self.local_window
        self.local_window = window
        if self.role == "receiver" and self.connected and changed:
            self._ack_pending = True
            self._flush_ack()

    # ------------------------------------------------------------------
    # timers (sender retransmission)
    # ------------------------------------------------------------------
    def next_timer(self, now_ms: float) -> Optional[float]:
        """Absolute ms when the retransmit timer fires, or None."""
        if self.role != "sender" or not self.connected or not self._unacked:
            return None
        return self._unacked[0].sent_at + self.rtt.rto

    def on_timer(self, now_ms: float) -> int:
        """Fire the retransmission timer if due; returns frames resent.

        Go-back-N: the full in-flight window is retransmitted in order,
        the RTO doubles (RFC 6298 §5.5), and — Karn — none of the
        resent entries may later produce an RTT sample.
        """
        due = self.next_timer(now_ms)
        if due is None or now_ms < due:
            return 0
        resent = 0
        for entry in self._unacked:
            entry.retransmitted = True
            entry.sent_at = now_ms
            self._emit_frame(
                FRAME_MSG,
                {"seq": entry.seq, "queue": entry.queue, "message": entry.message},
            )
            resent += 1
        self.metrics["retransmits"] += resent
        self.rtt.backoff()
        self._backoff_active = True
        return resent

    # ------------------------------------------------------------------
    # frame handlers
    # ------------------------------------------------------------------
    def _on_hello(self, obj: Dict[str, Any], now_ms: float) -> List[EngineEvent]:
        peer = obj.get("manager")
        if not isinstance(peer, str) or not peer:
            raise ProtocolError("HELLO missing manager name")
        self.peer_manager = peer
        if self.role == "sender":
            resync = obj.get("resync", 0)
            window = obj.get("window", 0)
            if not isinstance(resync, int) or not isinstance(window, int):
                raise ProtocolError("HELLO resync/window must be integers")
            events = self._resolve_acked(resync, None)
            self.peer_window = window
            self.handshaken = True
            # Everything the peer never durably accepted goes again, in
            # order, marked retransmitted (Karn).
            for entry in self._unacked:
                entry.retransmitted = True
                entry.sent_at = now_ms
                self._emit_frame(
                    FRAME_MSG,
                    {
                        "seq": entry.seq,
                        "queue": entry.queue,
                        "message": entry.message,
                    },
                )
                self.metrics["retransmits"] += 1
            events.append(EngineEvent("handshaken", manager=peer, window=window))
            return events
        else:
            self.handshaken = True
            return [EngineEvent("hello", manager=peer)]

    def _on_ack(self, obj: Dict[str, Any], now_ms: float) -> List[EngineEvent]:
        if self.role != "sender":
            raise ProtocolError("ACK frame received by receiver engine")
        cum = obj.get("cum")
        window = obj.get("window", self.peer_window)
        if not isinstance(cum, int) or not isinstance(window, int):
            raise ProtocolError("ACK cum/window must be integers")
        events = self._resolve_acked(cum, now_ms)
        if window != self.peer_window:
            self.peer_window = window
            events.append(EngineEvent("window", window=window))
        return events

    def _on_msg(self, obj: Dict[str, Any]) -> List[EngineEvent]:
        if self.role != "receiver":
            raise ProtocolError("MSG frame received by sender engine")
        seq = obj.get("seq")
        queue = obj.get("queue")
        message = obj.get("message")
        if not isinstance(seq, int) or not isinstance(queue, str):
            raise ProtocolError("MSG missing seq/queue")
        if not isinstance(message, dict):
            raise ProtocolError("MSG missing message body")
        if seq <= self._cursor:
            # Duplicate (retransmit raced our ack) — count and re-ack so
            # the sender converges.
            self.metrics["duplicates"] += 1
            self._ack_pending = True
            return []
        if seq != self._cursor + 1:
            raise ProtocolError(
                f"sequence gap: expected {self._cursor + 1}, got {seq}"
            )
        self._cursor = seq
        if seq > self._delivered_high:
            self._delivered_high = seq
        return [EngineEvent("message", seq=seq, queue=queue, message=message)]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve_acked(
        self, cum: int, now_ms: Optional[float]
    ) -> List[EngineEvent]:
        events: List[EngineEvent] = []
        sample_entry: Optional[_InFlight] = None
        while self._unacked and self._unacked[0].seq <= cum:
            entry = self._unacked.popleft()
            if not entry.retransmitted:
                sample_entry = entry  # newest never-retransmitted ack wins
            events.append(
                EngineEvent("delivered", seq=entry.seq, message_id=entry.message_id)
            )
        if sample_entry is not None and now_ms is not None:
            self.rtt.observe(max(0.0, now_ms - sample_entry.sent_at))
            if self._backoff_active:
                self._backoff_active = False
                self.rtt.reset_backoff()
        return events

    def _flush_ack(self) -> None:
        self._ack_pending = False
        self._emit_frame(
            FRAME_ACK, {"cum": self._confirmed, "window": self.local_window}
        )

    def _emit_frame(self, magic: int, obj: Dict[str, Any]) -> None:
        frame = encode_json_frame(magic, obj)
        self._outbox.extend(frame)
        self.metrics["frames_sent"] += 1
        self.metrics["bytes_sent"] += len(frame)
