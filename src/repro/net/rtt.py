"""RFC 6298 retransmission-timer estimation.

One estimator instance tracks the smoothed round-trip time for one
channel.  The sim transport (``MessageNetwork``) and the TCP transport
(``repro.net.wire``) both size their retry timers from this class so
the retransmission behaviour audited by the chaos suite is the same
code that runs over real sockets.

The update rules are RFC 6298 §2 verbatim:

first sample ``R``::

    SRTT    = R
    RTTVAR  = R / 2
    RTO     = SRTT + max(G, K * RTTVAR)

subsequent samples::

    RTTVAR  = (1 - beta) * RTTVAR + beta * |SRTT - R|
    SRTT    = (1 - alpha) * SRTT + alpha * R
    RTO     = SRTT + max(G, K * RTTVAR)

with ``alpha = 1/8``, ``beta = 1/4``, ``K = 4`` and ``G`` the clock
granularity.  On retransmission timeout the RTO doubles ("exponential
backoff", §5.5) and — per Karn's algorithm — the caller must not feed
samples taken from retransmitted sends.

Times are plain numbers; the class is unit-agnostic (this repo uses
milliseconds everywhere).
"""

from __future__ import annotations

__all__ = ["RttEstimator"]


class RttEstimator:
    """Smoothed-RTT retransmission timeout per RFC 6298."""

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(
        self,
        initial_rto: float = 1000.0,
        min_rto: float = 1.0,
        max_rto: float = 60_000.0,
        granularity: float = 1.0,
    ) -> None:
        if initial_rto <= 0:
            raise ValueError("initial_rto must be positive")
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError("need 0 < min_rto <= max_rto")
        self.initial_rto = float(initial_rto)
        self.min_rto = float(min_rto)
        self.max_rto = float(max_rto)
        self.granularity = float(granularity)
        self.srtt: float | None = None
        self.rttvar: float | None = None
        self.samples = 0
        self.backoffs = 0
        self._rto = self._clamp(self.initial_rto)

    @property
    def rto(self) -> float:
        """Current retransmission timeout."""
        return self._rto

    def observe(self, sample: float) -> float:
        """Feed one round-trip sample; returns the new RTO.

        Per Karn's algorithm the caller must only feed samples from
        sends that were *not* retransmitted — an ack for a retransmitted
        message is ambiguous and must be discarded by the caller.
        """
        sample = float(sample)
        if sample < 0:
            raise ValueError("rtt sample must be non-negative")
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = (1.0 - self.BETA) * self.rttvar + self.BETA * abs(
                self.srtt - sample
            )
            self.srtt = (1.0 - self.ALPHA) * self.srtt + self.ALPHA * sample
        self.samples += 1
        self._rto = self._clamp(
            self.srtt + max(self.granularity, self.K * self.rttvar)
        )
        return self._rto

    def backoff(self) -> float:
        """Double the RTO after a retransmission timeout (RFC 6298 §5.5)."""
        self.backoffs += 1
        self._rto = self._clamp(self._rto * 2.0)
        return self._rto

    def reset_backoff(self) -> float:
        """Recompute the RTO from the current estimate, dropping backoff.

        Called once a fresh (non-retransmitted) send is acknowledged
        after a backoff episode, so one loss burst does not leave the
        timer inflated forever.
        """
        if self.srtt is None:
            self._rto = self._clamp(self.initial_rto)
        else:
            self._rto = self._clamp(
                self.srtt + max(self.granularity, self.K * self.rttvar)
            )
        return self._rto

    def _clamp(self, value: float) -> float:
        return min(self.max_rto, max(self.min_rto, value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RttEstimator(srtt={self.srtt}, rttvar={self.rttvar}, "
            f"rto={self._rto}, samples={self.samples})"
        )
